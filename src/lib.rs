#![warn(missing_docs)]

//! # fia — Feature Inference Attacks on Vertical Federated Learning
//!
//! Umbrella crate for the reference implementation of
//! *"Feature Inference Attack on Model Predictions in Vertical Federated
//! Learning"* (Luo, Wu, Xiao, Ooi — ICDE 2021).
//!
//! Re-exports the whole public API of the workspace:
//!
//! * [`linalg`] — dense matrices, SVD, Moore–Penrose pseudo-inverse.
//! * [`tensor`] — tape-based reverse-mode autograd engine.
//! * [`data`] — synthetic dataset generators and the paper dataset registry.
//! * [`models`] — logistic regression, MLP, decision tree, random forest.
//! * [`vfl`] — vertical federated learning substrate (parties, partitions,
//!   joint-prediction protocol).
//! * [`attacks`] — the paper's contribution: ESA, PRA and GRNA plus metrics.
//! * [`defense`] — countermeasures (rounding, dropout, screening, verification).
//! * [`serve`] — the deployed prediction boundary: a TCP service with
//!   micro-batch coalescing, and the remote oracle the attacks query.
//! * [`campaign`] — the front door: a typed `ScenarioSpec` builder, a
//!   budgeted resumable `Campaign` session over any oracle (in-process
//!   or served), streaming events and a serializable report.
//! * [`campaignd`] — the campaign *service*: a durable daemon that runs
//!   many submitted campaigns concurrently over shared deployments,
//!   checkpoints every chunk to a write-ahead log, and resumes
//!   bit-identically after `SIGKILL`.
//! * [`telemetry`] — workspace-wide observability: a registry of typed
//!   instruments, span-style scoped timers, and Prometheus-style text
//!   exposition scrapeable over the wire (`MetricsText`).
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through and
//! `examples/served_attack.rs` for the same campaign mounted over the wire.

pub use fia_campaign as campaign;
pub use fia_campaignd as campaignd;
pub use fia_core as attacks;
pub use fia_data as data;
pub use fia_defense as defense;
pub use fia_linalg as linalg;
pub use fia_models as models;
pub use fia_serve as serve;
pub use fia_telemetry as telemetry;
pub use fia_tensor as tensor;
pub use fia_vfl as vfl;
