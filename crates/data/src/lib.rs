#![warn(missing_docs)]

//! # fia-data — datasets for the feature-inference experiments
//!
//! Provides:
//!
//! * [`Dataset`] — the in-memory table (features, labels, names) that
//!   every model and attack consumes, plus deterministic splitting.
//! * [`SynthConfig`]/[`make_classification`] — a synthetic classification
//!   generator modelled on scikit-learn's `make_classification` (the same
//!   tool the paper uses for its two synthetic datasets): Gaussian class
//!   clusters on informative dimensions, redundant features as noisy
//!   linear combinations, and pure-noise filler features.
//! * [`MinMaxNormalizer`] — per-feature scaling into `(0, 1)`, matching
//!   the paper's preprocessing ("we normalize the ranges of all feature
//!   values in each dataset into (0,1)").
//! * [`correlation`] — the Eqn (16)/(17) diagnostics relating attack
//!   accuracy to feature correlation.
//! * [`registry`] — shape-matched stand-ins for the six evaluated
//!   datasets (Table II), with a global scale knob so benches can run in
//!   seconds instead of hours.

pub mod correlation;
mod dataset;
pub mod io;
mod normalize;
pub mod registry;
mod synth;

pub use dataset::{Dataset, SplitSpec, ThreeWaySplit};
pub use normalize::{normalize_dataset, MinMaxNormalizer};
pub use registry::{PaperDataset, TableTwoRow};
pub use synth::{make_classification, SynthConfig};

/// One-hot encodes integer labels into an `n × n_classes` matrix.
pub fn one_hot(labels: &[usize], n_classes: usize) -> fia_linalg::Matrix {
    let mut m = fia_linalg::Matrix::zeros(labels.len(), n_classes);
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < n_classes, "label {y} out of range (c = {n_classes})");
        m[(i, y)] = 1.0;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_rows_sum_to_one() {
        let m = one_hot(&[0, 2, 1], 3);
        assert_eq!(m.shape(), (3, 3));
        for i in 0..3 {
            assert_eq!(m.row(i).iter().sum::<f64>(), 1.0);
        }
        assert_eq!(m[(1, 2)], 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_label() {
        one_hot(&[3], 3);
    }
}
