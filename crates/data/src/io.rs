//! CSV import/export for datasets.
//!
//! Lets downstream users run the attack suite on their own tables: a
//! plain CSV with a header row, numeric feature columns and one label
//! column. No quoting/escaping dialects — values must be plain numbers
//! (the attack pipeline operates on numeric, normalized features anyway).

use crate::dataset::Dataset;
use fia_linalg::Matrix;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header is missing or the label column was not found.
    BadHeader(String),
    /// A data row failed to parse; carries the 1-based line number.
    BadRow {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file contained no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::BadHeader(msg) => write!(f, "bad header: {msg}"),
            CsvError::BadRow { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Reads a dataset from CSV. The column named `label_column` holds the
/// class as a non-negative integer; every other column is a feature.
///
/// Labels may be any non-negative integers; they are compacted to
/// `0..n_classes` in first-appearance order (the mapping is returned in
/// the dataset's `name` — no, see `label_values` on the result).
pub fn read_csv<R: BufRead>(
    reader: R,
    name: &str,
    label_column: &str,
) -> Result<CsvImport, CsvError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::BadHeader("empty input".into()))??;
    let columns: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let label_idx = columns
        .iter()
        .position(|c| c == label_column)
        .ok_or_else(|| {
            CsvError::BadHeader(format!(
                "label column {label_column:?} not in header {columns:?}"
            ))
        })?;
    let feature_names: Vec<String> = columns
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != label_idx)
        .map(|(_, c)| c.clone())
        .collect();

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut raw_labels: Vec<u64> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != columns.len() {
            return Err(CsvError::BadRow {
                line: lineno + 2,
                message: format!("{} cells, expected {}", cells.len(), columns.len()),
            });
        }
        let mut features = Vec::with_capacity(columns.len() - 1);
        for (i, cell) in cells.iter().enumerate() {
            if i == label_idx {
                let label: u64 = cell.parse().map_err(|_| CsvError::BadRow {
                    line: lineno + 2,
                    message: format!("label {cell:?} is not a non-negative integer"),
                })?;
                raw_labels.push(label);
            } else {
                let v: f64 = cell.parse().map_err(|_| CsvError::BadRow {
                    line: lineno + 2,
                    message: format!("value {cell:?} is not numeric"),
                })?;
                features.push(v);
            }
        }
        rows.push(features);
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }

    // Compact labels to 0..c in first-appearance order.
    let mut label_values: Vec<u64> = Vec::new();
    let labels: Vec<usize> = raw_labels
        .iter()
        .map(|&raw| {
            if let Some(pos) = label_values.iter().position(|&v| v == raw) {
                pos
            } else {
                label_values.push(raw);
                label_values.len() - 1
            }
        })
        .collect();

    let features = Matrix::from_rows(&rows).map_err(|e| CsvError::BadRow {
        line: 0,
        message: format!("inconsistent rows: {e}"),
    })?;
    let n_classes = label_values.len().max(2);
    let mut dataset = Dataset::new(name, features, labels, n_classes);
    dataset.feature_names = feature_names;
    Ok(CsvImport {
        dataset,
        label_values,
    })
}

/// Result of [`read_csv`]: the dataset plus the original label values in
/// compacted order (`label_values[k]` is the raw value of class `k`).
#[derive(Debug, Clone)]
pub struct CsvImport {
    /// The parsed dataset.
    pub dataset: Dataset,
    /// Raw label value per compacted class index.
    pub label_values: Vec<u64>,
}

/// Writes a dataset as CSV (features + a final `label` column).
pub fn write_csv<W: Write>(dataset: &Dataset, mut writer: W) -> std::io::Result<()> {
    let mut header: Vec<String> = dataset.feature_names.clone();
    header.push("label".to_string());
    writeln!(writer, "{}", header.join(","))?;
    for i in 0..dataset.n_samples() {
        let mut cells: Vec<String> = dataset.sample(i).iter().map(|v| format!("{v}")).collect();
        cells.push(dataset.labels[i].to_string());
        writeln!(writer, "{}", cells.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
age,income,deposit,loan
0.3,0.5,0.9,1
0.1,0.2,0.4,0
0.6,0.7,0.8,1
";

    #[test]
    fn read_basic_csv() {
        let imported = read_csv(SAMPLE.as_bytes(), "bank", "loan").unwrap();
        let ds = &imported.dataset;
        assert_eq!(ds.n_samples(), 3);
        assert_eq!(ds.n_features(), 3);
        assert_eq!(ds.feature_names, vec!["age", "income", "deposit"]);
        // Labels compacted in first-appearance order: 1 → 0, 0 → 1.
        assert_eq!(ds.labels, vec![0, 1, 0]);
        assert_eq!(imported.label_values, vec![1, 0]);
        assert_eq!(ds.sample(1), &[0.1, 0.2, 0.4]);
    }

    #[test]
    fn label_column_in_the_middle() {
        let csv = "a,y,b\n1.0,3,2.0\n4.0,5,6.0\n";
        let imported = read_csv(csv.as_bytes(), "t", "y").unwrap();
        assert_eq!(imported.dataset.sample(0), &[1.0, 2.0]);
        assert_eq!(imported.dataset.sample(1), &[4.0, 6.0]);
        assert_eq!(imported.label_values, vec![3, 5]);
    }

    #[test]
    fn missing_label_column_rejected() {
        let err = read_csv(SAMPLE.as_bytes(), "bank", "nope").unwrap_err();
        assert!(matches!(err, CsvError::BadHeader(_)));
    }

    #[test]
    fn ragged_row_rejected_with_line_number() {
        let csv = "a,b,y\n1,2,0\n1,0\n";
        let err = read_csv(csv.as_bytes(), "t", "y").unwrap_err();
        match err {
            CsvError::BadRow { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn non_numeric_value_rejected() {
        let csv = "a,y\nfoo,0\n";
        assert!(matches!(
            read_csv(csv.as_bytes(), "t", "y"),
            Err(CsvError::BadRow { .. })
        ));
    }

    #[test]
    fn empty_data_rejected() {
        let csv = "a,y\n";
        assert!(matches!(
            read_csv(csv.as_bytes(), "t", "y"),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "a,y\n1,0\n\n2,1\n";
        let imported = read_csv(csv.as_bytes(), "t", "y").unwrap();
        assert_eq!(imported.dataset.n_samples(), 2);
    }

    #[test]
    fn write_read_roundtrip() {
        let imported = read_csv(SAMPLE.as_bytes(), "bank", "loan").unwrap();
        let mut buf = Vec::new();
        write_csv(&imported.dataset, &mut buf).unwrap();
        let back = read_csv(buf.as_slice(), "bank2", "label").unwrap();
        assert_eq!(back.dataset.n_samples(), 3);
        assert_eq!(back.dataset.features, imported.dataset.features);
        assert_eq!(back.dataset.labels, imported.dataset.labels);
    }
}
