//! Correlation diagnostics — Eqns (16) and (17) of the paper.
//!
//! The paper explains per-feature GRN accuracy through two quantities:
//! the mean absolute Pearson correlation between a target feature and
//! (a) the adversary's features, and (b) the prediction confidence
//! scores. Weakly correlated target features reconstruct poorly (Fig. 10).

use fia_linalg::vecops::pearson;
use fia_linalg::Matrix;

/// Mean absolute Pearson correlation between one target column and every
/// adversary column — Eqn (16):
/// `corr(x_adv, x_target,i) = (1/d_adv) Σ_j |r(x_adv,j, x_target,i)|`.
pub fn corr_features(adv: &Matrix, target_col: &[f64]) -> f64 {
    assert_eq!(adv.rows(), target_col.len(), "sample count mismatch");
    if adv.cols() == 0 {
        return 0.0;
    }
    let sum: f64 = (0..adv.cols())
        .map(|j| pearson(&adv.col(j), target_col).abs())
        .sum();
    sum / adv.cols() as f64
}

/// Mean absolute Pearson correlation between one target column and every
/// confidence-score column — Eqn (17):
/// `corr(v, x_target,i) = (1/c) Σ_j |r(v_j, x_target,i)|`.
pub fn corr_predictions(confidences: &Matrix, target_col: &[f64]) -> f64 {
    corr_features(confidences, target_col)
}

/// Full pairwise feature-correlation matrix (`d × d`, symmetric, unit
/// diagonal); used by the pre-processing defense to screen out features
/// that are too predictable from another party's data.
pub fn correlation_matrix(features: &Matrix) -> Matrix {
    let d = features.cols();
    let cols: Vec<Vec<f64>> = (0..d).map(|j| features.col(j)).collect();
    let mut m = Matrix::identity(d);
    for i in 0..d {
        for j in (i + 1)..d {
            let r = pearson(&cols[i], &cols[j]);
            m[(i, j)] = r;
            m[(j, i)] = r;
        }
    }
    m
}

/// Per-target-feature correlation report backing Fig. 10.
#[derive(Debug, Clone)]
pub struct CorrelationReport {
    /// Eqn (16) value per target feature.
    pub with_adversary: Vec<f64>,
    /// Eqn (17) value per target feature.
    pub with_predictions: Vec<f64>,
}

/// Computes both diagnostics for every column of `target`.
pub fn correlation_report(
    adv: &Matrix,
    target: &Matrix,
    confidences: &Matrix,
) -> CorrelationReport {
    let with_adversary = (0..target.cols())
        .map(|j| corr_features(adv, &target.col(j)))
        .collect();
    let with_predictions = (0..target.cols())
        .map(|j| corr_predictions(confidences, &target.col(j)))
        .collect();
    CorrelationReport {
        with_adversary,
        with_predictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corr_features_detects_copy() {
        // Target column equals adversary column 0 → mean |corr| ≥ 1/d_adv.
        let adv = Matrix::from_rows(&[
            vec![1.0, 9.0],
            vec![2.0, 3.0],
            vec![3.0, 7.0],
            vec![4.0, 1.0],
        ])
        .unwrap();
        let target = adv.col(0);
        let c = corr_features(&adv, &target);
        assert!(c >= 0.5, "corr = {c}");
    }

    #[test]
    fn corr_features_zero_for_constant_target() {
        let adv = Matrix::from_fn(10, 2, |i, j| (i * 2 + j) as f64);
        let target = vec![3.3; 10];
        assert_eq!(corr_features(&adv, &target), 0.0);
    }

    #[test]
    fn correlation_matrix_properties() {
        let f = Matrix::from_fn(20, 3, |i, j| {
            ((i + 1) * (j + 1)) as f64 + ((i * j) as f64).sin()
        });
        let m = correlation_matrix(&f);
        assert_eq!(m.shape(), (3, 3));
        for i in 0..3 {
            assert!((m[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((m[(i, j)] - m[(j, i)]).abs() < 1e-12);
                assert!(m[(i, j)].abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn report_lengths_match_target_width() {
        let adv = Matrix::from_fn(15, 4, |i, j| (i + j) as f64);
        let target = Matrix::from_fn(15, 2, |i, j| (i * (j + 1)) as f64);
        let conf = Matrix::from_fn(15, 3, |i, j| (i % (j + 2)) as f64);
        let r = correlation_report(&adv, &target, &conf);
        assert_eq!(r.with_adversary.len(), 2);
        assert_eq!(r.with_predictions.len(), 2);
        assert!(r.with_adversary.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn empty_adversary_block_gives_zero() {
        let adv = Matrix::zeros(5, 0);
        assert_eq!(corr_features(&adv, &[1.0, 2.0, 3.0, 4.0, 5.0]), 0.0);
    }
}
