//! Min-max normalization into `(0, 1)`.
//!
//! The paper normalizes every feature into `(0, 1)` before training
//! (Section VI-A). The ESA upper-bound analysis (Eqn 14–15) explicitly
//! relies on this. We map to the *open* interval by padding the observed
//! range slightly, so logits and logs downstream never see exact 0/1.

use crate::dataset::Dataset;
use fia_linalg::Matrix;

/// Per-feature affine scaler fit on one dataset and applicable to others
/// (fit on train, apply to prediction — no leakage).
#[derive(Debug, Clone)]
pub struct MinMaxNormalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
    /// Fractional padding applied to each side of the range.
    pad: f64,
}

impl MinMaxNormalizer {
    /// Fits the scaler on a feature matrix.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn fit(features: &Matrix) -> Self {
        assert!(features.rows() > 0, "cannot fit on empty data");
        let d = features.cols();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for i in 0..features.rows() {
            for (j, &v) in features.row(i).iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        MinMaxNormalizer {
            mins,
            maxs,
            pad: 0.01,
        }
    }

    /// Fits on the dataset's features.
    pub fn fit_dataset(ds: &Dataset) -> Self {
        Self::fit(&ds.features)
    }

    /// Transforms a feature matrix into `(0, 1)` (values outside the
    /// fitted range are clamped).
    pub fn transform(&self, features: &Matrix) -> Matrix {
        assert_eq!(
            features.cols(),
            self.mins.len(),
            "feature count mismatch with fitted scaler"
        );
        let mut out = features.clone();
        for i in 0..out.rows() {
            for (j, v) in out.row_mut(i).iter_mut().enumerate() {
                *v = self.transform_value(j, *v);
            }
        }
        out
    }

    /// Transforms one scalar of feature `j`.
    pub fn transform_value(&self, j: usize, v: f64) -> f64 {
        let (lo, hi) = self.padded_range(j);
        let t = (v - lo) / (hi - lo);
        t.clamp(0.0, 1.0)
    }

    /// Inverse-transforms one scalar of feature `j` back to raw units.
    pub fn inverse_value(&self, j: usize, t: f64) -> f64 {
        let (lo, hi) = self.padded_range(j);
        lo + t * (hi - lo)
    }

    /// Inverse-transforms a whole matrix.
    pub fn inverse(&self, features: &Matrix) -> Matrix {
        let mut out = features.clone();
        for i in 0..out.rows() {
            for (j, v) in out.row_mut(i).iter_mut().enumerate() {
                *v = self.inverse_value(j, *v);
            }
        }
        out
    }

    /// Returns a normalized copy of a dataset (same labels/names).
    pub fn transform_dataset(&self, ds: &Dataset) -> Dataset {
        let mut out = ds.clone();
        out.features = self.transform(&ds.features);
        out
    }

    fn padded_range(&self, j: usize) -> (f64, f64) {
        let (lo, hi) = (self.mins[j], self.maxs[j]);
        if hi > lo {
            let span = hi - lo;
            (lo - self.pad * span, hi + self.pad * span)
        } else {
            // Constant feature: map everything to 0.5 via a unit window.
            (lo - 0.5, lo + 0.5)
        }
    }
}

/// Convenience: fit on `ds` and return the normalized dataset plus the
/// fitted scaler (for inverse-mapping inferred features back to raw
/// units).
pub fn normalize_dataset(ds: &Dataset) -> (Dataset, MinMaxNormalizer) {
    let scaler = MinMaxNormalizer::fit_dataset(ds);
    (scaler.transform_dataset(ds), scaler)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_matrix() -> Matrix {
        Matrix::from_rows(&[vec![0.0, 100.0], vec![5.0, 200.0], vec![10.0, 150.0]]).unwrap()
    }

    #[test]
    fn transform_lands_in_open_unit_interval() {
        let m = toy_matrix();
        let s = MinMaxNormalizer::fit(&m);
        let t = s.transform(&m);
        for &v in t.as_slice() {
            assert!(v > 0.0 && v < 1.0, "value {v} not in (0,1)");
        }
    }

    #[test]
    fn inverse_round_trips() {
        let m = toy_matrix();
        let s = MinMaxNormalizer::fit(&m);
        let t = s.transform(&m);
        let back = s.inverse(&t);
        assert!(back.max_abs_diff(&m).unwrap() < 1e-10);
    }

    #[test]
    fn out_of_range_values_clamped() {
        let m = toy_matrix();
        let s = MinMaxNormalizer::fit(&m);
        assert_eq!(s.transform_value(0, -100.0), 0.0);
        assert_eq!(s.transform_value(0, 1000.0), 1.0);
    }

    #[test]
    fn constant_feature_maps_to_half() {
        let m = Matrix::from_rows(&[vec![7.0], vec![7.0]]).unwrap();
        let s = MinMaxNormalizer::fit(&m);
        let t = s.transform(&m);
        assert!((t[(0, 0)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transform_dataset_keeps_metadata() {
        let ds = Dataset::new("t", toy_matrix(), vec![0, 1, 0], 2);
        let (norm, _) = normalize_dataset(&ds);
        assert_eq!(norm.labels, ds.labels);
        assert_eq!(norm.name, ds.name);
        assert!(norm
            .features
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn mismatched_width_panics() {
        let s = MinMaxNormalizer::fit(&toy_matrix());
        s.transform(&Matrix::zeros(1, 3));
    }
}
