//! The in-memory dataset container and deterministic splitting.

use fia_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

/// A supervised classification dataset: an `n × d` feature matrix, one
/// integer label per row, and human-readable feature names.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix, one sample per row.
    pub features: Matrix,
    /// Class label per sample, in `0..n_classes`.
    pub labels: Vec<usize>,
    /// Number of classes `c`.
    pub n_classes: usize,
    /// Feature names (length = `d`).
    pub feature_names: Vec<String>,
    /// Short identifier, e.g. `"bank-marketing"`.
    pub name: String,
}

impl Dataset {
    /// Builds a dataset, synthesizing `f0, f1, …` names when none given.
    ///
    /// # Panics
    /// Panics if row/label counts disagree or a label is out of range.
    pub fn new(
        name: impl Into<String>,
        features: Matrix,
        labels: Vec<usize>,
        n_classes: usize,
    ) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature rows and label count must match"
        );
        assert!(
            labels.iter().all(|&y| y < n_classes),
            "labels must lie in 0..n_classes"
        );
        let feature_names = (0..features.cols()).map(|j| format!("f{j}")).collect();
        Dataset {
            features,
            labels,
            n_classes,
            feature_names,
            name: name.into(),
        }
    }

    /// Number of samples `n`.
    pub fn n_samples(&self) -> usize {
        self.features.rows()
    }

    /// Number of features `d`.
    pub fn n_features(&self) -> usize {
        self.features.cols()
    }

    /// Returns the sample in row `i`.
    pub fn sample(&self, i: usize) -> &[f64] {
        self.features.row(i)
    }

    /// A new dataset containing only the given rows (in order).
    pub fn subset(&self, rows: &[usize]) -> Dataset {
        let features = self
            .features
            .select_rows(rows)
            .expect("subset rows in range");
        let labels = rows.iter().map(|&r| self.labels[r]).collect();
        Dataset {
            features,
            labels,
            n_classes: self.n_classes,
            feature_names: self.feature_names.clone(),
            name: self.name.clone(),
        }
    }

    /// Splits into train/test/prediction partitions per `spec`,
    /// shuffling deterministically with `seed`.
    ///
    /// The paper's protocol (Section VI-C): half of each dataset is used
    /// for model training and testing; the prediction set — the samples
    /// the adversary observes and attacks — is drawn from the remainder.
    pub fn split(&self, spec: &SplitSpec, seed: u64) -> ThreeWaySplit {
        let n = self.n_samples();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);

        let n_train = ((n as f64) * spec.train_fraction).round() as usize;
        let n_test = ((n as f64) * spec.test_fraction).round() as usize;
        let n_train = n_train.min(n);
        let n_test = n_test.min(n - n_train);
        let rest = n - n_train - n_test;
        let n_pred = (((n as f64) * spec.prediction_fraction).round() as usize).min(rest);

        let train = self.subset(&idx[..n_train]);
        let test = self.subset(&idx[n_train..n_train + n_test]);
        let prediction = self.subset(&idx[n_train + n_test..n_train + n_test + n_pred]);
        ThreeWaySplit {
            train,
            test,
            prediction,
        }
    }

    /// Per-class sample counts (length `n_classes`).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &y in &self.labels {
            counts[y] += 1;
        }
        counts
    }

    /// Stratified three-way split: class proportions are preserved in
    /// every partition (up to rounding). Preferable at small sample
    /// counts, where a plain random split can starve a partition of a
    /// rare class entirely.
    pub fn split_stratified(&self, spec: &SplitSpec, seed: u64) -> ThreeWaySplit {
        let mut rng = StdRng::seed_from_u64(seed);
        // Shuffle indices within each class, then deal each class's rows
        // proportionally into the three partitions.
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for (i, &y) in self.labels.iter().enumerate() {
            per_class[y].push(i);
        }
        let mut train_rows = Vec::new();
        let mut test_rows = Vec::new();
        let mut pred_rows = Vec::new();
        for rows in per_class.iter_mut() {
            rows.shuffle(&mut rng);
            let n = rows.len();
            let n_train = ((n as f64) * spec.train_fraction).round() as usize;
            let n_test =
                (((n as f64) * spec.test_fraction).round() as usize).min(n.saturating_sub(n_train));
            let rest = n - n_train - n_test;
            let n_pred = (((n as f64) * spec.prediction_fraction).round() as usize).min(rest);
            train_rows.extend_from_slice(&rows[..n_train]);
            test_rows.extend_from_slice(&rows[n_train..n_train + n_test]);
            pred_rows.extend_from_slice(&rows[n_train + n_test..n_train + n_test + n_pred]);
        }
        // Shuffle the merged partitions so classes are interleaved.
        train_rows.shuffle(&mut rng);
        test_rows.shuffle(&mut rng);
        pred_rows.shuffle(&mut rng);
        ThreeWaySplit {
            train: self.subset(&train_rows),
            test: self.subset(&test_rows),
            prediction: self.subset(&pred_rows),
        }
    }
}

/// Fractions for a three-way split; they must sum to at most 1.
#[derive(Debug, Clone, Copy)]
pub struct SplitSpec {
    /// Fraction used to train the vertical FL model.
    pub train_fraction: f64,
    /// Fraction used to evaluate model quality.
    pub test_fraction: f64,
    /// Fraction forming the prediction dataset the adversary attacks.
    pub prediction_fraction: f64,
}

impl SplitSpec {
    /// The paper's split: 40% train, 10% test, and the prediction set
    /// drawn from the other half.
    pub fn paper_default() -> Self {
        SplitSpec {
            train_fraction: 0.4,
            test_fraction: 0.1,
            prediction_fraction: 0.5,
        }
    }

    /// A split with a custom prediction fraction (Fig. 9 varies the
    /// number of accumulated predictions as 10/30/50% of |D|).
    pub fn with_prediction_fraction(mut self, f: f64) -> Self {
        self.prediction_fraction = f;
        self
    }
}

/// Result of [`Dataset::split`].
#[derive(Debug, Clone)]
pub struct ThreeWaySplit {
    /// Model-training partition.
    pub train: Dataset,
    /// Model-testing partition.
    pub test: Dataset,
    /// Prediction partition (what the adversary sees predictions for).
    pub prediction: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let features = Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64);
        let labels = (0..n).map(|i| i % 2).collect();
        Dataset::new("toy", features, labels, 2)
    }

    #[test]
    fn new_checks_shapes() {
        let d = toy(10);
        assert_eq!(d.n_samples(), 10);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.feature_names.len(), 3);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn mismatched_labels_panic() {
        Dataset::new("bad", Matrix::zeros(3, 2), vec![0, 1], 2);
    }

    #[test]
    fn subset_picks_rows() {
        let d = toy(5);
        let s = d.subset(&[4, 0]);
        assert_eq!(s.n_samples(), 2);
        assert_eq!(s.sample(0), &[12.0, 13.0, 14.0]);
        assert_eq!(s.labels, vec![0, 0]);
    }

    #[test]
    fn split_fractions_respected() {
        let d = toy(100);
        let s = d.split(&SplitSpec::paper_default(), 7);
        assert_eq!(s.train.n_samples(), 40);
        assert_eq!(s.test.n_samples(), 10);
        assert_eq!(s.prediction.n_samples(), 50);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy(50);
        let a = d.split(&SplitSpec::paper_default(), 3);
        let b = d.split(&SplitSpec::paper_default(), 3);
        assert_eq!(a.train.labels, b.train.labels);
        assert_eq!(a.train.features, b.train.features);
        let c = d.split(&SplitSpec::paper_default(), 4);
        assert_ne!(a.train.features, c.train.features);
    }

    #[test]
    fn split_partitions_are_disjoint() {
        let d = toy(60);
        let s = d.split(&SplitSpec::paper_default(), 1);
        // Every original row appears at most once across partitions:
        // collect the first feature value, which uniquely identifies rows.
        let mut seen = std::collections::HashSet::new();
        for part in [&s.train, &s.test, &s.prediction] {
            for i in 0..part.n_samples() {
                let key = part.sample(i)[0] as i64;
                assert!(seen.insert(key), "row duplicated across partitions");
            }
        }
    }

    #[test]
    fn class_counts_sum_to_n() {
        let d = toy(11);
        let counts = d.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 11);
        assert_eq!(counts, vec![6, 5]);
    }

    #[test]
    fn prediction_fraction_override() {
        let d = toy(100);
        let spec = SplitSpec::paper_default().with_prediction_fraction(0.1);
        let s = d.split(&spec, 2);
        assert_eq!(s.prediction.n_samples(), 10);
    }

    #[test]
    fn stratified_split_preserves_class_ratios() {
        // 90/10 imbalanced dataset: a stratified split must keep the
        // minority class in every partition.
        let n = 200;
        let features = Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f64);
        let labels: Vec<usize> = (0..n).map(|i| usize::from(i % 10 == 0)).collect();
        let d = Dataset::new("imbalanced", features, labels, 2);
        let s = d.split_stratified(&SplitSpec::paper_default(), 5);
        for (name, part) in [
            ("train", &s.train),
            ("test", &s.test),
            ("prediction", &s.prediction),
        ] {
            let counts = part.class_counts();
            assert!(counts[1] > 0, "{name} lost the minority class");
            let ratio = counts[1] as f64 / part.n_samples() as f64;
            assert!((ratio - 0.1).abs() < 0.06, "{name} minority ratio {ratio}");
        }
    }

    #[test]
    fn stratified_split_deterministic_and_disjoint() {
        let d = toy(60);
        let a = d.split_stratified(&SplitSpec::paper_default(), 9);
        let b = d.split_stratified(&SplitSpec::paper_default(), 9);
        assert_eq!(a.train.features, b.train.features);
        let mut seen = std::collections::HashSet::new();
        for part in [&a.train, &a.test, &a.prediction] {
            for i in 0..part.n_samples() {
                assert!(seen.insert(part.sample(i)[0] as i64), "row duplicated");
            }
        }
    }
}
