//! Synthetic classification data, modelled on scikit-learn's
//! `make_classification`.
//!
//! The generator places one Gaussian cluster per class at a random vertex
//! of a hypercube (side `2 · class_sep`) in an `n_informative`-dimensional
//! subspace, then appends:
//!
//! * `n_redundant` features — random linear combinations of the
//!   informative ones plus `redundant_noise`-scaled Gaussian noise. These
//!   are what make the *inter-feature correlations* the GRN attack learns
//!   (Section VI-C, Fig. 10): a redundant feature on the target side is
//!   predictable from informative features on the adversary side.
//! * noise features — i.i.d. Gaussians carrying no signal, giving every
//!   dataset some irreducibly hard-to-infer columns.
//!
//! Feature order is optionally shuffled (seeded) so adversary/target
//! splits get a mix of feature kinds, mimicking real tables.

use crate::dataset::Dataset;
use fia_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Configuration for [`make_classification`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of samples to generate.
    pub n_samples: usize,
    /// Total number of features `d`.
    pub n_features: usize,
    /// Number of informative (cluster-separating) features.
    pub n_informative: usize,
    /// Number of redundant features (linear combos of informative ones).
    pub n_redundant: usize,
    /// Number of classes `c`.
    pub n_classes: usize,
    /// Hypercube half-side controlling class separation.
    pub class_sep: f64,
    /// Std-dev of the noise added to redundant features. Smaller values →
    /// stronger inter-feature correlation → easier GRN inference.
    pub redundant_noise: f64,
    /// Fraction of labels flipped uniformly at random (label noise).
    pub flip_y: f64,
    /// Shuffle the column order (seeded) when `true`.
    pub shuffle_features: bool,
    /// RNG seed; every byte of output is a pure function of the config.
    pub seed: u64,
}

impl SynthConfig {
    /// A reasonable default: 60% informative, 30% redundant, 10% noise.
    pub fn new(n_samples: usize, n_features: usize, n_classes: usize, seed: u64) -> Self {
        let n_informative = ((n_features as f64) * 0.6).ceil() as usize;
        let n_informative = n_informative.clamp(1, n_features);
        let n_redundant = (((n_features - n_informative) as f64) * 0.75).round() as usize;
        SynthConfig {
            n_samples,
            n_features,
            n_informative,
            n_redundant,
            n_classes,
            class_sep: 1.0,
            redundant_noise: 0.3,
            flip_y: 0.01,
            shuffle_features: true,
            seed,
        }
    }

    /// Overrides the informative/redundant split.
    pub fn with_composition(mut self, informative: usize, redundant: usize) -> Self {
        assert!(informative + redundant <= self.n_features);
        assert!(informative >= 1);
        self.n_informative = informative;
        self.n_redundant = redundant;
        self
    }

    /// Overrides class separation.
    pub fn with_class_sep(mut self, sep: f64) -> Self {
        self.class_sep = sep;
        self
    }

    /// Overrides the redundant-feature noise level (correlation knob).
    pub fn with_redundant_noise(mut self, noise: f64) -> Self {
        self.redundant_noise = noise;
        self
    }

    fn validate(&self) {
        assert!(self.n_samples > 0, "n_samples must be positive");
        assert!(self.n_features > 0, "n_features must be positive");
        assert!(self.n_classes >= 2, "need at least two classes");
        assert!(
            self.n_informative >= 1 && self.n_informative <= self.n_features,
            "n_informative out of range"
        );
        assert!(
            self.n_informative + self.n_redundant <= self.n_features,
            "informative + redundant exceeds n_features"
        );
        assert!((0.0..=1.0).contains(&self.flip_y), "flip_y out of range");
    }
}

/// Draws a standard-normal variate (Box–Muller; local copy to keep this
/// crate independent of `fia-tensor`).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generates a synthetic classification dataset per `config`.
///
/// Features are *not* normalized here; compose with
/// [`crate::MinMaxNormalizer`] to land in `(0, 1)` as the paper requires.
pub fn make_classification(config: &SynthConfig) -> Dataset {
    config.validate();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n_samples;
    let d = config.n_features;
    let di = config.n_informative;
    let dr = config.n_redundant;
    let dn = d - di - dr;
    let c = config.n_classes;

    // Class centroids: random hypercube vertices (±class_sep per axis),
    // jittered slightly so no two classes collide even for tiny di.
    let centroids: Vec<Vec<f64>> = (0..c)
        .map(|_| {
            (0..di)
                .map(|_| {
                    let vertex = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                    vertex * config.class_sep + 0.2 * standard_normal(&mut rng)
                })
                .collect()
        })
        .collect();

    // Mixing matrix for redundant features: each redundant column is a
    // random (unit-norm) combination of informative columns.
    let mixing: Vec<Vec<f64>> = (0..dr)
        .map(|_| {
            let mut w: Vec<f64> = (0..di).map(|_| standard_normal(&mut rng)).collect();
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            for x in &mut w {
                *x /= norm;
            }
            w
        })
        .collect();

    let mut features = Matrix::zeros(n, d);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let y = rng.gen_range(0..c);
        // Informative block: centroid + unit Gaussian.
        let mut informative = vec![0.0; di];
        for (inf, center) in informative.iter_mut().zip(&centroids[y]) {
            *inf = center + standard_normal(&mut rng);
        }
        // Redundant block: mix + noise.
        let row = features.row_mut(i);
        row[..di].copy_from_slice(&informative);
        for r in 0..dr {
            let mut v = 0.0;
            for k in 0..di {
                v += mixing[r][k] * informative[k];
            }
            row[di + r] = v + config.redundant_noise * standard_normal(&mut rng);
        }
        // Noise block.
        for nn in 0..dn {
            row[di + dr + nn] = standard_normal(&mut rng);
        }
        labels.push(y);
    }

    // Label noise.
    if config.flip_y > 0.0 {
        for y in labels.iter_mut() {
            if rng.gen::<f64>() < config.flip_y {
                *y = rng.gen_range(0..c);
            }
        }
    }

    // Optional feature shuffle with descriptive names preserved.
    let mut names: Vec<String> = (0..di)
        .map(|k| format!("informative_{k}"))
        .chain((0..dr).map(|k| format!("redundant_{k}")))
        .chain((0..dn).map(|k| format!("noise_{k}")))
        .collect();
    if config.shuffle_features {
        let mut perm: Vec<usize> = (0..d).collect();
        perm.shuffle(&mut rng);
        features = features.select_columns(&perm).expect("perm valid");
        names = perm.iter().map(|&p| names[p].clone()).collect();
    }

    let mut ds = Dataset::new(format!("synthetic-{}x{}x{}", n, d, c), features, labels, c);
    ds.feature_names = names;
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_linalg::vecops::pearson;

    fn small_config() -> SynthConfig {
        SynthConfig {
            n_samples: 400,
            n_features: 10,
            n_informative: 5,
            n_redundant: 3,
            n_classes: 3,
            class_sep: 2.0,
            redundant_noise: 0.1,
            flip_y: 0.0,
            shuffle_features: false,
            seed: 42,
        }
    }

    #[test]
    fn shapes_and_labels() {
        let ds = make_classification(&small_config());
        assert_eq!(ds.n_samples(), 400);
        assert_eq!(ds.n_features(), 10);
        assert_eq!(ds.n_classes, 3);
        assert!(ds.labels.iter().all(|&y| y < 3));
        assert!(ds.features.is_finite());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = make_classification(&small_config());
        let b = make_classification(&small_config());
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
        let mut cfg = small_config();
        cfg.seed = 43;
        let c = make_classification(&cfg);
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn redundant_features_are_correlated_with_informative() {
        let ds = make_classification(&small_config());
        // Without shuffling, columns 5..8 are redundant. Max |corr| to any
        // informative column should be high with noise = 0.1.
        for r in 5..8 {
            let rcol = ds.features.col(r);
            let best = (0..5)
                .map(|k| pearson(&ds.features.col(k), &rcol).abs())
                .fold(0.0f64, f64::max);
            assert!(best > 0.3, "redundant col {r} max |corr| {best}");
        }
    }

    #[test]
    fn noise_features_are_uncorrelated() {
        let ds = make_classification(&small_config());
        // Columns 8..10 are pure noise.
        for nn in 8..10 {
            let ncol = ds.features.col(nn);
            for k in 0..5 {
                let r = pearson(&ds.features.col(k), &ncol).abs();
                assert!(r < 0.2, "noise col {nn} vs informative {k}: corr {r}");
            }
        }
    }

    #[test]
    fn classes_are_separable_by_centroid_distance() {
        let ds = make_classification(&small_config());
        // Nearest-centroid classification on informative block should beat
        // chance by a wide margin when class_sep = 2.
        let mut centroids = vec![vec![0.0; 5]; 3];
        let mut counts = [0usize; 3];
        for i in 0..ds.n_samples() {
            let y = ds.labels[i];
            counts[y] += 1;
            for (cent, &v) in centroids[y].iter_mut().zip(ds.sample(i)) {
                *cent += v;
            }
        }
        for (cent, &cnt) in centroids.iter_mut().zip(counts.iter()) {
            for v in cent.iter_mut() {
                *v /= cnt.max(1) as f64;
            }
        }
        let mut correct = 0;
        for i in 0..ds.n_samples() {
            let x = &ds.sample(i)[..5];
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (cls, cent) in centroids.iter().enumerate() {
                let dist: f64 = x
                    .iter()
                    .zip(cent.iter())
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum();
                if dist < best_d {
                    best_d = dist;
                    best = cls;
                }
            }
            if best == ds.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.n_samples() as f64;
        assert!(acc > 0.7, "nearest-centroid accuracy {acc}");
    }

    #[test]
    fn shuffle_permutes_names_consistently() {
        let mut cfg = small_config();
        cfg.shuffle_features = true;
        let ds = make_classification(&cfg);
        // All original names still present exactly once.
        let mut names = ds.feature_names.clone();
        names.sort();
        let mut expected: Vec<String> = (0..5)
            .map(|k| format!("informative_{k}"))
            .chain((0..3).map(|k| format!("redundant_{k}")))
            .chain((0..2).map(|k| format!("noise_{k}")))
            .collect();
        expected.sort();
        assert_eq!(names, expected);
    }

    #[test]
    fn flip_y_changes_some_labels() {
        let mut cfg = small_config();
        cfg.flip_y = 0.5;
        let flipped = make_classification(&cfg);
        cfg.flip_y = 0.0;
        let clean = make_classification(&cfg);
        let differing = flipped
            .labels
            .iter()
            .zip(clean.labels.iter())
            .filter(|(a, b)| a != b)
            .count();
        // 50% flips land on a random class (1/3 chance of no-op) → expect
        // roughly n/3 changes; accept a broad band.
        assert!(differing > 50, "only {differing} labels changed");
    }

    #[test]
    #[should_panic(expected = "exceeds n_features")]
    fn invalid_composition_panics() {
        let mut cfg = small_config();
        cfg.n_redundant = 20;
        make_classification(&cfg);
    }
}
