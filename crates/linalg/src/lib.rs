#![warn(missing_docs)]

//! # fia-linalg — dense linear algebra substrate
//!
//! Small, dependency-free dense linear algebra library sized for the needs
//! of the feature-inference attack suite:
//!
//! * [`Matrix`] — row-major dense `f64` matrix with the usual arithmetic.
//! * [`svd`] — one-sided Jacobi singular value decomposition.
//! * [`qr`] — Householder QR decomposition.
//! * [`lu_decompose`]/[`solve`] — LU with partial pivoting, linear solving.
//! * [`pinv`] — Moore–Penrose pseudo-inverse (the workhorse of the
//!   equality solving attack, Section IV-A of the paper).
//! * [`lstsq`] — minimum-norm least-squares solve `argmin ‖Ax − b‖₂`.
//!
//! All routines are written for clarity and numerical robustness on the
//! small/medium systems the attacks produce (`(c−1) × d_target` matrices),
//! not for BLAS-level throughput; matrix multiplication is nonetheless
//! cache-friendly (ikj loop order over row-major storage).

mod cholesky;
mod error;
mod lstsq;
mod lu;
mod matrix;
mod pinv;
mod qr;
mod svd;
pub mod vecops;

pub use cholesky::{cholesky, cholesky_solve, Cholesky};
pub use error::LinAlgError;
pub use lstsq::lstsq;
pub use lu::{inverse, lu_decompose, lu_solve, solve, LuDecomposition};
pub use matrix::Matrix;
pub use pinv::{pinv, pinv_with_tolerance};
pub use qr::{qr, QrDecomposition};
pub use svd::{svd, Svd};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinAlgError>;
