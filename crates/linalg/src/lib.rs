#![warn(missing_docs)]

//! # fia-linalg — dense linear algebra substrate
//!
//! Small, dependency-free dense linear algebra library sized for the needs
//! of the feature-inference attack suite:
//!
//! * [`Matrix`] — row-major dense `f64` matrix with the usual arithmetic.
//! * [`svd`] — one-sided Jacobi singular value decomposition.
//! * [`qr`] — Householder QR decomposition.
//! * [`lu_decompose`]/[`solve`] — LU with partial pivoting, linear solving.
//! * [`pinv`] — Moore–Penrose pseudo-inverse (the workhorse of the
//!   equality solving attack, Section IV-A of the paper).
//! * [`lstsq`] — minimum-norm least-squares solve `argmin ‖Ax − b‖₂`.
//!
//! All routines are written for clarity and numerical robustness on the
//! small/medium systems the attacks produce (`(c−1) × d_target` matrices).
//! The dense hot loops are nonetheless fast: every multiply and
//! elementwise op dispatches through the [`kernel`] module, which selects
//! between a portable scalar arm and explicit AVX2+FMA microkernels once
//! at runtime (`FIA_FORCE_SCALAR=1` pins the scalar arm). The f64 kernels
//! are bit-identical across backends; [`Matrix::matmul_mixed`] offers an
//! opt-in f32 mixed-precision product ([`Precision`] knob upstream), and
//! [`par_matmul`] stripes output rows across scoped threads with each
//! worker running the same dispatched microkernel on its tile.

mod cholesky;
mod error;
pub mod kernel;
mod lstsq;
mod lu;
mod matrix;
mod parallel;
mod pinv;
mod precision;
mod qr;
mod svd;
pub mod vecops;

pub use cholesky::{cholesky, cholesky_solve, Cholesky};
pub use error::LinAlgError;
pub use kernel::{avx2_available, detected_backend, with_backend, Backend};
pub use lstsq::lstsq;
pub use lu::{inverse, lu_decompose, lu_solve, solve, LuDecomposition};
pub use matrix::Matrix;
pub use parallel::{default_workers, par_matmul, par_matmul_with};
pub use pinv::{pinv, pinv_with_tolerance};
pub use precision::Precision;
pub use qr::{qr, QrDecomposition};
pub use svd::{svd, Svd};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinAlgError>;
