//! LU decomposition with partial pivoting, plus a convenience solver.

use crate::{LinAlgError, Matrix, Result};

/// A packed LU decomposition `P · A = L · U` of a square matrix.
///
/// `lu` stores `L` (unit diagonal, strictly lower part) and `U` (upper
/// part including diagonal) in one matrix; `perm[i]` gives the original
/// row index that was swapped into position `i`.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    perm: Vec<usize>,
    /// Number of row swaps — the sign of the permutation, used by
    /// [`LuDecomposition::determinant`].
    swaps: usize,
}

impl LuDecomposition {
    /// Solves `A x = b` using the factorization.
    // Triangular substitution is clearest with explicit indices.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinAlgError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "lu-solve",
            });
        }
        // Forward substitution on the permuted right-hand side.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for j in 0..i {
                s -= self.lu[(i, j)] * y[j];
            }
            y[i] = s;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let sign = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        (0..self.lu.rows()).fold(sign, |acc, i| acc * self.lu[(i, i)])
    }
}

/// Factors a square matrix with partial pivoting.
///
/// # Errors
/// * [`LinAlgError::InvalidArgument`] if the matrix is not square.
/// * [`LinAlgError::Singular`] if a pivot underflows the tolerance.
pub fn lu_decompose(a: &Matrix) -> Result<LuDecomposition> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinAlgError::InvalidArgument(format!(
            "lu: matrix must be square, got {m}x{n}"
        )));
    }
    if n == 0 {
        return Err(LinAlgError::InvalidArgument("lu: empty matrix".into()));
    }
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut swaps = 0;
    let tol = n as f64 * f64::EPSILON * a.max_abs();

    for k in 0..n {
        // Partial pivot: find the largest |entry| in column k at/below row k.
        let mut piv = k;
        for i in (k + 1)..n {
            if lu[(i, k)].abs() > lu[(piv, k)].abs() {
                piv = i;
            }
        }
        if lu[(piv, k)].abs() <= tol {
            return Err(LinAlgError::Singular);
        }
        if piv != k {
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(piv, j)];
                lu[(piv, j)] = tmp;
            }
            perm.swap(k, piv);
            swaps += 1;
        }
        for i in (k + 1)..n {
            let factor = lu[(i, k)] / lu[(k, k)];
            lu[(i, k)] = factor;
            for j in (k + 1)..n {
                let delta = factor * lu[(k, j)];
                lu[(i, j)] -= delta;
            }
        }
    }
    Ok(LuDecomposition { lu, perm, swaps })
}

/// Re-exported convenience: solves `A x = b` via a fresh factorization.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    lu_decompose(a)?.solve(b)
}

/// Alias for [`lu_solve`]; the workspace's generic "solve a square linear
/// system" entry point.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    lu_solve(a, b)
}

/// Computes the inverse of a square matrix by solving against the
/// identity columns (one LU factorization, `n` substitutions).
///
/// Prefer [`solve`]/[`LuDecomposition::solve`] when only `A⁻¹b` is
/// needed — forming the inverse explicitly is both slower and less
/// accurate.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    let f = lu_decompose(a)?;
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        let col = f.solve(&e)?;
        for (i, &v) in col.iter().enumerate() {
            inv[(i, j)] = v;
        }
        e[j] = 0.0;
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]).unwrap();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-12);
        // Known closed form: (1/10)·[[6,−7],[−2,4]].
        assert!((inv[(0, 0)] - 0.6).abs() < 1e-12);
        assert!((inv[(0, 1)] + 0.7).abs() < 1e-12);
    }

    #[test]
    fn inverse_of_singular_errors() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(inverse(&a), Err(LinAlgError::Singular)));
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[vec![3.0, 2.0], vec![1.0, 4.0]]).unwrap();
        // 3x + 2y = 7 ; x + 4y = 9 → x = 1, y = 2
        let x = solve(&a, &[7.0, 9.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(LinAlgError::Singular)));
    }

    #[test]
    fn determinant_known() {
        let a = Matrix::from_rows(&[vec![4.0, 3.0], vec![6.0, 3.0]]).unwrap();
        let d = lu_decompose(&a).unwrap().determinant();
        assert!((d - (-6.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_with_swap_keeps_sign() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let d = lu_decompose(&a).unwrap().determinant();
        assert!((d - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        assert!(lu_decompose(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_larger_system_residual_small() {
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0 + i as f64
            } else {
                1.0 / (1.0 + (i + j) as f64)
            }
        });
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = solve(&a, &b).unwrap();
        let r = a.matvec(&x).unwrap();
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-9);
        }
    }
}
