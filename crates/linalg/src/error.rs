//! Error type shared by all linear algebra routines.

use std::fmt;

/// Errors produced by `fia-linalg` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinAlgError {
    /// Two operands had incompatible shapes. The payload carries the
    /// offending `(rows, cols)` pairs for diagnostics.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
        /// Operation that was attempted, e.g. `"matmul"`.
        op: &'static str,
    },
    /// The matrix was singular (or numerically singular) where an
    /// invertible matrix was required.
    Singular,
    /// An iterative algorithm failed to converge within its iteration cap.
    NoConvergence {
        /// Algorithm that failed, e.g. `"jacobi-svd"`.
        algorithm: &'static str,
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was out of the routine's domain (e.g. empty matrix).
    InvalidArgument(String),
}

impl fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinAlgError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinAlgError::Singular => write!(f, "matrix is singular"),
            LinAlgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinAlgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinAlgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinAlgError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "matmul",
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matmul: left is 2x3, right is 4x5"
        );
    }

    #[test]
    fn display_singular() {
        assert_eq!(LinAlgError::Singular.to_string(), "matrix is singular");
    }

    #[test]
    fn display_no_convergence() {
        let e = LinAlgError::NoConvergence {
            algorithm: "jacobi-svd",
            iterations: 64,
        };
        assert_eq!(
            e.to_string(),
            "jacobi-svd did not converge after 64 iterations"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LinAlgError::Singular);
    }
}
