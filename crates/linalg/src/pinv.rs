//! Moore–Penrose pseudo-inverse.
//!
//! Section IV-A of the paper solves `Θ_target · x_target = a` by
//! `x̂_target = Θ⁺_target · a`. The pseudo-inverse both (i) recovers the
//! unique exact solution when `d_target ≤ c − 1` and the system has full
//! column rank, and (ii) yields the *minimum-norm least-squares* solution
//! otherwise — the property the paper leans on for its Eqn (15) MSE upper
//! bound (`‖x̂‖₂ ≤ ‖x‖₂`).

use crate::{svd, Matrix, Result};

/// Computes the Moore–Penrose pseudo-inverse `A⁺` with the default
/// LAPACK-style tolerance `max(m, n) · eps · σ_max`.
pub fn pinv(a: &Matrix) -> Result<Matrix> {
    let f = svd(a)?;
    let tol = f.default_tolerance(a.rows(), a.cols());
    pinv_from_svd(&f, tol)
}

/// Computes `A⁺` treating singular values `σ ≤ tol` as zero.
///
/// Exposing the tolerance lets the defense-evaluation benches study how
/// confidence-score rounding interacts with the attack's effective rank.
pub fn pinv_with_tolerance(a: &Matrix, tol: f64) -> Result<Matrix> {
    let f = svd(a)?;
    pinv_from_svd(&f, tol)
}

fn pinv_from_svd(f: &crate::Svd, tol: f64) -> Result<Matrix> {
    // A⁺ = V · diag(1/σᵢ for σᵢ > tol) · Uᵀ
    let k = f.sigma.len();
    let mut v_scaled = f.v.clone();
    for j in 0..k {
        let inv = if f.sigma[j] > tol {
            1.0 / f.sigma[j]
        } else {
            0.0
        };
        for i in 0..v_scaled.rows() {
            v_scaled[(i, j)] *= inv;
        }
    }
    v_scaled.matmul(&f.u.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn assert_matrix_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert!(
            a.max_abs_diff(b).unwrap() < tol,
            "matrices differ:\n{a:?}\n{b:?}"
        );
    }

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]).unwrap();
        let p = pinv(&a).unwrap();
        let prod = a.matmul(&p).unwrap();
        assert_matrix_close(&prod, &Matrix::identity(2), 1e-10);
    }

    #[test]
    fn penrose_conditions_hold_for_rank_deficient() {
        // Rank-1 matrix.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let p = pinv(&a).unwrap();
        // (1) A A⁺ A = A
        let c1 = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert_matrix_close(&c1, &a, 1e-10);
        // (2) A⁺ A A⁺ = A⁺
        let c2 = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert_matrix_close(&c2, &p, 1e-10);
        // (3) (A A⁺)ᵀ = A A⁺
        let aap = a.matmul(&p).unwrap();
        assert_matrix_close(&aap.transpose(), &aap, 1e-10);
        // (4) (A⁺ A)ᵀ = A⁺ A
        let pa = p.matmul(&a).unwrap();
        assert_matrix_close(&pa.transpose(), &pa, 1e-10);
    }

    #[test]
    fn pinv_shape_is_transposed() {
        let a = Matrix::from_fn(2, 5, |i, j| (i + j) as f64);
        let p = pinv(&a).unwrap();
        assert_eq!(p.shape(), (5, 2));
    }

    #[test]
    fn underdetermined_solution_has_minimum_norm() {
        // One equation, two unknowns: x + y = 2. Minimum-norm solution is
        // (1, 1); any other solution (e.g. (2, 0)) has a larger norm.
        let a = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let p = pinv(&a).unwrap();
        let x = p.matvec(&[2.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_solution_is_least_squares() {
        // x = 1, x = 3 → least squares x = 2.
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let p = pinv(&a).unwrap();
        let x = p.matvec(&[1.0, 3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pinv_of_zero_matrix_is_zero() {
        let a = Matrix::zeros(3, 4);
        let p = pinv(&a).unwrap();
        assert_eq!(p.shape(), (4, 3));
        assert!(p.max_abs() < 1e-15);
    }

    #[test]
    fn custom_tolerance_truncates_small_singular_values() {
        // diag(1, 1e-8): with a huge tolerance the tiny direction is cut.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1e-8]]).unwrap();
        let p = pinv_with_tolerance(&a, 1e-4).unwrap();
        assert!((p[(0, 0)] - 1.0).abs() < 1e-12);
        assert_eq!(p[(1, 1)], 0.0);
    }
}
