//! One-sided Jacobi singular value decomposition.
//!
//! The attacks only ever factor small matrices — the equality solving
//! attack builds a `(c−1) × d_target` system — so the quadratically
//! convergent, numerically robust one-sided Jacobi method is a good fit:
//! it computes all singular values to high relative accuracy and needs no
//! bidiagonalization machinery.

use crate::{LinAlgError, Matrix, Result};

/// A thin singular value decomposition `A = U · diag(σ) · Vᵀ`.
///
/// For an `m × n` input with `k = min(m, n)`:
/// * `u` is `m × k` with orthonormal columns,
/// * `sigma` holds the `k` singular values in non-increasing order,
/// * `v` is `n × k` with orthonormal columns.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`m × k`).
    pub u: Matrix,
    /// Singular values, non-increasing.
    pub sigma: Vec<f64>,
    /// Right singular vectors (`n × k`).
    pub v: Matrix,
}

impl Svd {
    /// Reconstructs `U · diag(σ) · Vᵀ` (useful for testing).
    pub fn reconstruct(&self) -> Result<Matrix> {
        let k = self.sigma.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.rows() {
                us[(i, j)] *= self.sigma[j];
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// Numerical rank with tolerance `tol` (`σᵢ > tol` counted).
    pub fn rank(&self, tol: f64) -> usize {
        self.sigma.iter().filter(|&&s| s > tol).count()
    }

    /// The default tolerance used for rank/pseudo-inverse decisions:
    /// `max(m, n) · eps · σ_max`, following LAPACK's convention.
    pub fn default_tolerance(&self, m: usize, n: usize) -> f64 {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        m.max(n) as f64 * f64::EPSILON * smax
    }
}

/// Maximum number of Jacobi sweeps before declaring failure. One-sided
/// Jacobi converges quadratically; well-conditioned inputs finish in < 10
/// sweeps, and 60 leaves enormous head-room.
const MAX_SWEEPS: usize = 60;

/// Computes the thin SVD of `a` by one-sided Jacobi rotations.
///
/// Works for any shape; internally transposes when `m < n` so the
/// rotation loop always runs over the narrow dimension.
///
/// # Errors
/// * [`LinAlgError::InvalidArgument`] for empty matrices or non-finite input.
/// * [`LinAlgError::NoConvergence`] if the sweep cap is exhausted
///   (practically unreachable for finite input).
pub fn svd(a: &Matrix) -> Result<Svd> {
    if a.rows() == 0 || a.cols() == 0 {
        return Err(LinAlgError::InvalidArgument(
            "svd: matrix must be non-empty".into(),
        ));
    }
    if !a.is_finite() {
        return Err(LinAlgError::InvalidArgument(
            "svd: matrix contains non-finite values".into(),
        ));
    }
    if a.rows() < a.cols() {
        // Factor the transpose and swap the roles of U and V.
        let t = svd(&a.transpose())?;
        return Ok(Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        });
    }

    let m = a.rows();
    let n = a.cols();
    // `u` starts as a copy of A; Jacobi rotations orthogonalize its columns.
    let mut u = a.clone();
    let mut v = Matrix::identity(n);

    // Scale-aware convergence threshold on the normalized off-diagonal
    // inner products |⟨u_p, u_q⟩| / (‖u_p‖‖u_q‖).
    let tol = 1e-14;

    let mut converged = false;
    let mut sweeps = 0;
    while !converged && sweeps < MAX_SWEEPS {
        converged = true;
        sweeps += 1;
        for p in 0..n.saturating_sub(1) {
            for q in (p + 1)..n {
                let mut alpha = 0.0; // ⟨u_p, u_p⟩
                let mut beta = 0.0; // ⟨u_q, u_q⟩
                let mut gamma = 0.0; // ⟨u_p, u_q⟩
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    alpha += up * up;
                    beta += uq * uq;
                    gamma += up * uq;
                }
                if alpha == 0.0 || beta == 0.0 {
                    continue; // a zero column is already orthogonal to everything
                }
                if gamma.abs() <= tol * (alpha * beta).sqrt() {
                    continue;
                }
                converged = false;
                // Classic Jacobi rotation computation (Golub & Van Loan §8.6).
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    u[(i, p)] = c * up - s * uq;
                    u[(i, q)] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
    }
    if !converged {
        return Err(LinAlgError::NoConvergence {
            algorithm: "jacobi-svd",
            iterations: sweeps,
        });
    }

    // Column norms are the singular values; normalize the columns of U.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigma: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| u[(i, j)] * u[(i, j)]).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&x, &y| sigma[y].partial_cmp(&sigma[x]).expect("finite sigma"));

    let mut u_sorted = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let s = sigma[old_j];
        for i in 0..m {
            u_sorted[(i, new_j)] = if s > 0.0 { u[(i, old_j)] / s } else { 0.0 };
        }
        for i in 0..n {
            v_sorted[(i, new_j)] = v[(i, old_j)];
        }
    }
    sigma.sort_by(|x, y| y.partial_cmp(x).expect("finite sigma"));

    Ok(Svd {
        u: u_sorted,
        sigma,
        v: v_sorted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    fn assert_orthonormal_columns(m: &Matrix, tol: f64) {
        let gram = m.transpose().matmul(m).unwrap();
        let eye = Matrix::identity(m.cols());
        assert!(
            gram.max_abs_diff(&eye).unwrap() < tol,
            "columns not orthonormal: {gram:?}"
        );
    }

    #[test]
    fn svd_of_diagonal() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 2.0]]).unwrap();
        let f = svd(&a).unwrap();
        assert_close(f.sigma[0], 3.0, 1e-12);
        assert_close(f.sigma[1], 2.0, 1e-12);
    }

    #[test]
    fn svd_reconstructs_random_tall() {
        let a = Matrix::from_fn(7, 4, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let f = svd(&a).unwrap();
        let r = f.reconstruct().unwrap();
        assert!(r.max_abs_diff(&a).unwrap() < 1e-10);
        assert_orthonormal_columns(&f.u, 1e-10);
        assert_orthonormal_columns(&f.v, 1e-10);
    }

    #[test]
    fn svd_reconstructs_wide() {
        let a = Matrix::from_fn(3, 6, |i, j| (i as f64 + 1.0) * (j as f64 - 2.5));
        let f = svd(&a).unwrap();
        assert_eq!(f.u.shape(), (3, 3));
        assert_eq!(f.v.shape(), (6, 3));
        let r = f.reconstruct().unwrap();
        assert!(r.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn singular_values_sorted_descending() {
        let a = Matrix::from_fn(5, 5, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let f = svd(&a).unwrap();
        for w in f.sigma.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn rank_deficient_detected() {
        // Second column = 2 × first column → rank 1.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let f = svd(&a).unwrap();
        let tol = f.default_tolerance(3, 2);
        assert_eq!(f.rank(tol), 1);
    }

    #[test]
    fn svd_of_zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let f = svd(&a).unwrap();
        assert!(f.sigma.iter().all(|&s| s == 0.0));
        assert!(f.reconstruct().unwrap().max_abs() < 1e-15);
    }

    #[test]
    fn svd_rejects_empty_and_nan() {
        assert!(svd(&Matrix::zeros(0, 3)).is_err());
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = f64::NAN;
        assert!(svd(&a).is_err());
    }

    #[test]
    fn svd_matches_known_frobenius_identity() {
        // ‖A‖_F² = Σ σᵢ².
        let a = Matrix::from_fn(6, 3, |i, j| ((i + 2 * j) as f64).sin());
        let f = svd(&a).unwrap();
        let fro2: f64 = a.frobenius_norm().powi(2);
        let sum2: f64 = f.sigma.iter().map(|s| s * s).sum();
        assert_close(fro2, sum2, 1e-10);
    }
}
