//! Free-standing vector helpers used across the workspace.
//!
//! These operate on plain `&[f64]` slices so callers do not need to wrap
//! short-lived vectors in [`crate::Matrix`].

/// Dot product of two equal-length slices, dispatched through the
/// [`crate::kernel`] backend. The AVX2 arm reduces across SIMD lanes, so
/// it may differ from the scalar arm by a few ULP (documented bound in
/// the kernel module); every other `vecops` routine is bit-identical
/// across backends.
///
/// # Panics
/// Panics if the lengths differ — same contract in debug and release
/// builds, consistent with the typed shape errors on [`crate::Matrix`]
/// ops (a slice helper has no `Result` channel, so the mismatch is a
/// programming error and fails loudly).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    crate::kernel::dot(a, b)
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y ← y + alpha * x` in place, dispatched through the
/// [`crate::kernel`] backend (bit-identical across backends — the update
/// is elementwise, no reduction).
///
/// # Panics
/// Panics if the lengths differ — same contract in debug and release
/// builds; see [`dot`].
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    crate::kernel::axpy(alpha, x, y)
}

/// Element-wise difference `a - b` as a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x - y).collect()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().sum::<f64>() / a.len() as f64
}

/// Population variance; `0.0` for slices with fewer than two elements.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns `0.0` when either side has (numerically) zero variance, which
/// matches how the paper's correlation diagnostics treat constant
/// features: a constant feature carries no usable correlation signal.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    let denom = (va * vb).sqrt();
    if denom <= f64::EPSILON * n as f64 {
        0.0
    } else {
        cov / denom
    }
}

/// Index of the maximum element (first one on ties).
///
/// # Panics
/// Panics if the slice is empty.
pub fn argmax(a: &[f64]) -> usize {
    assert!(!a.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > a[best] {
            best = i;
        }
    }
    best
}

/// Numerically-stable softmax.
pub fn softmax(z: &[f64]) -> Vec<f64> {
    if z.is_empty() {
        return Vec::new();
    }
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, stable for large |x|.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse sigmoid (logit). Clamps the argument into `(eps, 1-eps)` so the
/// equality-solving attack tolerates confidence scores that were rounded
/// to exactly 0 or 1 by a defense.
pub fn logit(p: f64) -> f64 {
    let eps = 1e-12;
    let p = p.clamp(eps, 1.0 - eps);
    (p / (1.0 - p)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norm2_known() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_mismatch_panics() {
        let mut y = vec![0.0, 0.0];
        axpy(1.0, &[1.0, 2.0, 3.0], &mut y);
    }

    #[test]
    fn mean_variance_known() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), 2.5);
        assert!((variance(&v) - 1.25).abs() < 1e-15);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let s = softmax(&[1000.0, 1001.0, 1002.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        assert!(s.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn sigmoid_symmetry_and_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(800.0).is_finite());
        assert!(sigmoid(-800.0).is_finite());
    }

    #[test]
    fn logit_inverts_sigmoid() {
        for &x in &[-5.0, -0.5, 0.0, 0.5, 5.0] {
            assert!((logit(sigmoid(x)) - x).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    fn logit_clamps_extremes() {
        assert!(logit(0.0).is_finite());
        assert!(logit(1.0).is_finite());
    }
}
