//! Numeric precision knob for the matmul-heavy paths.

/// Compute precision for matmul-heavy code paths.
///
/// The default, [`Precision::F64`], keeps every operation in full double
/// precision with results bit-identical across kernel backends.
/// [`Precision::F32`] is an opt-in fast path — operands are demoted to
/// f32, products accumulate in f32 (with FMA on the AVX2 backend), and
/// partial sums are widened into f64 at reduction boundaries. GRNA
/// generator training exposes this as a config knob: the attack's
/// reconstruction quality tolerates f32 (pinned by test), and the f32
/// kernels move half the memory and twice the SIMD lanes per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full f64 throughout (default; bit-identical across backends).
    #[default]
    F64,
    /// f32 storage/compute with f64 accumulation at reduction
    /// boundaries. Accuracy is f32-level; opt-in only.
    F32,
}

impl Precision {
    /// Stable lowercase identifier (`"f64"` / `"f32"`), used in bench
    /// JSON keys and log lines.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_f64() {
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    fn names_stable() {
        assert_eq!(Precision::F64.name(), "f64");
        assert_eq!(Precision::F32.name(), "f32");
    }
}
