//! x86-64 AVX2(+FMA) arm.
//!
//! GEBP-style blocked GEMM: operands are packed into panel buffers
//! (`MR`-row strips of A, `NR`-column strips of B, zero-padded at the
//! edges) and a register-blocked 4×8 microkernel sweeps each tile with
//! the output block held in ymm registers. Remainder rows ride the
//! zero-padding; remainder columns use `maskload`/`maskstore` so edge
//! tiles never touch memory outside the output buffer.
//!
//! Ordering contract (see the module docs on [`super`]): the f64
//! microkernel keeps the *output tile* in registers as the running
//! total — it loads `out`, adds one separately-rounded `a·b` product per
//! `k` step in ascending order, and stores at the panel boundary
//! (store/reload is exact). That is precisely the scalar arm's
//! per-element accumulation sequence, so f64 results match the scalar
//! arm bit-for-bit (up to the sign of exact zeros: the scalar arm skips
//! `a_ik == 0` terms, this arm adds the signed-zero product). FMA is
//! used only in the f32 mixed-precision kernel, where tolerance — not
//! bit-equality — is the contract.

#![allow(unsafe_op_in_unsafe_fn)]

use super::MIXED_KC;
use core::arch::x86_64::*;

/// Microkernel tile height (output rows held in registers).
const MR: usize = 4;
/// Microkernel tile width in f64 columns (two `__m256d`).
const NR: usize = 8;
/// Microkernel tile width in f32 columns (two `__m256`).
const NRF: usize = 16;
/// `k`-panel depth: one packed A strip (`MR × KC` f64 = 8 KiB) stays L1
/// resident while the B panel streams.
const KC: usize = 256;
/// `j`-panel width: one packed B panel (`KC × NC` f64 = 1 MiB) stays L2
/// resident across all row strips.
const NC: usize = 512;

/// Builds a lane mask selecting the first `lanes` of 4 f64 lanes.
#[inline]
#[target_feature(enable = "avx2")]
fn lane_mask(lanes: usize) -> __m256i {
    let l = |i: usize| if i < lanes { -1_i64 } else { 0 };
    _mm256_setr_epi64x(l(0), l(1), l(2), l(3))
}

/// Loads an up-to-8-wide f64 row segment into two vectors (masked at the
/// edge; lanes past `nr` read as zero and are never dereferenced).
///
/// Safety: `p` must be valid for reads of `nr` f64 values.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn load2(p: *const f64, nr: usize, ml: __m256i, mh: __m256i) -> (__m256d, __m256d) {
    if nr == NR {
        (_mm256_loadu_pd(p), _mm256_loadu_pd(p.add(4)))
    } else {
        let lo = _mm256_maskload_pd(p, ml);
        let hi = if nr > 4 {
            _mm256_maskload_pd(p.add(4), mh)
        } else {
            _mm256_setzero_pd()
        };
        (lo, hi)
    }
}

/// Stores an up-to-8-wide f64 row segment (masked at the edge).
///
/// Safety: `p` must be valid for writes of `nr` f64 values.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn store2(p: *mut f64, nr: usize, ml: __m256i, mh: __m256i, v0: __m256d, v1: __m256d) {
    if nr == NR {
        _mm256_storeu_pd(p, v0);
        _mm256_storeu_pd(p.add(4), v1);
    } else {
        _mm256_maskstore_pd(p, ml, v0);
        if nr > 4 {
            _mm256_maskstore_pd(p.add(4), mh, v1);
        }
    }
}

/// `out += a · b` (both row-major, `b` is `k × n`).
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) fn gemm_acc(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_driver(a, b, out, m, k, n, false);
}

/// `out += a · btᵀ` (`bt` is the transposed right factor, `n × k`).
/// The B packing performs the transpose, so the same microkernel runs.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) fn gemm_tn_acc(a: &[f64], bt: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_driver(a, bt, out, m, k, n, true);
}

#[target_feature(enable = "avx2", enable = "fma")]
fn gemm_driver(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    b_is_transposed: bool,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let kc_cap = k.min(KC);
    let nc_cap = n.min(NC).div_ceil(NR) * NR;
    let mut bp = vec![0.0_f64; kc_cap * nc_cap];
    let mut ap = vec![0.0_f64; MR * kc_cap];
    for k0 in (0..k).step_by(KC) {
        let kc = KC.min(k - k0);
        for j0 in (0..n).step_by(NC) {
            let nc = NC.min(n - j0);
            let strips = nc.div_ceil(NR);
            if b_is_transposed {
                pack_b_tn(b, &mut bp, k0, kc, j0, nc, k);
            } else {
                pack_b_nn(b, &mut bp, k0, kc, j0, nc, n);
            }
            for i0 in (0..m).step_by(MR) {
                let mr = MR.min(m - i0);
                pack_a(a, &mut ap, i0, mr, k0, kc, k);
                for s in 0..strips {
                    let j = j0 + s * NR;
                    let nr = NR.min(j0 + nc - j);
                    let strip = &bp[s * kc * NR..(s + 1) * kc * NR];
                    microkernel(&ap, strip, out, i0, mr, j, nr, n, kc);
                }
            }
        }
    }
}

/// Packs the `mr × kc` A strip at `(i0, k0)` as `ap[kk*MR + r]`,
/// zero-padding rows past `mr` (padded rows multiply to signed zeros
/// that are never stored).
fn pack_a(a: &[f64], ap: &mut [f64], i0: usize, mr: usize, k0: usize, kc: usize, k: usize) {
    for kk in 0..kc {
        for r in 0..MR {
            ap[kk * MR + r] = if r < mr {
                a[(i0 + r) * k + k0 + kk]
            } else {
                0.0
            };
        }
    }
}

/// Packs the `kc × nc` B panel at `(k0, j0)` into `NR`-wide strips,
/// `bp[s*kc*NR + kk*NR + jj]`, zero-padding columns past `nc`.
fn pack_b_nn(b: &[f64], bp: &mut [f64], k0: usize, kc: usize, j0: usize, nc: usize, n: usize) {
    let strips = nc.div_ceil(NR);
    for s in 0..strips {
        let dst = &mut bp[s * kc * NR..(s + 1) * kc * NR];
        let jw = NR.min(nc - s * NR);
        for kk in 0..kc {
            let src = &b[(k0 + kk) * n + j0 + s * NR..];
            for jj in 0..NR {
                dst[kk * NR + jj] = if jj < jw { src[jj] } else { 0.0 };
            }
        }
    }
}

/// As [`pack_b_nn`] but gathers from a transposed (`n × k`) factor —
/// the pack performs the transpose once per panel.
fn pack_b_tn(bt: &[f64], bp: &mut [f64], k0: usize, kc: usize, j0: usize, nc: usize, k: usize) {
    let strips = nc.div_ceil(NR);
    for s in 0..strips {
        let dst = &mut bp[s * kc * NR..(s + 1) * kc * NR];
        let jw = NR.min(nc - s * NR);
        for jj in 0..NR {
            if jj < jw {
                let src = &bt[(j0 + s * NR + jj) * k + k0..];
                for kk in 0..kc {
                    dst[kk * NR + jj] = src[kk];
                }
            } else {
                for kk in 0..kc {
                    dst[kk * NR + jj] = 0.0;
                }
            }
        }
    }
}

/// 4×8 f64 tile: the output block rides in 8 ymm accumulators as the
/// running total; each `k` step adds one separately-rounded product
/// (`add(mul)` — deliberately *not* FMA, to preserve the scalar arm's
/// rounding sequence).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
fn microkernel(
    ap: &[f64],
    bp: &[f64],
    out: &mut [f64],
    i0: usize,
    mr: usize,
    j: usize,
    nr: usize,
    n: usize,
    kc: usize,
) {
    let ml = lane_mask(nr.min(4));
    let mh = lane_mask(nr.saturating_sub(4).min(4));
    let zero = _mm256_setzero_pd();
    let base = i0 * n + j;
    let po = out.as_ptr();
    // SAFETY: rows r < mr lie fully inside `out`; load2 touches only the
    // first `nr` columns of each row.
    let (mut c00, mut c01) = unsafe { load2(po.add(base), nr, ml, mh) };
    let (mut c10, mut c11) = if mr > 1 {
        unsafe { load2(po.add(base + n), nr, ml, mh) }
    } else {
        (zero, zero)
    };
    let (mut c20, mut c21) = if mr > 2 {
        unsafe { load2(po.add(base + 2 * n), nr, ml, mh) }
    } else {
        (zero, zero)
    };
    let (mut c30, mut c31) = if mr > 3 {
        unsafe { load2(po.add(base + 3 * n), nr, ml, mh) }
    } else {
        (zero, zero)
    };

    let bpp = bp.as_ptr();
    for (kk, a4) in ap.chunks_exact(MR).take(kc).enumerate() {
        // SAFETY: the packed strip holds kc * NR elements.
        let b0 = unsafe { _mm256_loadu_pd(bpp.add(kk * NR)) };
        let b1 = unsafe { _mm256_loadu_pd(bpp.add(kk * NR + 4)) };
        let a0 = _mm256_set1_pd(a4[0]);
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(a0, b0));
        c01 = _mm256_add_pd(c01, _mm256_mul_pd(a0, b1));
        let a1 = _mm256_set1_pd(a4[1]);
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(a1, b0));
        c11 = _mm256_add_pd(c11, _mm256_mul_pd(a1, b1));
        let a2 = _mm256_set1_pd(a4[2]);
        c20 = _mm256_add_pd(c20, _mm256_mul_pd(a2, b0));
        c21 = _mm256_add_pd(c21, _mm256_mul_pd(a2, b1));
        let a3 = _mm256_set1_pd(a4[3]);
        c30 = _mm256_add_pd(c30, _mm256_mul_pd(a3, b0));
        c31 = _mm256_add_pd(c31, _mm256_mul_pd(a3, b1));
    }

    let pm = out.as_mut_ptr();
    // SAFETY: same bounds as the loads above.
    unsafe { store2(pm.add(base), nr, ml, mh, c00, c01) };
    if mr > 1 {
        unsafe { store2(pm.add(base + n), nr, ml, mh, c10, c11) };
    }
    if mr > 2 {
        unsafe { store2(pm.add(base + 2 * n), nr, ml, mh, c20, c21) };
    }
    if mr > 3 {
        unsafe { store2(pm.add(base + 3 * n), nr, ml, mh, c30, c31) };
    }
}

// ----------------------------------------------------------------------
// f32 mixed-precision GEMM
// ----------------------------------------------------------------------

/// Mixed-precision `out += a32 · b32`: a 4×16 f32 tile accumulates with
/// 8-lane FMA inside each [`MIXED_KC`]-deep `k` panel and is widened
/// (`_mm256_cvtps_pd`) into the f64 output at the panel boundary — the
/// same reduction boundary as the scalar arm, so both arms share one
/// error profile (agreement is to f32 tolerance, not bitwise).
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) fn gemm_mixed_acc(
    a32: &[f32],
    b32: &[f32],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let kc_cap = k.min(MIXED_KC);
    let nc_cap = n.min(NC).div_ceil(NRF) * NRF;
    let mut bp = vec![0.0_f32; kc_cap * nc_cap];
    let mut ap = vec![0.0_f32; MR * kc_cap];
    for k0 in (0..k).step_by(MIXED_KC) {
        let kc = MIXED_KC.min(k - k0);
        for j0 in (0..n).step_by(NC) {
            let nc = NC.min(n - j0);
            let strips = nc.div_ceil(NRF);
            for s in 0..strips {
                let dst = &mut bp[s * kc * NRF..(s + 1) * kc * NRF];
                let jw = NRF.min(nc - s * NRF);
                for kk in 0..kc {
                    let src = &b32[(k0 + kk) * n + j0 + s * NRF..];
                    for jj in 0..NRF {
                        dst[kk * NRF + jj] = if jj < jw { src[jj] } else { 0.0 };
                    }
                }
            }
            for i0 in (0..m).step_by(MR) {
                let mr = MR.min(m - i0);
                for kk in 0..kc {
                    for r in 0..MR {
                        ap[kk * MR + r] = if r < mr {
                            a32[(i0 + r) * k + k0 + kk]
                        } else {
                            0.0
                        };
                    }
                }
                for s in 0..strips {
                    let j = j0 + s * NRF;
                    let nr = NRF.min(j0 + nc - j);
                    let strip = &bp[s * kc * NRF..(s + 1) * kc * NRF];
                    microkernel_f32(&ap, strip, out, i0, mr, j, nr, n, kc);
                }
            }
        }
    }
}

/// 4×16 f32 FMA tile; partial sums start at zero each panel and are
/// widened into the f64 output when the panel ends.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
fn microkernel_f32(
    ap: &[f32],
    bp: &[f32],
    out: &mut [f64],
    i0: usize,
    mr: usize,
    j: usize,
    nr: usize,
    n: usize,
    kc: usize,
) {
    let zero = _mm256_setzero_ps();
    let mut acc = [[zero; 2]; MR];
    let bpp = bp.as_ptr();
    for (kk, a4) in ap.chunks_exact(MR).take(kc).enumerate() {
        // SAFETY: the packed strip holds kc * NRF elements.
        let b0 = unsafe { _mm256_loadu_ps(bpp.add(kk * NRF)) };
        let b1 = unsafe { _mm256_loadu_ps(bpp.add(kk * NRF + 8)) };
        for (r, row) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(a4[r]);
            row[0] = _mm256_fmadd_ps(av, b0, row[0]);
            row[1] = _mm256_fmadd_ps(av, b1, row[1]);
        }
    }
    let pm = out.as_mut_ptr();
    for (r, row) in acc.iter().enumerate().take(mr) {
        let p = unsafe { pm.add((i0 + r) * n + j) };
        // SAFETY: flushes touch only the first `nr` columns of row i0+r.
        unsafe { flush_f32(p, row[0], nr.min(NR)) };
        if nr > NR {
            unsafe { flush_f32(p.add(NR), row[1], nr - NR) };
        }
    }
}

/// Widens one 8-lane f32 partial-sum vector to f64 and accumulates it
/// into up to `lanes` (≤ 8) output columns.
///
/// Safety: `p` must be valid for reads and writes of `lanes` f64 values.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn flush_f32(p: *mut f64, v: __m256, lanes: usize) {
    let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    let hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(v));
    acc4(p, lo, lanes.min(4));
    if lanes > 4 {
        acc4(p.add(4), hi, lanes - 4);
    }
}

/// `p[0..lanes] += v[0..lanes]` (masked when `lanes < 4`).
///
/// Safety: `p` must be valid for reads and writes of `lanes` f64 values.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn acc4(p: *mut f64, v: __m256d, lanes: usize) {
    if lanes == 4 {
        _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), v));
    } else if lanes > 0 {
        let m = lane_mask(lanes);
        let cur = _mm256_maskload_pd(p, m);
        _mm256_maskstore_pd(p, m, _mm256_add_pd(cur, v));
    }
}

// ----------------------------------------------------------------------
// Vector kernels
// ----------------------------------------------------------------------

/// Lane-parallel dot: 4 running lane sums, combined pairwise at the end,
/// scalar tail. Reassociates the reduction, hence the documented ULP
/// bound instead of bit-equality.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) fn dot(a: &[f64], b: &[f64]) -> f64 {
    let chunks = a.len() / 4;
    let mut acc = _mm256_setzero_pd();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    for c in 0..chunks {
        // SAFETY: c*4 + 4 <= len by construction.
        let (av, bv) = unsafe {
            (
                _mm256_loadu_pd(pa.add(c * 4)),
                _mm256_loadu_pd(pb.add(c * 4)),
            )
        };
        acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
    }
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd::<1>(acc);
    let s2 = _mm_add_pd(lo, hi);
    let s1 = _mm_add_sd(s2, _mm_unpackhi_pd(s2, s2));
    let mut total = _mm_cvtsd_f64(s1);
    for i in chunks * 4..a.len() {
        total += a[i] * b[i];
    }
    total
}

/// `y ← y + alpha·x`; elementwise `add(mul)` matches the scalar arm
/// bit-for-bit.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let chunks = y.len() / 4;
    let av = _mm256_set1_pd(alpha);
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    for c in 0..chunks {
        // SAFETY: c*4 + 4 <= len by construction.
        unsafe {
            let xv = _mm256_loadu_pd(px.add(c * 4));
            let yv = _mm256_loadu_pd(py.add(c * 4));
            _mm256_storeu_pd(py.add(c * 4), _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
        }
    }
    for i in chunks * 4..y.len() {
        y[i] += alpha * x[i];
    }
}

macro_rules! elementwise {
    ($name:ident, $vop:ident, $sop:tt) => {
        #[target_feature(enable = "avx2")]
        pub(super) fn $name(a: &[f64], b: &[f64], out: &mut [f64]) {
            let chunks = out.len() / 4;
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let po = out.as_mut_ptr();
            for c in 0..chunks {
                // SAFETY: c*4 + 4 <= len by construction.
                unsafe {
                    let av = _mm256_loadu_pd(pa.add(c * 4));
                    let bv = _mm256_loadu_pd(pb.add(c * 4));
                    _mm256_storeu_pd(po.add(c * 4), $vop(av, bv));
                }
            }
            for i in chunks * 4..out.len() {
                out[i] = a[i] $sop b[i];
            }
        }
    };
}

elementwise!(vadd, _mm256_add_pd, +);
elementwise!(vsub, _mm256_sub_pd, -);
elementwise!(vmul, _mm256_mul_pd, *);

/// `out = a · s`; elementwise, bit-identical to the scalar arm.
#[target_feature(enable = "avx2")]
pub(super) fn vscale(a: &[f64], s: f64, out: &mut [f64]) {
    let chunks = out.len() / 4;
    let sv = _mm256_set1_pd(s);
    let pa = a.as_ptr();
    let po = out.as_mut_ptr();
    for c in 0..chunks {
        // SAFETY: c*4 + 4 <= len by construction.
        unsafe {
            let av = _mm256_loadu_pd(pa.add(c * 4));
            _mm256_storeu_pd(po.add(c * 4), _mm256_mul_pd(av, sv));
        }
    }
    for i in chunks * 4..out.len() {
        out[i] = a[i] * s;
    }
}
