//! Portable scalar arm — the reference semantics every other backend
//! must reproduce (bitwise for the f64 kernels, to f32 tolerance for the
//! mixed-precision one).
//!
//! These loops are byte-for-byte the pre-kernel-layer implementations
//! that used to live in `Matrix`/`vecops`, so routing through the
//! dispatch changed nothing for `FIA_FORCE_SCALAR=1` runs.

use super::MIXED_KC;

/// `k`-block width the scalar gemm switches to once the working set
/// outgrows L1/L2 — same cutover the old `Matrix::matmul` used.
const SCALAR_KC: usize = 64;
const SCALAR_CUTOVER: usize = 64 * 1024;

/// `out += a · b`, row-major. Accumulates `k`-ascending per output
/// element (blocked and plain orderings agree bit-for-bit).
pub(super) fn gemm_acc(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    if m * k + k * n > SCALAR_CUTOVER {
        for k0 in (0..k).step_by(SCALAR_KC) {
            let k1 = (k0 + SCALAR_KC).min(k);
            for i in 0..m {
                row_kernel(
                    &a[i * k..(i + 1) * k],
                    b,
                    &mut out[i * n..(i + 1) * n],
                    k0,
                    k1,
                    n,
                );
            }
        }
    } else {
        for i in 0..m {
            row_kernel(
                &a[i * k..(i + 1) * k],
                b,
                &mut out[i * n..(i + 1) * n],
                0,
                k,
                n,
            );
        }
    }
}

/// Accumulates `o_row[j] += Σ_{k0≤kk<k1} a_row[kk] · b[kk][j]`.
#[inline]
fn row_kernel(a_row: &[f64], b: &[f64], o_row: &mut [f64], k0: usize, k1: usize, n: usize) {
    for (kk, &a_ik) in a_row[k0..k1].iter().enumerate() {
        if a_ik == 0.0 {
            continue;
        }
        let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
        for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
            *o += a_ik * bv;
        }
    }
}

/// `out += a · btᵀ` with `bt` stored `n × k`: every output element is a
/// contiguous row-dot, accumulated `k`-ascending. The fold seeds from the
/// existing `out` value (not a fresh zero) so the accumulation order is
/// the same left fold the AVX2 microkernel performs — bit-identical even
/// when `out` arrives non-zero. For the zero-initialized call the old
/// `matmul_transposed` made, seeding from `0.0` is the identical fold.
pub(super) fn gemm_tn_acc(a: &[f64], bt: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, o) in out[i * n..(i + 1) * n].iter_mut().enumerate() {
            *o = a_row
                .iter()
                .zip(bt[j * k..(j + 1) * k].iter())
                .fold(*o, |acc, (&x, &y)| acc + x * y);
        }
    }
}

/// Mixed-precision `out += a32 · b32`: f32 products accumulate in an f32
/// row buffer within each [`MIXED_KC`]-wide `k` panel and are flushed
/// into the f64 output at the panel boundary — the same reduction
/// boundary the AVX2 arm uses, so both arms share one error profile.
pub(super) fn gemm_mixed_acc(
    a32: &[f32],
    b32: &[f32],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mut acc = vec![0.0f32; n];
    for k0 in (0..k).step_by(MIXED_KC) {
        let k1 = (k0 + MIXED_KC).min(k);
        for i in 0..m {
            acc.fill(0.0);
            for kk in k0..k1 {
                let aik = a32[i * k + kk];
                let b_row = &b32[kk * n..(kk + 1) * n];
                for (s, &bv) in acc.iter_mut().zip(b_row.iter()) {
                    *s += aik * bv;
                }
            }
            for (o, &s) in out[i * n..(i + 1) * n].iter_mut().zip(acc.iter()) {
                *o += f64::from(s);
            }
        }
    }
}

/// Sequential dot product — the reference the AVX2 arm's lane-reduced
/// variant is ULP-bounded against.
#[inline]
pub(super) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// `y ← y + alpha·x`.
#[inline]
pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

pub(super) fn vadd(a: &[f64], b: &[f64], out: &mut [f64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x + y;
    }
}

pub(super) fn vsub(a: &[f64], b: &[f64], out: &mut [f64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x - y;
    }
}

pub(super) fn vmul(a: &[f64], b: &[f64], out: &mut [f64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x * y;
    }
}

pub(super) fn vscale(a: &[f64], s: f64, out: &mut [f64]) {
    for (o, &x) in out.iter_mut().zip(a.iter()) {
        *o = x * s;
    }
}
