//! Always-on gemm instrumentation.
//!
//! Every dispatched gemm call bumps three process-global counters —
//! calls, output rows, flops (`2·m·k·n`) — labeled by the backend arm
//! that actually ran, so a `MetricsText` scrape shows where the compute
//! went and which arm carried it. The counters are cached in per-backend
//! `OnceLock`s: the steady-state cost is three relaxed `fetch_add`s per
//! gemm, negligible next to any gemm worth counting.
//!
//! Setting `FIA_PROFILE=1` (read once per process) additionally times
//! each call into a per-backend log2 histogram
//! (`fia_kernel_gemm_duration_us`). Timing is opt-in because two
//! `Instant` reads per call are *not* negligible for the small tiles
//! `par_matmul` fans out.

use super::Backend;
use fia_telemetry::{global, Counter, Histogram};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

struct GemmInstruments {
    calls: Arc<Counter>,
    rows: Arc<Counter>,
    flops: Arc<Counter>,
    duration: Option<Arc<Histogram>>,
}

fn profiling() -> bool {
    static PROFILING: OnceLock<bool> = OnceLock::new();
    *PROFILING.get_or_init(|| {
        std::env::var("FIA_PROFILE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

fn instruments(backend: Backend) -> &'static GemmInstruments {
    static SCALAR: OnceLock<GemmInstruments> = OnceLock::new();
    static AVX2: OnceLock<GemmInstruments> = OnceLock::new();
    let cell = match backend {
        Backend::Scalar => &SCALAR,
        Backend::Avx2 => &AVX2,
    };
    cell.get_or_init(|| {
        let labels = [("backend", backend.name())];
        GemmInstruments {
            calls: global().counter_with(
                "fia_kernel_gemm_calls_total",
                "Dispatched gemm kernel calls, by backend arm.",
                &labels,
            ),
            rows: global().counter_with(
                "fia_kernel_gemm_rows_total",
                "Output rows produced by gemm calls, by backend arm.",
                &labels,
            ),
            flops: global().counter_with(
                "fia_kernel_gemm_flops_total",
                "Floating-point operations (2·m·k·n) issued to gemm, by backend arm.",
                &labels,
            ),
            duration: profiling().then(|| {
                global().histogram_with(
                    "fia_kernel_gemm_duration_us",
                    "Per-call gemm wall time, microseconds (FIA_PROFILE=1 only).",
                    &labels,
                )
            }),
        }
    })
}

/// Counts one gemm on the (already resolved) `backend` arm and runs it,
/// timing it when `FIA_PROFILE=1`.
pub(super) fn record_gemm(backend: Backend, m: usize, k: usize, n: usize, f: impl FnOnce()) {
    let ins = instruments(backend);
    ins.calls.inc();
    ins.rows.add(m as u64);
    ins.flops.add(2 * (m as u64) * (k as u64) * (n as u64));
    match &ins.duration {
        Some(hist) => {
            let t0 = Instant::now();
            f();
            hist.record(t0.elapsed().as_micros() as u64);
        }
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_counters_accumulate_calls_rows_and_flops() {
        let before = instruments(Backend::Scalar).flops.get();
        let mut ran = false;
        record_gemm(Backend::Scalar, 4, 8, 2, || ran = true);
        assert!(ran);
        let ins = instruments(Backend::Scalar);
        assert!(ins.calls.get() >= 1);
        assert!(ins.rows.get() >= 4);
        assert_eq!(ins.flops.get() - before, 2 * 4 * 8 * 2);
    }
}
