//! Runtime-dispatched compute microkernels.
//!
//! Every dense hot loop in the workspace — the matmul family behind the
//! ESA solve and `pinv`, the served model's `predict_proba`, the
//! `fia-tensor` tape that dominates GRNA wall-clock, and the `vecops`
//! helpers — bottoms out here. The module holds two backend arms:
//!
//! * [`Backend::Scalar`] — portable Rust loops, byte-for-byte the
//!   pre-kernel-layer semantics. Always available.
//! * [`Backend::Avx2`] — explicit `std::arch` x86-64 AVX2(+FMA)
//!   microkernels with packed A/B panel layouts, a register-blocked
//!   4×8 inner tile and masked edge handling.
//!
//! The arm is chosen **once** per process via
//! `is_x86_feature_detected!` (see [`detected_backend`]); setting
//! `FIA_FORCE_SCALAR=1` in the environment pins the scalar arm, which is
//! how CI keeps the fallback green on hosts whose feature set differs
//! from the dev machine. Tests and benches can additionally pin a
//! backend for the current thread with [`with_backend`] — the override
//! nests and is restored on unwind.
//!
//! # Numerical contract
//!
//! The `f64` kernels (`gemm*`, [`axpy`], the elementwise `v*` family)
//! preserve the scalar arm's accumulation order *exactly*: every output
//! element accumulates its `k` contributions in ascending order with a
//! separately rounded multiply and add (no FMA contraction). Both arms
//! therefore produce **bit-identical** results — attack outputs do not
//! depend on which backend ran, and `FIA_FORCE_SCALAR=1` is a pure
//! performance switch. Two documented exceptions:
//!
//! * [`dot`] reduces across lanes (4 partial sums combined pairwise at
//!   the end), so the AVX2 arm may differ from scalar by a few ULP —
//!   bounded by `4·ε·Σ|aᵢbᵢ|` in the parity sweep. Nothing
//!   result-affecting in the attack stack consumes `dot`.
//! * [`gemm_mixed_acc`] is the opt-in f32 mixed-precision path (GRNA
//!   generator training): inputs and multiplies are `f32` (the AVX2 arm
//!   uses 8-lane FMA), partial sums are flushed into the `f64` output at
//!   every `k`-panel boundary. The two arms agree to f32 tolerance, not
//!   bitwise.

mod scalar;
mod telemetry;

#[cfg(target_arch = "x86_64")]
mod avx2;

use std::cell::Cell;
use std::sync::OnceLock;

/// `k`-panel width shared by both arms of the mixed-precision kernel:
/// the reduction boundary at which f32 partial sums are rounded into the
/// f64 accumulator. Keeping it backend-independent keeps the f32 path's
/// error profile stable under dispatch.
pub(crate) const MIXED_KC: usize = 256;

/// A compute backend arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar loops — the reference semantics.
    Scalar,
    /// x86-64 AVX2+FMA microkernels (runtime-detected).
    Avx2,
}

impl Backend {
    /// Stable lowercase identifier (`"scalar"` / `"avx2"`), used in
    /// bench JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

/// `true` when the running CPU supports the AVX2+FMA arm (independent of
/// any `FIA_FORCE_SCALAR` override).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The process-wide backend: `FIA_FORCE_SCALAR=1` pins the scalar arm,
/// otherwise the best arm the CPU supports. Detected once and cached —
/// changing the environment variable after the first kernel call has no
/// effect.
pub fn detected_backend() -> Backend {
    static DETECTED: OnceLock<Backend> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let forced = std::env::var("FIA_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if !forced && avx2_available() {
            Backend::Avx2
        } else {
            Backend::Scalar
        }
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<Backend>> = const { Cell::new(None) };
}

/// The backend the *current thread* dispatches to: a [`with_backend`]
/// override if one is active, else [`detected_backend`].
pub fn active_backend() -> Backend {
    OVERRIDE.with(|o| o.get()).unwrap_or_else(detected_backend)
}

/// Runs `f` with every dispatched kernel on the current thread pinned to
/// `backend` — the hook parity tests and benches use to compare arms in
/// one process. The override nests, is restored on unwind, and does not
/// propagate to spawned threads ([`crate::par_matmul`] captures the
/// caller's backend before fanning out, so it *does* honor the override).
///
/// # Panics
/// Panics if `backend` is [`Backend::Avx2`] on a host without AVX2+FMA.
pub fn with_backend<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    assert!(
        backend != Backend::Avx2 || avx2_available(),
        "with_backend: AVX2 arm requested but host lacks avx2+fma"
    );
    struct Restore(Option<Backend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(backend))));
    f()
}

// ----------------------------------------------------------------------
// f64 matmul family
// ----------------------------------------------------------------------

/// `out += a · b` for row-major `a` (`m × k`), `b` (`k × n`), `out`
/// (`m × n`) — the single inner kernel behind [`crate::Matrix::matmul`],
/// [`crate::Matrix::matmul_blocked`] and the per-worker tiles of
/// [`crate::par_matmul`]. Accumulation is `k`-ascending per output
/// element on both arms (see the module docs), so all callers agree
/// bitwise.
pub fn gemm_acc(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_acc_with(active_backend(), a, b, out, m, k, n);
}

/// [`gemm_acc`] on an explicit backend arm.
pub fn gemm_acc_with(
    backend: Backend,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    check_gemm_shapes(a.len(), b.len(), out.len(), m, k, n);
    let backend = resolve(backend);
    telemetry::record_gemm(backend, m, k, n, || match backend {
        Backend::Scalar => scalar::gemm_acc(a, b, out, m, k, n),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `resolve` only yields Avx2 when the CPU supports it.
        Backend::Avx2 => unsafe { avx2::gemm_acc(a, b, out, m, k, n) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("resolve() never yields Avx2 off x86-64"),
    });
}

/// `out += a · btᵀ` for row-major `a` (`m × k`), `bt` (`n × k`, the
/// already-transposed right factor), `out` (`m × n`) — the kernel behind
/// [`crate::Matrix::matmul_transposed`] (the batched ESA solve). The
/// AVX2 arm packs `bt` into column panels (the packing performs the
/// transpose) and runs the same order-preserving tile kernel, so both
/// arms agree bitwise.
pub fn gemm_tn_acc(a: &[f64], bt: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_tn_acc_with(active_backend(), a, bt, out, m, k, n);
}

/// [`gemm_tn_acc`] on an explicit backend arm.
pub fn gemm_tn_acc_with(
    backend: Backend,
    a: &[f64],
    bt: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    check_gemm_shapes(a.len(), bt.len(), out.len(), m, k, n);
    let backend = resolve(backend);
    telemetry::record_gemm(backend, m, k, n, || match backend {
        Backend::Scalar => scalar::gemm_tn_acc(a, bt, out, m, k, n),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `resolve` only yields Avx2 when the CPU supports it.
        Backend::Avx2 => unsafe { avx2::gemm_tn_acc(a, bt, out, m, k, n) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("resolve() never yields Avx2 off x86-64"),
    });
}

/// `out += demote(a) · demote(b)` computed in f32 — the opt-in
/// mixed-precision arm of GRNA generator training. `a32`/`b32` are the
/// row-major f32 operands; products accumulate in f32 within
/// [`MIXED_KC`]-wide `k` panels and are flushed into the f64 `out` at
/// every panel boundary. The AVX2 arm uses 8-lane FMA; both arms agree
/// to f32 tolerance (not bitwise), which the opt-in contract documents.
pub fn gemm_mixed_acc(a32: &[f32], b32: &[f32], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_mixed_acc_with(active_backend(), a32, b32, out, m, k, n);
}

/// [`gemm_mixed_acc`] on an explicit backend arm.
pub fn gemm_mixed_acc_with(
    backend: Backend,
    a32: &[f32],
    b32: &[f32],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    check_gemm_shapes(a32.len(), b32.len(), out.len(), m, k, n);
    let backend = resolve(backend);
    telemetry::record_gemm(backend, m, k, n, || match backend {
        Backend::Scalar => scalar::gemm_mixed_acc(a32, b32, out, m, k, n),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `resolve` only yields Avx2 when the CPU supports it.
        Backend::Avx2 => unsafe { avx2::gemm_mixed_acc(a32, b32, out, m, k, n) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("resolve() never yields Avx2 off x86-64"),
    });
}

// ----------------------------------------------------------------------
// Vector kernels
// ----------------------------------------------------------------------

/// Dot product of two equal-length slices.
///
/// The AVX2 arm reduces across 4 lane accumulators, so it may differ
/// from the scalar arm by a few ULP (bounded by `4·ε·Σ|aᵢbᵢ|`).
///
/// # Panics
/// Panics on a length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    dot_with(active_backend(), a, b)
}

/// [`dot`] on an explicit backend arm.
pub fn dot_with(backend: Backend, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    match resolve(backend) {
        Backend::Scalar => scalar::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `resolve` only yields Avx2 when the CPU supports it.
        Backend::Avx2 => unsafe { avx2::dot(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("resolve() never yields Avx2 off x86-64"),
    }
}

/// `y ← y + alpha·x` in place. Elementwise (no reduction), so both arms
/// are bit-identical.
///
/// # Panics
/// Panics on a length mismatch.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match resolve(active_backend()) {
        Backend::Scalar => scalar::axpy(alpha, x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `resolve` only yields Avx2 when the CPU supports it.
        Backend::Avx2 => unsafe { avx2::axpy(alpha, x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("resolve() never yields Avx2 off x86-64"),
    }
}

/// Elementwise binary kernels `out[i] = a[i] ∘ b[i]`; bit-identical
/// across arms.
///
/// # Panics
/// Panics on a length mismatch.
pub fn vadd(a: &[f64], b: &[f64], out: &mut [f64]) {
    vbinary(a, b, out, scalar::vadd, VOp::Add)
}

/// Elementwise difference; see [`vadd`].
///
/// # Panics
/// Panics on a length mismatch.
pub fn vsub(a: &[f64], b: &[f64], out: &mut [f64]) {
    vbinary(a, b, out, scalar::vsub, VOp::Sub)
}

/// Elementwise (Hadamard) product; see [`vadd`].
///
/// # Panics
/// Panics on a length mismatch.
pub fn vmul(a: &[f64], b: &[f64], out: &mut [f64]) {
    vbinary(a, b, out, scalar::vmul, VOp::Mul)
}

/// `out[i] = a[i] · s`; bit-identical across arms.
///
/// # Panics
/// Panics on a length mismatch.
pub fn vscale(a: &[f64], s: f64, out: &mut [f64]) {
    assert_eq!(a.len(), out.len(), "vscale: length mismatch");
    match resolve(active_backend()) {
        Backend::Scalar => scalar::vscale(a, s, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `resolve` only yields Avx2 when the CPU supports it.
        Backend::Avx2 => unsafe { avx2::vscale(a, s, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("resolve() never yields Avx2 off x86-64"),
    }
}

#[derive(Clone, Copy)]
enum VOp {
    Add,
    Sub,
    Mul,
}

fn vbinary(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    scalar_f: fn(&[f64], &[f64], &mut [f64]),
    op: VOp,
) {
    assert_eq!(a.len(), b.len(), "elementwise kernel: length mismatch");
    assert_eq!(a.len(), out.len(), "elementwise kernel: length mismatch");
    match resolve(active_backend()) {
        Backend::Scalar => scalar_f(a, b, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `resolve` only yields Avx2 when the CPU supports it.
        Backend::Avx2 => unsafe {
            match op {
                VOp::Add => avx2::vadd(a, b, out),
                VOp::Sub => avx2::vsub(a, b, out),
                VOp::Mul => avx2::vmul(a, b, out),
            }
        },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => {
            let _ = op;
            unreachable!("resolve() never yields Avx2 off x86-64")
        }
    }
}

/// Demotes an `Avx2` request to `Scalar` when the arm is unavailable
/// (non-x86 builds, or a stale override). `with_backend` rejects such
/// requests up front, so in practice this is the safety net that makes
/// every `match` arm above sound.
fn resolve(backend: Backend) -> Backend {
    match backend {
        Backend::Avx2 if avx2_available() => Backend::Avx2,
        _ => Backend::Scalar,
    }
}

#[track_caller]
fn check_gemm_shapes(a_len: usize, b_len: usize, out_len: usize, m: usize, k: usize, n: usize) {
    assert_eq!(a_len, m * k, "gemm: A buffer/shape mismatch");
    assert_eq!(b_len, k * n, "gemm: B buffer/shape mismatch");
    assert_eq!(out_len, m * n, "gemm: output buffer/shape mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detected_backend_is_stable() {
        assert_eq!(detected_backend(), detected_backend());
    }

    #[test]
    fn with_backend_overrides_and_restores() {
        let outer = active_backend();
        with_backend(Backend::Scalar, || {
            assert_eq!(active_backend(), Backend::Scalar);
            with_backend(Backend::Scalar, || {
                assert_eq!(active_backend(), Backend::Scalar);
            });
        });
        assert_eq!(active_backend(), outer);
    }

    #[test]
    fn override_restored_on_unwind() {
        let outer = active_backend();
        let caught = std::panic::catch_unwind(|| {
            with_backend(Backend::Scalar, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(active_backend(), outer);
    }

    #[test]
    fn backend_names_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2.name(), "avx2");
    }

    #[test]
    fn gemm_zero_dims_are_noops() {
        let mut out = [0.0; 0];
        gemm_acc(&[], &[], &mut out, 0, 0, 0);
        gemm_acc(&[], &[], &mut out, 0, 3, 0);
        let a = [1.0, 2.0];
        let mut out1 = [5.0];
        // k = 0: nothing accumulates.
        gemm_acc(&[], &[], &mut out1, 1, 0, 1);
        assert_eq!(out1, [5.0]);
        let _ = a;
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_mismatch_panics() {
        let mut y = [0.0];
        axpy(1.0, &[1.0, 2.0], &mut y);
    }
}
