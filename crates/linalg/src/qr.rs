//! Householder QR decomposition.
//!
//! Used by the ablation bench comparing the SVD-based pseudo-inverse with
//! a QR least-squares path, and generally useful for downstream users of
//! the library.

use crate::{LinAlgError, Matrix, Result};

/// A thin QR decomposition `A = Q · R` of an `m × n` matrix with `m ≥ n`:
/// `q` is `m × n` with orthonormal columns, `r` is `n × n` upper
/// triangular.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Orthonormal factor (`m × n`).
    pub q: Matrix,
    /// Upper-triangular factor (`n × n`).
    pub r: Matrix,
}

impl QrDecomposition {
    /// Solves `A x = b` in the least-squares sense via
    /// `R x = Qᵀ b` back-substitution.
    ///
    /// # Errors
    /// [`LinAlgError::Singular`] if `R` has a (numerically) zero diagonal
    /// entry, i.e. `A` was column-rank-deficient.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.q.rows() {
            return Err(LinAlgError::ShapeMismatch {
                left: self.q.shape(),
                right: (b.len(), 1),
                op: "qr-solve",
            });
        }
        let qtb = self.q.transpose().matvec(b)?;
        back_substitute(&self.r, &qtb)
    }
}

/// Solves upper-triangular `R x = y`.
fn back_substitute(r: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    let n = r.cols();
    let tol = n as f64 * f64::EPSILON * r.max_abs();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in (i + 1)..n {
            s -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        if d.abs() <= tol {
            return Err(LinAlgError::Singular);
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Computes the thin QR decomposition of `a` (requires `rows ≥ cols`).
///
/// # Errors
/// [`LinAlgError::InvalidArgument`] when `rows < cols` or the matrix is
/// empty.
pub fn qr(a: &Matrix) -> Result<QrDecomposition> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinAlgError::InvalidArgument(
            "qr: matrix must be non-empty".into(),
        ));
    }
    if m < n {
        return Err(LinAlgError::InvalidArgument(format!(
            "qr: need rows >= cols, got {m}x{n}"
        )));
    }

    // Work on a copy; accumulate Householder reflectors into Q explicitly.
    let mut r = a.clone();
    let mut q = Matrix::identity(m);

    for k in 0..n {
        // Build the Householder vector for column k below the diagonal.
        let mut norm2 = 0.0;
        for i in k..m {
            norm2 += r[(i, k)] * r[(i, k)];
        }
        let norm = norm2.sqrt();
        if norm == 0.0 {
            continue; // column already zero below the diagonal
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m];
        v[k] = r[(k, k)] - alpha;
        for i in (k + 1)..m {
            v[i] = r[(i, k)];
        }
        let vtv: f64 = v[k..].iter().map(|&x| x * x).sum();
        if vtv == 0.0 {
            continue;
        }
        // Apply H = I − 2 v vᵀ / (vᵀ v) to R (from the left).
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * r[(i, j)];
            }
            let f = 2.0 * dot / vtv;
            for i in k..m {
                r[(i, j)] -= f * v[i];
            }
        }
        // Accumulate into Q: Q ← Q · H.
        for i in 0..m {
            let mut dot = 0.0;
            for l in k..m {
                dot += q[(i, l)] * v[l];
            }
            let f = 2.0 * dot / vtv;
            for l in k..m {
                q[(i, l)] -= f * v[l];
            }
        }
    }

    // Extract the thin factors.
    let q_thin = Matrix::from_fn(m, n, |i, j| q[(i, j)]);
    let r_thin = Matrix::from_fn(n, n, |i, j| if j >= i { r[(i, j)] } else { 0.0 });
    Ok(QrDecomposition {
        q: q_thin,
        r: r_thin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let f = qr(&a).unwrap();
        let rec = f.q.matmul(&f.r).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i + 1) * (j + 2)) as f64 + (i as f64).cos());
        let f = qr(&a).unwrap();
        let gram = f.q.transpose().matmul(&f.q).unwrap();
        assert!(gram.max_abs_diff(&Matrix::identity(4)).unwrap() < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(4, 4, |i, j| (1 + i * 4 + j) as f64 + ((i * j) as f64).sin());
        let f = qr(&a).unwrap();
        for i in 0..4 {
            for j in 0..i {
                assert!(f.r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_solve_square_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let f = qr(&a).unwrap();
        let x = f.solve(&[5.0, 10.0]).unwrap();
        // 2x + y = 5, x + 3y = 10 → x = 1, y = 3
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn qr_solve_least_squares() {
        // Fit y = c to observations 1, 3 → c = 2.
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let x = qr(&a).unwrap().solve(&[1.0, 3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn qr_rejects_wide() {
        assert!(qr(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn qr_solve_singular_errors() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let f = qr(&a).unwrap();
        assert!(matches!(f.solve(&[1.0, 2.0]), Err(LinAlgError::Singular)));
    }
}
