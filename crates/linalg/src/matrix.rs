//! Dense row-major `f64` matrix.

use crate::{LinAlgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// The type is deliberately simple: a length-`rows*cols` boxed buffer plus
/// the two dimensions. Element `(i, j)` lives at `data[i * cols + j]`.
///
/// ```
/// use fia_linalg::Matrix;
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinAlgError::InvalidArgument(
                "from_rows: no rows given".into(),
            ));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinAlgError::InvalidArgument(
                "from_rows: rows are empty".into(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinAlgError::InvalidArgument(format!(
                    "from_rows: row {i} has length {} but expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix taking ownership of a row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinAlgError::InvalidArgument(format!(
                "from_vec: buffer has {} elements but shape is {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a single-column matrix from a slice.
    pub fn column_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow row `i` mutably.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// Dispatches to the active [`crate::kernel`] backend: the scalar arm
    /// keeps the historical ikj loop (with its cache-blocked cutover for
    /// large products), the AVX2 arm runs packed register-blocked
    /// microkernels. Both arms accumulate in the same sequence per output
    /// element, so results are bit-identical regardless of backend.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinAlgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::kernel::gemm_acc(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        Ok(out)
    }

    /// Cache-blocked matrix multiplication. Since the kernel layer now
    /// picks its own panel sizes per backend, this is the same dispatched
    /// multiply as [`Matrix::matmul`]; the `block` hint is retained for
    /// API compatibility (results never depended on it — every blocking
    /// accumulates in the same per-element order).
    pub fn matmul_blocked(&self, rhs: &Matrix, block: usize) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinAlgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul_blocked",
            });
        }
        let _ = block;
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::kernel::gemm_acc(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        Ok(out)
    }

    /// Mixed-precision multiplication `self * rhs` computed in f32 with
    /// f64 accumulation at reduction boundaries — the opt-in fast path
    /// behind GRNA generator training's `Precision::F32` knob (see
    /// [`crate::kernel::gemm_mixed_acc`]). Roughly half the memory
    /// traffic and twice the SIMD width of the f64 path, at f32 accuracy.
    pub fn matmul_mixed(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinAlgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul_mixed",
            });
        }
        let a32: Vec<f32> = self.data.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = rhs.data.iter().map(|&x| x as f32).collect();
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::kernel::gemm_mixed_acc(&a32, &b32, &mut out.data, self.rows, self.cols, rhs.cols);
        Ok(out)
    }

    /// Computes `self · rhs_tᵀ` from an already-transposed right factor:
    /// every output element is a dot product of two contiguous rows, the
    /// friendliest access pattern row-major storage allows. Callers that
    /// reuse a transposed factor across many products (the batched ESA
    /// solve) amortize the transpose once instead of paying strided reads
    /// per product.
    pub fn matmul_transposed(&self, rhs_t: &Matrix) -> Result<Matrix> {
        if self.cols != rhs_t.cols {
            return Err(LinAlgError::ShapeMismatch {
                left: self.shape(),
                right: rhs_t.shape(),
                op: "matmul_transposed",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs_t.rows);
        crate::kernel::gemm_tn_acc(
            &self.data,
            &rhs_t.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs_t.rows,
        );
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinAlgError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "matvec",
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(&a, &x)| a * x).sum())
            .collect())
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_kernel(rhs, "add", crate::kernel::vadd)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_kernel(rhs, "sub", crate::kernel::vsub)
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_kernel(rhs, "hadamard", crate::kernel::vmul)
    }

    fn zip_kernel(
        &self,
        rhs: &Matrix,
        op: &'static str,
        kernel: fn(&[f64], &[f64], &mut [f64]),
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinAlgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op,
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols);
        kernel(&self.data, &rhs.data, &mut out.data);
        Ok(out)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        crate::kernel::vscale(&self.data, s, &mut out.data);
        out
    }

    /// Applies `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Returns a new matrix keeping only the given columns, in order.
    pub fn select_columns(&self, cols: &[usize]) -> Result<Matrix> {
        for &c in cols {
            if c >= self.cols {
                return Err(LinAlgError::InvalidArgument(format!(
                    "select_columns: column {c} out of bounds (cols = {})",
                    self.cols
                )));
            }
        }
        let mut out = Matrix::zeros(self.rows, cols.len());
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (d, &c) in dst.iter_mut().zip(cols.iter()) {
                *d = src[c];
            }
        }
        Ok(out)
    }

    /// Returns a new matrix keeping only the given rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Result<Matrix> {
        for &r in rows {
            if r >= self.rows {
                return Err(LinAlgError::InvalidArgument(format!(
                    "select_rows: row {r} out of bounds (rows = {})",
                    self.rows
                )));
            }
        }
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (oi, &r) in rows.iter().enumerate() {
            out.row_mut(oi).copy_from_slice(self.row(r));
        }
        Ok(out)
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn hstack(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinAlgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "hstack",
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            let dst = out.row_mut(i);
            dst[..self.cols].copy_from_slice(self.row(i));
            dst[self.cols..].copy_from_slice(rhs.row(i));
        }
        Ok(out)
    }

    /// Vertical concatenation `[self ; rhs]`.
    pub fn vstack(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinAlgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "vstack",
            });
        }
        let mut data = Vec::with_capacity((self.rows + rhs.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Ok(Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        })
    }

    /// `true` if all elements are finite (no NaN/±inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference to another matrix of equal shape.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Result<f64> {
        if self.shape() != rhs.shape() {
            return Err(LinAlgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "max_abs_diff",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(rhs.data.iter())
            .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs())))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = m22();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m22();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = m22();
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinAlgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_known() {
        let a = m22();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (5, 3));
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = m22();
        let b = Matrix::filled(2, 2, 0.5);
        let c = a.add(&b).unwrap().sub(&b).unwrap();
        assert!(c.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn hadamard_known() {
        let a = m22();
        let h = a.hadamard(&a).unwrap();
        assert_eq!(h.as_slice(), &[1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn scale_and_map() {
        let a = m22();
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.map(|x| x - 1.0).as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = m22();
        assert!((a.frobenius_norm() - 30.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn select_columns_subset() {
        let a = Matrix::from_fn(2, 4, |i, j| (i * 4 + j) as f64);
        let s = a.select_columns(&[3, 1]).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[7.0, 5.0]);
    }

    #[test]
    fn select_columns_out_of_bounds() {
        let a = m22();
        assert!(a.select_columns(&[2]).is_err());
    }

    #[test]
    fn select_rows_subset() {
        let a = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let s = a.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.row(0), &[4.0, 5.0]);
        assert_eq!(s.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn hstack_vstack() {
        let a = m22();
        let h = a.hstack(&a).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 1.0, 2.0]);
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.col(0), vec![1.0, 3.0, 1.0, 3.0]);
    }

    #[test]
    fn from_rows_ragged_rejected() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_vec_wrong_len_rejected() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn row_col_vectors() {
        let c = Matrix::column_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(c.shape(), (3, 1));
        let r = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(r.shape(), (1, 3));
        assert_eq!(r.transpose(), c);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut a = m22();
        assert!(a.is_finite());
        a[(0, 0)] = f64::NAN;
        assert!(!a.is_finite());
    }
}
