//! Cholesky decomposition for symmetric positive-definite systems.
//!
//! The ridge-regularized normal equations `(ΘᵀΘ + λI) x = Θᵀa` that the
//! solver-ablation bench builds are SPD by construction; Cholesky solves
//! them in half the flops of LU and fails loudly (instead of silently
//! producing garbage) when the input is not positive definite.

use crate::{LinAlgError, Matrix, Result};

/// A lower-triangular Cholesky factor `A = L · Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` by forward/back substitution through `L`.
    // Triangular substitution is clearest with explicit indices.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinAlgError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "cholesky-solve",
            });
        }
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix (product of squared diagonal).
    pub fn determinant(&self) -> f64 {
        (0..self.l.rows()).fold(1.0, |acc, i| acc * self.l[(i, i)] * self.l[(i, i)])
    }
}

/// Factors a symmetric positive-definite matrix.
///
/// # Errors
/// * [`LinAlgError::InvalidArgument`] for non-square or asymmetric input.
/// * [`LinAlgError::Singular`] when a pivot is not strictly positive
///   (matrix not positive definite).
pub fn cholesky(a: &Matrix) -> Result<Cholesky> {
    let (m, n) = a.shape();
    if m != n || n == 0 {
        return Err(LinAlgError::InvalidArgument(format!(
            "cholesky: need a non-empty square matrix, got {m}x{n}"
        )));
    }
    let sym_tol = 1e-8 * (1.0 + a.max_abs());
    for i in 0..n {
        for j in (i + 1)..n {
            if (a[(i, j)] - a[(j, i)]).abs() > sym_tol {
                return Err(LinAlgError::InvalidArgument(format!(
                    "cholesky: matrix not symmetric at ({i}, {j})"
                )));
            }
        }
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(LinAlgError::Singular);
                }
                l[(i, i)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Ok(Cholesky { l })
}

/// Convenience: solves the SPD system `A x = b` via a fresh factorization.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    cholesky(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> Matrix {
        // Aᵀ·A + I is SPD for any A.
        let a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 7) % 5) as f64 - 2.0);
        let mut m = a.transpose().matmul(&a).unwrap();
        for i in 0..n {
            m[(i, i)] += 1.0;
        }
        m
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(5);
        let f = cholesky(&a).unwrap();
        let rec = f.l().matmul(&f.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd(6);
        let b: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let x_chol = cholesky_solve(&a, &b).unwrap();
        let x_lu = crate::solve(&a, &b).unwrap();
        for (c, l) in x_chol.iter().zip(x_lu.iter()) {
            assert!((c - l).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap(); // eigenvalues 3, −1
        assert!(matches!(cholesky(&a), Err(LinAlgError::Singular)));
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 2.0]]).unwrap();
        assert!(matches!(cholesky(&a), Err(LinAlgError::InvalidArgument(_))));
    }

    #[test]
    fn determinant_positive() {
        let a = spd(4);
        let f = cholesky(&a).unwrap();
        let lu_det = crate::lu_decompose(&a).unwrap().determinant();
        assert!((f.determinant() - lu_det).abs() < 1e-6 * lu_det.abs());
    }
}
