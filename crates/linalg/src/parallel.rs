//! Multi-threaded matrix kernels.
//!
//! The attack layer's hot path is a handful of large `n × d` products
//! (one row per accumulated prediction). Those parallelize trivially by
//! output-row stripes: each worker owns a disjoint slice of the output
//! buffer, so the kernel needs no locks and no unsafe.
//!
//! `rayon` is unavailable in the offline build environment, so the fan-out
//! uses `std::thread::scope` directly; on a single-core host (or for small
//! products) it degrades to the sequential blocked kernel, keeping results
//! bit-identical regardless of worker count.

use crate::kernel;
use crate::{LinAlgError, Matrix, Result};

/// Number of workers [`par_matmul`] uses by default: the host's available
/// parallelism (1 when it cannot be queried). Cached — the underlying
/// query is a syscall, and this sits on the per-batch hot path.
pub fn default_workers() -> usize {
    use std::sync::OnceLock;
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Parallel matrix multiplication `a · b` striped over output rows across
/// [`default_workers`] scoped threads.
pub fn par_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    par_matmul_with(a, b, default_workers())
}

/// [`par_matmul`] with an explicit worker count. `workers ≤ 1`, a tiny
/// product, or fewer rows than workers all fall back to the sequential
/// kernel — the parallel and sequential paths produce identical bits.
pub fn par_matmul_with(a: &Matrix, b: &Matrix, workers: usize) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(LinAlgError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "par_matmul",
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    // Under ~1 MFLOP the spawn overhead dominates any speedup.
    let small = m * k * n < 500_000;
    if workers <= 1 || m < 2 * workers || small {
        return a.matmul(b);
    }

    let mut out = Matrix::zeros(m, n);
    let rows_per = m.div_ceil(workers);
    // Capture the caller's backend (including any thread-local
    // `with_backend` override) before fanning out: spawned workers would
    // otherwise fall back to the process-wide detection.
    let backend = kernel::active_backend();
    {
        let out_slice = out.as_mut_slice();
        std::thread::scope(|scope| {
            for (w, chunk) in out_slice.chunks_mut(rows_per * n).enumerate() {
                let i0 = w * rows_per;
                scope.spawn(move || {
                    let rows = chunk.len() / n;
                    let a_rows = &a.as_slice()[i0 * k..(i0 + rows) * k];
                    kernel::gemm_acc_with(backend, a_rows, b.as_slice(), chunk, rows, k, n);
                });
            }
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn par_matches_sequential_exactly() {
        let a = dense(37, 19, 1);
        let b = dense(19, 23, 2);
        let seq = a.matmul(&b).unwrap();
        for workers in [1, 2, 3, 8] {
            let par = par_matmul_with(&a, &b, workers).unwrap();
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn par_large_product_correct() {
        let a = dense(200, 64, 3);
        let b = dense(64, 80, 4);
        let seq = a.matmul_blocked(&b, 64).unwrap();
        let par = par_matmul(&a, &b).unwrap();
        assert!(par.max_abs_diff(&seq).unwrap() < 1e-12);
    }

    #[test]
    fn par_shape_mismatch_rejected() {
        let a = dense(4, 3, 5);
        let b = dense(4, 3, 6);
        assert!(matches!(
            par_matmul(&a, &b),
            Err(LinAlgError::ShapeMismatch {
                op: "par_matmul",
                ..
            })
        ));
    }

    #[test]
    fn default_workers_positive() {
        assert!(default_workers() >= 1);
    }
}
