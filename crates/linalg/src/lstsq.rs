//! Minimum-norm least-squares solve via SVD.

use crate::{svd, LinAlgError, Matrix, Result};

/// Solves `argmin_x ‖A x − b‖₂`, returning the minimum-norm minimizer.
///
/// This is precisely the estimator the equality solving attack uses when
/// the adversary faces more unknown features than equations
/// (`d_target ≥ c`): among the infinitely many interpolating solutions it
/// returns the one with `‖x̂‖₂ ≤ ‖x‖₂` (see Eqn (11) in the paper), which
/// underlies the attack's MSE upper bound.
///
/// # Errors
/// Propagates SVD failures and rejects a right-hand side whose length
/// differs from `A`'s row count.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(LinAlgError::ShapeMismatch {
            left: a.shape(),
            right: (b.len(), 1),
            op: "lstsq",
        });
    }
    let f = svd(a)?;
    let tol = f.default_tolerance(a.rows(), a.cols());
    // x = V · Σ⁺ · Uᵀ b
    let utb = f.u.transpose().matvec(b)?;
    let scaled: Vec<f64> = utb
        .iter()
        .zip(f.sigma.iter())
        .map(|(&y, &s)| if s > tol { y / s } else { 0.0 })
        .collect();
    f.v.matvec(&scaled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_solution() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 4.0]]).unwrap();
        let x = lstsq(&a, &[2.0, 8.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_regression() {
        // Fit y = a·t with observations (1,2), (2,4), (3,6.3).
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let x = lstsq(&a, &[2.0, 4.0, 6.3]).unwrap();
        // Closed form: Σtᵢyᵢ / Σtᵢ² = (2 + 8 + 18.9) / 14
        assert!((x[0] - 28.9 / 14.0).abs() < 1e-10);
    }

    #[test]
    fn underdetermined_minimum_norm() {
        // x + y + z = 3 → minimum-norm solution (1, 1, 1).
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 1.0]]).unwrap();
        let x = lstsq(&a, &[3.0]).unwrap();
        for v in &x {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn minimum_norm_property_against_alternatives() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, -1.0], vec![0.0, 1.0, 1.0]]).unwrap();
        let b = [4.0, 2.0];
        let x = lstsq(&a, &b).unwrap();
        // Verify interpolation.
        let r = a.matvec(&x).unwrap();
        assert!((r[0] - b[0]).abs() < 1e-10 && (r[1] - b[1]).abs() < 1e-10);
        // Any particular solution has norm ≥ the lstsq one. Construct one
        // by fixing z = 1: then y = 1, x = 4 - 2 + 1 = 3.
        let alt = [3.0, 1.0, 1.0];
        let alt_norm: f64 = alt.iter().map(|v| v * v).sum();
        let x_norm: f64 = x.iter().map(|v| v * v).sum();
        assert!(x_norm <= alt_norm + 1e-12);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 2);
        assert!(lstsq(&a, &[1.0]).is_err());
    }

    #[test]
    fn rank_deficient_is_handled() {
        // Columns identical → rank 1; solution should still interpolate
        // the projection and split weight evenly.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        let x = lstsq(&a, &[2.0, 4.0]).unwrap();
        assert!((x[0] - x[1]).abs() < 1e-10);
        let r = a.matvec(&x).unwrap();
        assert!((r[0] - 2.0).abs() < 1e-10 && (r[1] - 4.0).abs() < 1e-10);
    }
}
