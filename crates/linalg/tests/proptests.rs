//! Property-based tests for the linear algebra kernels.

use fia_linalg::{lstsq, pinv, qr, svd, vecops, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with entries in [-10, 10] and bounded dimensions.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("shape matches"))
    })
}

/// Strategy: a square matrix.
fn square_matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        prop::collection::vec(-10.0f64..10.0, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data).expect("shape matches"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_involution(a in matrix_strategy(8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_identity_right(a in matrix_strategy(8)) {
        let i = Matrix::identity(a.cols());
        let prod = a.matmul(&i).unwrap();
        prop_assert!(prod.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn matmul_transpose_identity(a in matrix_strategy(6), b in matrix_strategy(6)) {
        // (A·B)ᵀ = Bᵀ·Aᵀ whenever the shapes are compatible.
        if a.cols() == b.rows() {
            let lhs = a.matmul(&b).unwrap().transpose();
            let rhs = b.transpose().matmul(&a.transpose()).unwrap();
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-9);
        }
    }

    #[test]
    fn svd_reconstruction(a in matrix_strategy(7)) {
        let f = svd(&a).unwrap();
        let rec = f.reconstruct().unwrap();
        prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-8,
            "reconstruction error too large");
        // Singular values sorted and non-negative.
        for w in f.sigma.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert!(f.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_frobenius_identity(a in matrix_strategy(7)) {
        let f = svd(&a).unwrap();
        let fro2 = a.frobenius_norm().powi(2);
        let sum2: f64 = f.sigma.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - sum2).abs() < 1e-7 * (1.0 + fro2));
    }

    #[test]
    fn pinv_penrose_one(a in matrix_strategy(6)) {
        // A · A⁺ · A = A for every matrix.
        let p = pinv(&a).unwrap();
        let c = a.matmul(&p).unwrap().matmul(&a).unwrap();
        prop_assert!(c.max_abs_diff(&a).unwrap() < 1e-7 * (1.0 + a.max_abs()));
    }

    #[test]
    fn pinv_penrose_two(a in matrix_strategy(6)) {
        // A⁺ · A · A⁺ = A⁺.
        let p = pinv(&a).unwrap();
        let c = p.matmul(&a).unwrap().matmul(&p).unwrap();
        prop_assert!(c.max_abs_diff(&p).unwrap() < 1e-7 * (1.0 + p.max_abs()));
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_range(a in matrix_strategy(6), seed in 0u64..1000) {
        // The least-squares residual r = b − A x̂ satisfies Aᵀ r = 0.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        let b: Vec<f64> = (0..a.rows()).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }).collect();
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r = vecops::sub(&b, &ax);
        let atr = a.transpose().matvec(&r).unwrap();
        let scale = 1.0 + a.max_abs() * vecops::norm2(&b);
        prop_assert!(vecops::norm2(&atr) < 1e-7 * scale);
    }

    #[test]
    fn qr_reconstruction_tall(a in matrix_strategy(7)) {
        if a.rows() >= a.cols() {
            let f = qr(&a).unwrap();
            let rec = f.q.matmul(&f.r).unwrap();
            prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-9 * (1.0 + a.max_abs()));
        }
    }

    #[test]
    fn lu_solve_residual(a in square_matrix_strategy(6)) {
        // Diagonally dominate to avoid near-singular draws.
        let n = a.rows();
        let mut ad = a.clone();
        for i in 0..n {
            ad[(i, i)] += 50.0;
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let x = fia_linalg::solve(&ad, &b).unwrap();
        let r = ad.matvec(&x).unwrap();
        for i in 0..n {
            prop_assert!((r[i] - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn softmax_is_distribution(z in prop::collection::vec(-50.0f64..50.0, 1..10)) {
        let s = vecops::softmax(&z);
        prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn logit_sigmoid_roundtrip(x in -15.0f64..15.0) {
        // Beyond |x| ≈ 15, 1 − σ(x) loses enough f64 precision that the
        // roundtrip error dominates; the attack only ever sees confidence
        // scores well inside this band.
        let p = vecops::sigmoid(x);
        prop_assert!((vecops::logit(p) - x).abs() < 1e-6 * (1.0 + x.abs()));
    }

    #[test]
    fn pearson_bounded(
        a in prop::collection::vec(-5.0f64..5.0, 3..40),
        b in prop::collection::vec(-5.0f64..5.0, 3..40),
    ) {
        let n = a.len().min(b.len());
        let r = vecops::pearson(&a[..n], &b[..n]);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }
}
