//! Property-based tests for the linear algebra kernels.
//!
//! The offline build has no `proptest`, so cases are driven by a seeded
//! [`rand::rngs::StdRng`]: every property is checked over a sweep of
//! random shapes and entries, deterministically reproducible from the
//! case index.

use fia_linalg::{lstsq, par_matmul_with, pinv, qr, svd, vecops, Matrix};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: u64 = 64;

/// Random matrix with entries in `[-10, 10]` and dims in `1..=max_dim`.
fn random_matrix(rng: &mut StdRng, max_dim: usize) -> Matrix {
    let r = rng.gen_range(1..=max_dim);
    let c = rng.gen_range(1..=max_dim);
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-10.0..10.0))
}

fn case_rng(test: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test.wrapping_mul(0x9E3779B97F4A7C15) ^ case)
}

#[test]
fn transpose_involution() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let a = random_matrix(&mut rng, 8);
        assert_eq!(a.transpose().transpose(), a);
    }
}

#[test]
fn matmul_identity_right() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let a = random_matrix(&mut rng, 8);
        let i = Matrix::identity(a.cols());
        let prod = a.matmul(&i).unwrap();
        assert!(prod.max_abs_diff(&a).unwrap() < 1e-12);
    }
}

#[test]
fn matmul_transpose_identity() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let a = random_matrix(&mut rng, 6);
        let rows = a.cols();
        let cols = rng.gen_range(1..=6);
        let b = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-10.0..10.0));
        // (A·B)ᵀ = Bᵀ·Aᵀ.
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-9);
    }
}

#[test]
fn blocked_and_parallel_matmul_match_naive() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let m = rng.gen_range(1..40);
        let k = rng.gen_range(1..40);
        let n = rng.gen_range(1..40);
        let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-5.0..5.0));
        let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-5.0..5.0));
        let naive = a.matmul(&b).unwrap();
        for block in [1, 3, 64] {
            let blocked = a.matmul_blocked(&b, block).unwrap();
            assert_eq!(blocked, naive, "block = {block}");
        }
        let workers = rng.gen_range(1..5);
        let par = par_matmul_with(&a, &b, workers).unwrap();
        assert_eq!(par, naive, "workers = {workers}");
    }
}

#[test]
fn matmul_transposed_matches_naive() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let m = rng.gen_range(1..20);
        let k = rng.gen_range(1..20);
        let n = rng.gen_range(1..20);
        let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-5.0..5.0));
        let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-5.0..5.0));
        let direct = a.matmul(&b).unwrap();
        let via_t = a.matmul_transposed(&b.transpose()).unwrap();
        assert!(via_t.max_abs_diff(&direct).unwrap() < 1e-12);
    }
}

#[test]
fn svd_reconstruction() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let a = random_matrix(&mut rng, 7);
        let f = svd(&a).unwrap();
        let rec = f.reconstruct().unwrap();
        assert!(
            rec.max_abs_diff(&a).unwrap() < 1e-8,
            "reconstruction error too large"
        );
        // Singular values sorted and non-negative.
        for w in f.sigma.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(f.sigma.iter().all(|&s| s >= 0.0));
    }
}

#[test]
fn svd_frobenius_identity() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let a = random_matrix(&mut rng, 7);
        let f = svd(&a).unwrap();
        let fro2 = a.frobenius_norm().powi(2);
        let sum2: f64 = f.sigma.iter().map(|s| s * s).sum();
        assert!((fro2 - sum2).abs() < 1e-7 * (1.0 + fro2));
    }
}

/// The pseudo-inverse satisfies the first Penrose condition
/// `A · A⁺ · A = A` on random *rectangular* matrices of every
/// aspect ratio — the property the equality solving attack relies on
/// (Section IV-A).
#[test]
fn pinv_penrose_one_rectangular() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        // Force a mix of wide, tall and square shapes.
        let r = rng.gen_range(1..=7);
        let c = match case % 3 {
            0 => rng.gen_range(r..=9), // wide or square
            1 => rng.gen_range(1..=r), // tall or square
            _ => rng.gen_range(1..=7), // anything
        };
        let a = Matrix::from_fn(r, c, |_, _| rng.gen_range(-10.0..10.0));
        let p = pinv(&a).unwrap();
        assert_eq!(p.shape(), (c, r));
        let c1 = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(
            c1.max_abs_diff(&a).unwrap() < 1e-7 * (1.0 + a.max_abs()),
            "Penrose 1 failed for {r}x{c} (case {case})"
        );
    }
}

#[test]
fn pinv_penrose_two() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let a = random_matrix(&mut rng, 6);
        let p = pinv(&a).unwrap();
        let c = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(c.max_abs_diff(&p).unwrap() < 1e-7 * (1.0 + p.max_abs()));
    }
}

#[test]
fn lstsq_residual_is_orthogonal_to_range() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let a = random_matrix(&mut rng, 6);
        let b: Vec<f64> = (0..a.rows()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r = vecops::sub(&b, &ax);
        let atr = a.transpose().matvec(&r).unwrap();
        let scale = 1.0 + a.max_abs() * vecops::norm2(&b);
        assert!(vecops::norm2(&atr) < 1e-7 * scale);
    }
}

#[test]
fn qr_reconstruction_tall() {
    for case in 0..CASES {
        let mut rng = case_rng(11, case);
        let c = rng.gen_range(1..=7);
        let r = rng.gen_range(c..=9); // tall or square
        let a = Matrix::from_fn(r, c, |_, _| rng.gen_range(-10.0..10.0));
        let f = qr(&a).unwrap();
        let rec = f.q.matmul(&f.r).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-9 * (1.0 + a.max_abs()));
    }
}

#[test]
fn lu_solve_residual() {
    for case in 0..CASES {
        let mut rng = case_rng(12, case);
        let n = rng.gen_range(1..=6);
        let mut a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-10.0..10.0));
        // Diagonally dominate to avoid near-singular draws.
        for i in 0..n {
            a[(i, i)] += 50.0;
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let x = fia_linalg::solve(&a, &b).unwrap();
        let r = a.matvec(&x).unwrap();
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-8);
        }
    }
}

#[test]
fn softmax_is_distribution() {
    for case in 0..CASES {
        let mut rng = case_rng(13, case);
        let len = rng.gen_range(1..10);
        let z: Vec<f64> = (0..len).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let s = vecops::softmax(&z);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}

#[test]
fn logit_sigmoid_roundtrip() {
    // Beyond |x| ≈ 15, 1 − σ(x) loses enough f64 precision that the
    // roundtrip error dominates; the attack only ever sees confidence
    // scores well inside this band.
    for case in 0..CASES {
        let mut rng = case_rng(14, case);
        let x = rng.gen_range(-15.0..15.0);
        let p = vecops::sigmoid(x);
        assert!((vecops::logit(p) - x).abs() < 1e-6 * (1.0 + x.abs()));
    }
}

#[test]
fn pearson_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng(15, case);
        let n = rng.gen_range(3..40);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let r = vecops::pearson(&a, &b);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }
}
