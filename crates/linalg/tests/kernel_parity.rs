//! SIMD-vs-scalar parity sweep for the kernel layer.
//!
//! The f64 contract (see `fia_linalg::kernel`) is *bit identity*: the AVX2
//! microkernels preserve the scalar arm's per-element, k-ascending
//! accumulation order, so every f64 entry point except `dot` must agree
//! exactly — the only licensed difference is the sign of an exact zero,
//! which `==` treats as equal. `dot` carries a documented ULP bound and
//! `gemm_mixed` an f32-level tolerance; both are checked against their
//! stated bounds here, on randomized shapes that deliberately include
//! ragged edges (`n % 8 != 0`, `m % 4 != 0`, tiny and skinny matrices).

use fia_linalg::kernel::{self, Backend};
use fia_linalg::{par_matmul_with, with_backend, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// NaN-free uniform draw in [-1, 1).
fn rand_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Shape sweep: randomized dims plus fixed ragged/degenerate cases that
/// exercise every masked edge of the 4×8 (and 16-wide f32) microkernels.
fn shapes(rng: &mut StdRng) -> Vec<(usize, usize, usize)> {
    let mut s = vec![
        (1, 1, 1),
        (3, 1, 10),  // k = 1, ragged n
        (5, 7, 9),   // everything ragged
        (4, 256, 8), // exactly one full panel
        (4, 257, 8), // one k past the panel boundary
        (16, 300, 17),
        (13, 64, 31),
        (64, 64, 64),
    ];
    for _ in 0..12 {
        s.push((
            rng.gen_range(1..40usize),
            rng.gen_range(1..70usize),
            rng.gen_range(1..40usize),
        ));
    }
    s
}

fn assert_bitwise_eq(a: &[f64], b: &[f64], what: &str, shape: (usize, usize, usize)) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        // `==` deliberately: -0.0 == +0.0 is the one licensed difference.
        assert!(
            x == y,
            "{what} diverged at index {i} for shape {shape:?}: {x:e} vs {y:e} \
             (bits {:#x} vs {:#x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

#[test]
fn gemm_f64_bit_identical_across_backends() {
    if !fia_linalg::avx2_available() {
        eprintln!("skipping: no AVX2 on this host, both arms would be scalar");
        return;
    }
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    for (m, k, n) in shapes(&mut rng) {
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        // gemm_acc accumulates, so seed both arms with the same nonzero out.
        let init = rand_vec(&mut rng, m * n);
        let mut out_s = init.clone();
        let mut out_v = init;
        with_backend(Backend::Scalar, || {
            kernel::gemm_acc(&a, &b, &mut out_s, m, k, n)
        });
        with_backend(Backend::Avx2, || {
            kernel::gemm_acc(&a, &b, &mut out_v, m, k, n)
        });
        assert_bitwise_eq(&out_s, &out_v, "gemm_acc", (m, k, n));
    }
}

#[test]
fn gemm_tn_bit_identical_across_backends() {
    if !fia_linalg::avx2_available() {
        eprintln!("skipping: no AVX2 on this host");
        return;
    }
    let mut rng = StdRng::seed_from_u64(0x5eed_0002);
    for (m, k, n) in shapes(&mut rng) {
        // gemm_tn computes Aᵀ·B from a stored k×m A.
        let a = rand_vec(&mut rng, k * m);
        let b = rand_vec(&mut rng, k * n);
        let init = rand_vec(&mut rng, m * n);
        let mut out_s = init.clone();
        let mut out_v = init;
        with_backend(Backend::Scalar, || {
            kernel::gemm_tn_acc(&a, &b, &mut out_s, m, k, n)
        });
        with_backend(Backend::Avx2, || {
            kernel::gemm_tn_acc(&a, &b, &mut out_v, m, k, n)
        });
        assert_bitwise_eq(&out_s, &out_v, "gemm_tn_acc", (m, k, n));
    }
}

#[test]
fn matrix_level_routing_bit_identical_across_backends() {
    if !fia_linalg::avx2_available() {
        eprintln!("skipping: no AVX2 on this host");
        return;
    }
    let mut rng = StdRng::seed_from_u64(0x5eed_0003);
    for (m, k, n) in shapes(&mut rng) {
        let a = Matrix::from_vec(m, k, rand_vec(&mut rng, m * k)).unwrap();
        let b = Matrix::from_vec(k, n, rand_vec(&mut rng, k * n)).unwrap();
        let bt = b.transpose();
        let run = || {
            (
                a.matmul(&b).unwrap(),
                a.matmul_blocked(&b, 32).unwrap(),
                a.matmul_transposed(&bt).unwrap(),
                par_matmul_with(&a, &b, 3).unwrap(),
            )
        };
        let s = with_backend(Backend::Scalar, run);
        let v = with_backend(Backend::Avx2, run);
        for (which, (ms, mv)) in [s.0, s.1, s.2, s.3]
            .iter()
            .zip([v.0, v.1, v.2, v.3])
            .enumerate()
        {
            assert_bitwise_eq(
                ms.as_slice(),
                mv.as_slice(),
                "matmul variant",
                (m, k, which),
            );
            let _ = mv;
        }
    }
}

#[test]
fn axpy_and_elementwise_bit_identical_across_backends() {
    if !fia_linalg::avx2_available() {
        eprintln!("skipping: no AVX2 on this host");
        return;
    }
    let mut rng = StdRng::seed_from_u64(0x5eed_0004);
    for len in [1usize, 3, 7, 8, 9, 31, 64, 127, 1000] {
        let x = rand_vec(&mut rng, len);
        let init = rand_vec(&mut rng, len);
        let alpha: f64 = rng.gen_range(-2.0..2.0);

        let mut y_s = init.clone();
        let mut y_v = init.clone();
        with_backend(Backend::Scalar, || kernel::axpy(alpha, &x, &mut y_s));
        with_backend(Backend::Avx2, || kernel::axpy(alpha, &x, &mut y_v));
        assert_bitwise_eq(&y_s, &y_v, "axpy", (len, 0, 0));

        let a = Matrix::from_vec(1, len, x.clone()).unwrap();
        let b = Matrix::from_vec(1, len, init).unwrap();
        let run = || {
            (
                a.add(&b).unwrap(),
                a.sub(&b).unwrap(),
                a.hadamard(&b).unwrap(),
                a.scale(alpha),
            )
        };
        let s = with_backend(Backend::Scalar, run);
        let v = with_backend(Backend::Avx2, run);
        assert_bitwise_eq(s.0.as_slice(), v.0.as_slice(), "add", (len, 0, 0));
        assert_bitwise_eq(s.1.as_slice(), v.1.as_slice(), "sub", (len, 0, 0));
        assert_bitwise_eq(s.2.as_slice(), v.2.as_slice(), "hadamard", (len, 0, 0));
        assert_bitwise_eq(s.3.as_slice(), v.3.as_slice(), "scale", (len, 0, 0));
    }
}

#[test]
fn dot_agrees_within_documented_ulp_bound() {
    if !fia_linalg::avx2_available() {
        eprintln!("skipping: no AVX2 on this host");
        return;
    }
    let mut rng = StdRng::seed_from_u64(0x5eed_0005);
    for len in [1usize, 4, 5, 8, 13, 100, 1023, 4096] {
        let a = rand_vec(&mut rng, len);
        let b = rand_vec(&mut rng, len);
        let d_s = with_backend(Backend::Scalar, || kernel::dot(&a, &b));
        let d_v = with_backend(Backend::Avx2, || kernel::dot(&a, &b));
        // Documented bound: |Δ| ≤ 4·ε·Σ|aᵢ·bᵢ| (re-association across 4
        // lanes plus the pairwise horizontal reduction).
        let abs_sum: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        let bound = 4.0 * f64::EPSILON * abs_sum;
        assert!(
            (d_s - d_v).abs() <= bound,
            "dot len {len}: scalar {d_s:e} vs avx2 {d_v:e} exceeds bound {bound:e}"
        );
    }
}

#[test]
fn gemm_mixed_within_f32_tolerance_of_f64_reference() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0006);
    for (m, k, n) in shapes(&mut rng) {
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();

        // Exact reference in f64 (values round-trip f32 losslessly after
        // demotion, so the remaining error is pure f32 accumulation).
        let mut reference = vec![0.0f64; m * n];
        kernel::gemm_acc(
            &a32.iter().map(|&x| f64::from(x)).collect::<Vec<_>>(),
            &b32.iter().map(|&x| f64::from(x)).collect::<Vec<_>>(),
            &mut reference,
            m,
            k,
            n,
        );

        let backends = if fia_linalg::avx2_available() {
            vec![Backend::Scalar, Backend::Avx2]
        } else {
            vec![Backend::Scalar]
        };
        for backend in backends {
            let mut out = vec![0.0f64; m * n];
            with_backend(backend, || {
                kernel::gemm_mixed_acc(&a32, &b32, &mut out, m, k, n)
            });
            for i in 0..m {
                for j in 0..n {
                    // First-order f32 summation error: k + 2 rounding steps
                    // against the absolute dot product, with a 4× margin.
                    let abs_dot: f64 = (0..k)
                        .map(|kk| (f64::from(a32[i * k + kk]) * f64::from(b32[kk * n + j])).abs())
                        .sum();
                    let bound = 4.0 * (k as f64 + 2.0) * f64::from(f32::EPSILON) * abs_dot
                        + f64::from(f32::MIN_POSITIVE);
                    let got = out[i * n + j];
                    let want = reference[i * n + j];
                    assert!(
                        (got - want).abs() <= bound,
                        "gemm_mixed {backend:?} shape {:?} at ({i},{j}): \
                         {got:e} vs {want:e}, bound {bound:e}",
                        (m, k, n)
                    );
                }
            }
        }
    }
}

#[test]
fn forced_scalar_env_reports_scalar_backend() {
    // `detected_backend` latches the env var once per process; we can't
    // toggle it here, but the name round-trip and the thread-local
    // override must compose. (The CI leg runs the whole workspace under
    // FIA_FORCE_SCALAR=1 to cover the env path end to end.)
    let base = fia_linalg::detected_backend();
    assert!(matches!(base, Backend::Scalar | Backend::Avx2));
    let inside = with_backend(Backend::Scalar, kernel::active_backend);
    assert_eq!(inside, Backend::Scalar);
    assert_eq!(kernel::active_backend(), base);
}
