//! Reactor soak and regression battery: the properties the
//! thread-per-connection server could not provide.
//!
//! * hundreds of idle connections cost *zero* additional threads, and
//!   connection bookkeeping is bounded by live connections (the old
//!   server reaped finished handles only when the next client arrived);
//! * `shutdown()` returns promptly with idle connections open (the old
//!   server could hang joining a thread whose `set_read_timeout` had
//!   silently failed);
//! * a mid-soak `shutdown()` still answers every job already queued;
//! * pipelined requests on one socket are answered strictly in order.

use fia_defense::DefensePipeline;
use fia_linalg::Matrix;
use fia_models::LogisticRegression;
use fia_serve::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};
use fia_serve::{
    run_load_open, OpenLoadConfig, PredictionServer, RemoteOracle, ServeConfig, ServerHandle,
};
use fia_vfl::{VerticalPartition, VflSystem};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn deployed() -> Arc<VflSystem<LogisticRegression>> {
    let d = 6;
    let w = Matrix::from_fn(d, 3, |i, j| 0.2 * (i as f64 + 1.0) - 0.1 * j as f64);
    let model = LogisticRegression::from_parameters(w, vec![0.0; 3], 3);
    let global = Matrix::from_fn(64, d, |i, j| ((i * d + j) % 7) as f64 * 0.1);
    let partition = VerticalPartition::contiguous(&[3, 3]);
    Arc::new(VflSystem::from_global(model, partition, &global))
}

fn spawn(config: ServeConfig) -> (Arc<VflSystem<LogisticRegression>>, ServerHandle) {
    let system = deployed();
    let server = PredictionServer::spawn(
        Arc::clone(&system),
        Arc::new(DefensePipeline::new()),
        config,
    )
    .expect("bind ephemeral port");
    (system, server)
}

/// This process's live thread count (Linux); elsewhere returns `None`
/// and thread-budget assertions are skipped.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Polls `f` until it returns true or the deadline passes.
fn eventually(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    f()
}

/// Satellite: connection bookkeeping is a gauge over *live* sockets, and
/// idle clients cost the server no threads at all.
#[test]
fn idle_connections_cost_no_threads_and_bookkeeping_stays_bounded() {
    const IDLE: usize = 512;
    let (_system, server) = spawn(ServeConfig::default());
    let addr = server.addr();

    let before = thread_count();
    let conns: Vec<TcpStream> = (0..IDLE)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect #{i} failed: {e}")))
        .collect();

    assert!(
        eventually(Duration::from_secs(10), || {
            server.metrics().open_connections == IDLE as u64
        }),
        "gauge never reached {IDLE}: {}",
        server.metrics().open_connections
    );
    assert_eq!(server.metrics().total_connections, IDLE as u64);

    // The whole point of the reactor: 512 connected clients, zero new
    // threads. (A small slack absorbs unrelated test-harness threads.)
    if let (Some(before), Some(now)) = (before, thread_count()) {
        assert!(
            now <= before + 4,
            "{IDLE} idle connections grew the thread count {before} -> {now}"
        );
    }

    // Dropping the clients shrinks the bookkeeping back to zero without
    // any new connection arriving to trigger a reap.
    drop(conns);
    assert!(
        eventually(Duration::from_secs(10), || {
            server.metrics().open_connections == 0
        }),
        "gauge never drained: {}",
        server.metrics().open_connections
    );
    assert_eq!(server.metrics().total_connections, IDLE as u64);
    server.shutdown();
}

/// Satellite: a 512-connection open-loop soak — every scheduled request
/// is answered, on a client+server thread budget that does not scale
/// with the connection count.
#[test]
fn soak_512_connections_every_response_arrives() {
    const CONNS: usize = 512;
    const TOTAL: usize = 2048;
    let (_system, server) = spawn(ServeConfig {
        replicas: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let before = thread_count();

    let load = std::thread::spawn(move || {
        run_load_open(
            addr,
            &OpenLoadConfig {
                connections: CONNS,
                arrival_rps: 4000.0,
                total_requests: TOTAL,
                rows_per_request: 1,
            },
        )
    });
    // Sample the process thread count while the soak runs: with
    // thread-per-connection (server) or thread-per-sender (client) this
    // would spike by hundreds.
    let mut peak = before;
    while !load.is_finished() {
        if let (Some(p), Some(now)) = (peak, thread_count()) {
            peak = Some(p.max(now));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = load.join().expect("load thread").expect("open-loop soak");

    assert_eq!(
        report.total_requests, TOTAL as u64,
        "every response arrives"
    );
    assert_eq!(report.total_rows, TOTAL as u64);
    assert!(report.p99_latency_us >= report.p50_latency_us);
    if let (Some(before), Some(peak)) = (before, peak) {
        assert!(
            peak <= before + 16,
            "soak grew the thread count {before} -> peak {peak}"
        );
    }

    let m = server.metrics();
    assert!(m.requests >= TOTAL as u64, "server counted {}", m.requests);
    assert!(
        eventually(Duration::from_secs(10), || {
            server.metrics().open_connections == 0
        }),
        "sockets not reaped after the soak"
    );
    server.shutdown();
}

/// Satellite regression: `shutdown()` with idle connections open must
/// return promptly — the blocking server hung here when a connection
/// thread's `set_read_timeout` had failed and `read()` blocked forever.
#[test]
fn shutdown_returns_promptly_under_idle_connections() {
    let (_system, server) = spawn(ServeConfig::default());
    let addr = server.addr();
    let _idle: Vec<TcpStream> = (0..64)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();
    assert!(
        eventually(Duration::from_secs(5), || {
            server.metrics().open_connections == 64
        }),
        "idle connections never registered"
    );

    let t0 = Instant::now();
    server.shutdown();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown with idle connections took {elapsed:?}"
    );
    // The listener is gone: fresh connects are refused (or reset at the
    // first byte on platforms that accept briefly into a dead queue).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            let _ = s.write_all(&3u32.to_le_bytes());
            assert!(
                matches!(read_frame(&mut s), Err(_) | Ok(None)),
                "server still answering after shutdown"
            );
        }
    }
}

/// A mid-soak shutdown still answers everything already queued: jobs
/// dispatched to the replica pool before the stop flag flipped are
/// drained, their responses flushed, and only then do sockets close.
#[test]
fn mid_soak_shutdown_drains_queued_jobs() {
    const CONNS: usize = 8;
    const PER_CONN: usize = 4;
    let (system, server) = spawn(ServeConfig {
        coalesce: false,
        round_cost: Duration::from_millis(5),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Pipeline PER_CONN predictions on each connection, then give the
    // reactor a moment to parse and dispatch them all.
    let mut conns: Vec<TcpStream> = Vec::new();
    for c in 0..CONNS {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        for r in 0..PER_CONN {
            let payload = encode_request(&Request::PredictByIndex(vec![(c * PER_CONN + r) as u32]))
                .expect("encode");
            write_frame(&mut s, &payload).expect("write");
        }
        conns.push(s);
    }
    std::thread::sleep(Duration::from_millis(50));

    // Shut down while ~32 rounds x 5ms of work is still queued.
    let stopper = std::thread::spawn(move || server.shutdown());

    for (c, s) in conns.iter_mut().enumerate() {
        for r in 0..PER_CONN {
            let frame = read_frame(s)
                .expect("read")
                .unwrap_or_else(|| panic!("conn {c} closed before response {r}"));
            match decode_response(&frame).expect("decode") {
                Response::Scores { scores, .. } => {
                    let idx = c * PER_CONN + r;
                    let want = system.predict_batch(&[idx]);
                    assert_eq!(scores, want, "conn {c} response {r} wrong scores");
                }
                other => panic!("conn {c} response {r}: unexpected {other:?}"),
            }
        }
        // After the drained responses the server closes the socket.
        assert!(
            matches!(read_frame(s), Ok(None) | Err(_)),
            "conn {c} not closed after drain"
        );
    }
    stopper.join().expect("shutdown thread");
}

/// Pipelined requests on one socket come back strictly in request order,
/// even though their rounds complete concurrently on different shards.
#[test]
fn pipelined_requests_are_answered_in_order() {
    const PIPELINED: usize = 24;
    let (system, server) = spawn(ServeConfig {
        replicas: 4,
        ..ServeConfig::default()
    });

    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    for k in 0..PIPELINED {
        // Spread across shards so reordering *would* happen if the
        // reactor didn't sequence responses.
        let payload = encode_request(&Request::PredictByIndex(vec![
            ((k * 17) % system.n_samples()) as u32,
        ]))
        .expect("encode");
        write_frame(&mut s, &payload).expect("write");
    }
    for k in 0..PIPELINED {
        let frame = read_frame(&mut s)
            .expect("read")
            .unwrap_or_else(|| panic!("closed before response {k}"));
        match decode_response(&frame).expect("decode") {
            Response::Scores { scores, .. } => {
                let want = system.predict_batch(&[(k * 17) % system.n_samples()]);
                assert_eq!(scores, want, "response {k} out of order or wrong");
            }
            other => panic!("response {k}: unexpected {other:?}"),
        }
    }

    // Interleave a Ping mid-pipeline and confirm FIFO still holds.
    let ping = encode_request(&Request::Ping).expect("encode");
    let predict = encode_request(&Request::PredictByIndex(vec![3])).expect("encode");
    write_frame(&mut s, &predict).expect("write");
    write_frame(&mut s, &ping).expect("write");
    let first = decode_response(&read_frame(&mut s).expect("read").expect("open")).expect("decode");
    let second =
        decode_response(&read_frame(&mut s).expect("read").expect("open")).expect("decode");
    assert!(
        matches!(first, Response::Scores { .. }),
        "predict must answer first, got {first:?}"
    );
    assert!(
        matches!(second, Response::Pong),
        "ping must answer second, got {second:?}"
    );

    // The oracle sees a coherent session on a fresh connection too.
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");
    oracle.ping().expect("ping");
    server.shutdown();
}
