//! Seeded property sweep for `Coalescer::drain`.
//!
//! The coalescer sits between every queued prediction job and the round
//! that answers it, so its invariants are load-bearing for the whole
//! serve layer — until now they were only exercised indirectly through
//! `over_the_wire.rs`. The sweep drives arbitrary queued request
//! sequences through the same drain loop the batcher threads run and
//! pins, for every generated sequence:
//!
//! * **No request is dropped or duplicated** — the concatenation of all
//!   rounds is exactly the arrival sequence.
//! * **The row cap is never exceeded** — every round satisfies
//!   `rows ≤ max_rows`, except a round consisting of a single job whose
//!   own row count exceeds the cap (which must run alone rather than be
//!   split across release boundaries).
//! * **Passthrough mode preserves arrival order** with one job per
//!   round, exactly.

use fia_serve::{Coalescer, Coalescible};
use std::sync::mpsc;
use std::time::Duration;

#[derive(Debug, Clone, PartialEq, Eq)]
struct PJob {
    id: usize,
    rows: usize,
}

impl Coalescible for PJob {
    fn rows(&self) -> usize {
        self.rows
    }
}

/// Deterministic splitmix-flavoured generator, same idiom as the other
/// in-tree sweeps.
fn lcg(seed: u64) -> impl FnMut(usize) -> usize {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    move |bound: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound.max(1)
    }
}

/// Runs the batcher-thread drain loop (including the carry slot for
/// cap-overflowing jobs) over a pre-queued sequence until the queue is
/// exhausted, returning the rounds in execution order.
fn drain_to_rounds(coalescer: Coalescer, jobs: Vec<PJob>) -> Vec<Vec<PJob>> {
    let (tx, rx) = mpsc::channel();
    for job in jobs {
        tx.send(job).expect("queue");
    }
    drop(tx); // deadline waits resolve instantly via Disconnected
    let mut rounds = Vec::new();
    let mut pending: Option<PJob> = None;
    loop {
        let first = match pending.take() {
            Some(job) => job,
            None => match rx.try_recv() {
                Ok(job) => job,
                Err(_) => break,
            },
        };
        rounds.push(coalescer.drain(&rx, first, &mut pending));
    }
    assert!(pending.is_none(), "carry must be flushed by the loop");
    rounds
}

fn random_sequence(rng: &mut impl FnMut(usize) -> usize) -> Vec<PJob> {
    let n = 1 + rng(40);
    (0..n)
        .map(|id| PJob {
            id,
            // Mostly small jobs, occasionally one bigger than any
            // plausible cap so the oversized-lone-job path is hit.
            rows: if rng(10) == 0 {
                20 + rng(30)
            } else {
                1 + rng(8)
            },
        })
        .collect()
}

#[test]
fn sweep_no_request_dropped_or_duplicated_and_cap_strict() {
    for seed in 0..200u64 {
        let mut rng = lcg(seed);
        let jobs = random_sequence(&mut rng);
        let cap = 1 + rng(12);
        let coalescer = Coalescer::adaptive(cap, Duration::from_millis(5));
        let rounds = drain_to_rounds(coalescer, jobs.clone());

        // Conservation + order: the rounds concatenate back to exactly
        // the arrival sequence (carry preserves order across rounds).
        let replayed: Vec<PJob> = rounds.iter().flatten().cloned().collect();
        assert_eq!(replayed, jobs, "seed {seed}: drop/dup/reorder detected");

        // Strict row cap, with the lone-oversized-job exception.
        for (r, round) in rounds.iter().enumerate() {
            assert!(!round.is_empty(), "seed {seed}: empty round {r}");
            let rows: usize = round.iter().map(Coalescible::rows).sum();
            assert!(
                rows <= cap || round.len() == 1,
                "seed {seed}: round {r} packed {rows} rows past cap {cap} \
                 across {} jobs",
                round.len()
            );
        }
    }
}

#[test]
fn sweep_passthrough_is_one_job_per_round_in_arrival_order() {
    for seed in 0..100u64 {
        let mut rng = lcg(seed ^ 0xBEEF);
        let jobs = random_sequence(&mut rng);
        let rounds = drain_to_rounds(Coalescer::passthrough(), jobs.clone());
        assert_eq!(rounds.len(), jobs.len(), "seed {seed}");
        for (round, expected) in rounds.iter().zip(&jobs) {
            assert_eq!(round.len(), 1, "seed {seed}: passthrough merged");
            assert_eq!(&round[0], expected, "seed {seed}: order broken");
        }
    }
}

#[test]
fn live_sender_sequence_is_conserved_in_order() {
    // Same invariants under a real concurrent sender (timing-dependent
    // round boundaries, timing-independent assertions).
    let (tx, rx) = mpsc::channel();
    let sender = std::thread::spawn(move || {
        let mut rng = lcg(7);
        for id in 0..60 {
            tx.send(PJob {
                id,
                rows: 1 + rng(4),
            })
            .expect("send");
            if rng(3) == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    });
    let coalescer = Coalescer::adaptive(6, Duration::from_micros(300));
    let mut rounds = Vec::new();
    let mut pending: Option<PJob> = None;
    loop {
        let first = match pending.take() {
            Some(job) => job,
            None => match rx.recv_timeout(Duration::from_millis(200)) {
                Ok(job) => job,
                Err(_) => break,
            },
        };
        rounds.push(coalescer.drain(&rx, first, &mut pending));
    }
    sender.join().expect("sender");
    let ids: Vec<usize> = rounds.iter().flatten().map(|j| j.id).collect();
    assert_eq!(ids, (0..60).collect::<Vec<_>>());
    for round in &rounds {
        let rows: usize = round.iter().map(Coalescible::rows).sum();
        assert!(rows <= 6 || round.len() == 1);
    }
}
