//! Malformed-frame corpus: hostile bytes at the decoder and at a live
//! server.
//!
//! The serving boundary is adversary-facing by definition — the paper's
//! attacker *is* a client — so corrupt input must never panic a server
//! thread. Every corpus entry is checked twice:
//!
//! 1. at the codec level, where it must yield a *typed* `WireError`;
//! 2. over a real socket, where the connection must either recover
//!    (decode errors are answered with an `Error` response and the
//!    session continues) or close cleanly (framing corruption), with
//!    the server still accepting fresh connections afterwards.

use fia_defense::DefensePipeline;
use fia_linalg::Matrix;
use fia_models::LogisticRegression;
use fia_serve::wire::{
    decode_request, encode_request, read_frame, write_frame, Request, Response, WireError,
    MAX_FRAME_LEN,
};
use fia_serve::{PredictionServer, RemoteOracle, ServeConfig};
use fia_vfl::{VerticalPartition, VflSystem};
use std::io::{Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn deployed() -> Arc<VflSystem<LogisticRegression>> {
    let d = 6;
    let w = Matrix::from_fn(d, 3, |i, j| 0.2 * (i as f64 + 1.0) - 0.1 * j as f64);
    let model = LogisticRegression::from_parameters(w, vec![0.0; 3], 3);
    let global = Matrix::from_fn(16, d, |i, j| ((i * d + j) % 7) as f64 * 0.1);
    let partition = VerticalPartition::contiguous(&[3, 3]);
    Arc::new(VflSystem::from_global(model, partition, &global))
}

/// Sends raw bytes on a fresh connection and reads whatever comes back
/// (until the peer closes or a short timeout), so hostile frames can be
/// thrown at a live server without the cooperating client code path.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("timeout");
    stream.write_all(bytes).expect("write");
    let mut back = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => back.extend_from_slice(&buf[..n]),
            Err(_) => break, // timeout: server kept the connection open
        }
    }
    back
}

/// A length-prefixed frame around an arbitrary payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(payload);
    out
}

/// The server must still answer a well-formed client after the hostile
/// bytes — the real "never bricked" assertion.
fn assert_server_alive(addr: SocketAddr) {
    let mut oracle = RemoteOracle::connect(addr).expect("fresh connection after hostile frame");
    let scores = oracle.predict_batch(&[0, 1]).expect("predict");
    assert_eq!(scores.rows(), 2);
}

#[test]
fn truncated_length_prefix_is_typed_and_recoverable() {
    // Codec level: a stream that ends inside the 4-byte length prefix.
    let mut cursor = Cursor::new(vec![0x10u8, 0x00]);
    assert!(matches!(read_frame(&mut cursor), Err(WireError::Truncated)));

    // Live server: the connection dies cleanly, the listener survives.
    let server = PredictionServer::spawn(
        deployed(),
        Arc::new(DefensePipeline::new()),
        ServeConfig::default(),
    )
    .expect("bind");
    let back = send_raw(server.addr(), &[0x10, 0x00]);
    assert!(back.is_empty(), "half a length prefix must get no reply");
    assert_server_alive(server.addr());
    server.shutdown();
}

#[test]
fn length_one_past_the_oversize_cap_is_rejected() {
    // Exactly cap + 1: the first length the codec must refuse.
    let len = (MAX_FRAME_LEN + 1) as u32;
    let mut bytes = len.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 8]);
    let mut cursor = Cursor::new(bytes.clone());
    match read_frame(&mut cursor) {
        Err(WireError::TooLarge(n)) => assert_eq!(n, MAX_FRAME_LEN + 1),
        other => panic!("expected TooLarge, got {other:?}"),
    }
    // Boundary sanity: exactly the cap is still a valid (if huge) claim,
    // failing only as truncated since the payload is absent.
    let mut at_cap = (MAX_FRAME_LEN as u32).to_le_bytes().to_vec();
    at_cap.extend_from_slice(&[0u8; 8]);
    assert!(matches!(
        read_frame(&mut Cursor::new(at_cap)),
        Err(WireError::Truncated)
    ));

    // Live server: an oversize claim is framing corruption — connection
    // closed, no allocation, server alive.
    let server = PredictionServer::spawn(
        deployed(),
        Arc::new(DefensePipeline::new()),
        ServeConfig::default(),
    )
    .expect("bind");
    let back = send_raw(server.addr(), &bytes);
    assert!(back.is_empty(), "oversize frame must get no reply");
    assert_server_alive(server.addr());
    server.shutdown();
}

#[test]
fn nan_smuggled_into_a_matrix_payload_is_rejected_and_survivable() {
    // Build a valid PredictFeatures request, then smuggle a NaN into the
    // raw IEEE-754 payload bytes (the encoder would have refused it).
    let blocks = vec![Matrix::zeros(1, 3), Matrix::zeros(1, 3)];
    let mut payload = encode_request(&Request::PredictFeatures(blocks)).expect("encode");
    let n = payload.len();
    payload[n - 8..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
    assert!(matches!(
        decode_request(&payload),
        Err(WireError::NonFinite)
    ));

    // Live server: a decode error is answered with a typed Error
    // response and the *same* connection keeps working.
    let server = PredictionServer::spawn(
        deployed(),
        Arc::new(DefensePipeline::new()),
        ServeConfig::default(),
    )
    .expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut stream, &payload).expect("send hostile frame");
    let reply = read_frame(&mut stream)
        .expect("read")
        .expect("server answered");
    match fia_serve::wire::decode_response(&reply).expect("typed response") {
        Response::Error(why) => assert!(why.contains("non-finite"), "{why}"),
        other => panic!("expected Error response, got {other:?}"),
    }
    // Same connection, now a well-formed request.
    let good = encode_request(&Request::Ping).expect("encode");
    write_frame(&mut stream, &good).expect("send");
    let reply = read_frame(&mut stream).expect("read").expect("answered");
    assert!(matches!(
        fia_serve::wire::decode_response(&reply),
        Ok(Response::Pong)
    ));
    assert_server_alive(server.addr());
    server.shutdown();
}

#[test]
fn unknown_tag_mid_stream_is_typed_and_the_connection_recovers() {
    // Codec level.
    assert!(matches!(
        decode_request(&[0x5A, 1, 2, 3]),
        Err(WireError::BadTag(0x5A))
    ));

    // Live server: a valid request, then a garbage tag, then another
    // valid request — all on one connection.
    let server = PredictionServer::spawn(
        deployed(),
        Arc::new(DefensePipeline::new()),
        ServeConfig::default(),
    )
    .expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");

    let ping = encode_request(&Request::Ping).expect("encode");
    write_frame(&mut stream, &ping).expect("send");
    let reply = read_frame(&mut stream).expect("read").expect("answered");
    assert!(matches!(
        fia_serve::wire::decode_response(&reply),
        Ok(Response::Pong)
    ));

    stream.write_all(&frame(&[0x5A, 0, 0])).expect("bad tag");
    let reply = read_frame(&mut stream).expect("read").expect("answered");
    match fia_serve::wire::decode_response(&reply).expect("typed") {
        Response::Error(why) => assert!(why.contains("tag"), "{why}"),
        other => panic!("expected Error response, got {other:?}"),
    }

    write_frame(&mut stream, &ping).expect("send again");
    let reply = read_frame(&mut stream).expect("read").expect("answered");
    assert!(matches!(
        fia_serve::wire::decode_response(&reply),
        Ok(Response::Pong)
    ));

    let m = server.metrics();
    assert!(m.errors >= 1, "bad tag must be counted as an error");
    server.shutdown();
}

#[test]
fn corpus_of_random_garbage_never_panics_the_decoder() {
    // Defense-in-depth over the four named cases: seeded random byte
    // soup must always come back as *some* typed error or a (harmless)
    // decoded message — never a panic.
    let mut state = 0xC0FFEEu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u8
    };
    for len in 0..200usize {
        let payload: Vec<u8> = (0..len).map(|_| next()).collect();
        let _ = decode_request(&payload);
        let _ = fia_serve::wire::decode_response(&payload);
    }
}
