//! End-to-end integration: start the prediction service in-process on an
//! ephemeral port and replay the paper's attacks against it over the
//! wire. Because the codec carries confidence scores bit-exactly, every
//! remote replay must reproduce the in-process `AttackEngine` result —
//! the acceptance bar is per-feature-MSE agreement within 1e-9.

use fia_core::{
    accumulate_batch, metrics::mse_per_feature, run_over_oracle, AttackEngine,
    EqualitySolvingAttack, Grna, GrnaConfig, PathRestrictionAttack, PredictionOracle, QueryBatch,
};
use fia_data::{make_classification, normalize_dataset, SynthConfig};
use fia_defense::{DefensePipeline, RoundingDefense};
use fia_linalg::Matrix;
use fia_models::{DecisionTree, LogisticRegression, TreeConfig};
use fia_serve::{LoadConfig, PredictionServer, RemoteOracle, ServeConfig};
use fia_vfl::{VerticalPartition, VflSystem};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic pseudo-random stream (splitmix-flavoured LCG) so the
/// fixture needs no shared global state.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 32) as f64
    }
}

const D: usize = 8;
const C: usize = 5;
const N: usize = 72;
const ADV: [usize; 4] = [0, 2, 4, 6];
const TARGET: [usize; 4] = [1, 3, 5, 7];

/// A deployed multiclass LR system where ESA recovery is exact
/// (`d_target = 4 = c − 1`), plus the global prediction matrix.
fn deployed_lr() -> (Arc<VflSystem<LogisticRegression>>, Matrix) {
    let mut next = lcg(0xFEED5EED);
    let w = Matrix::from_fn(D, C, |_, _| next() * 2.0 - 1.0);
    let model = LogisticRegression::from_parameters(w, vec![0.0; C], C);
    let global = Matrix::from_fn(N, D, |_, _| 0.05 + 0.9 * next());
    let partition = VerticalPartition::from_assignments(vec![ADV.to_vec(), TARGET.to_vec()], D);
    let system = Arc::new(VflSystem::from_global(model, partition, &global));
    (system, global)
}

fn identity_defense() -> Arc<DefensePipeline> {
    Arc::new(DefensePipeline::new())
}

#[test]
fn esa_over_the_wire_matches_in_process_engine() {
    let (system, global) = deployed_lr();
    let server = PredictionServer::spawn(
        Arc::clone(&system),
        identity_defense(),
        ServeConfig::default(),
    )
    .expect("bind ephemeral port");

    let indices: Vec<usize> = (0..N).collect();
    let x_adv = global.select_columns(&ADV).unwrap();
    let truth = global.select_columns(&TARGET).unwrap();
    let attack = EqualitySolvingAttack::new(system.model(), &ADV, &TARGET);
    let engine = AttackEngine::new();

    // In-process reference: the same engine over the same deployment.
    let local = engine.run(
        &attack,
        &QueryBatch::new(x_adv.clone(), system.predict_batch(&indices)),
    );
    let local_mse = local.mse_against(&truth);

    // Over the wire, accumulated across several prediction rounds.
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");
    let remote = run_over_oracle(&engine, &attack, &mut oracle, &x_adv, &indices, 16)
        .expect("remote replay");
    let remote_mse = remote.mse_against(&truth);

    assert!(
        (local_mse - remote_mse).abs() < 1e-9,
        "per-feature MSE diverged: local {local_mse} vs wire {remote_mse}"
    );
    assert!(
        local.estimates.max_abs_diff(&remote.estimates).unwrap() < 1e-12,
        "estimates must be reproduced bit-for-bit up to fp noise"
    );
    // Exact-recovery regime: both must actually succeed, not agree on
    // garbage.
    assert!(
        remote_mse < 1e-8,
        "wire ESA should be exact, got {remote_mse}"
    );
    server.shutdown();
}

#[test]
fn grna_over_the_wire_matches_in_process() {
    let (system, global) = deployed_lr();
    let server = PredictionServer::spawn(
        Arc::clone(&system),
        identity_defense(),
        ServeConfig::default(),
    )
    .expect("bind ephemeral port");

    let indices: Vec<usize> = (0..N).collect();
    let x_adv = global.select_columns(&ADV).unwrap();
    let mut cfg = GrnaConfig::fast().with_seed(11);
    cfg.hidden = vec![16, 8];
    cfg.epochs = 6;

    // Remote corpus, chunked like a long-term observation campaign.
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");
    let wire_batch = accumulate_batch(&mut oracle, &x_adv, &indices, 9).expect("accumulate");

    // Identical training data (the wire is bit-exact) + identical seed
    // ⇒ identical generator ⇒ identical estimates.
    let local_batch = QueryBatch::new(x_adv.clone(), system.predict_batch(&indices));
    assert_eq!(local_batch.confidences, wire_batch.confidences);

    let grna = Grna::new(system.model(), &ADV, &TARGET, cfg);
    let engine = AttackEngine::new();
    let local = engine.run(
        &grna
            .train(&local_batch.x_adv, &local_batch.confidences)
            .with_infer_seed(3),
        &local_batch,
    );
    let remote = engine.run(
        &grna
            .train(&wire_batch.x_adv, &wire_batch.confidences)
            .with_infer_seed(3),
        &wire_batch,
    );
    assert!(local.estimates.max_abs_diff(&remote.estimates).unwrap() < 1e-12);
    server.shutdown();
}

#[test]
fn pra_over_the_wire_matches_in_process() {
    // Decision-tree deployment: one-hot confidences, path restriction.
    let synth = SynthConfig {
        n_samples: 160,
        n_features: D,
        n_informative: 6,
        n_redundant: 1,
        n_classes: 3,
        class_sep: 1.5,
        redundant_noise: 0.2,
        flip_y: 0.0,
        shuffle_features: false,
        seed: 23,
    };
    let ds = normalize_dataset(&make_classification(&synth)).0;
    let mut rng = StdRng::seed_from_u64(23);
    let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut rng);
    let attack_tree = tree.clone();
    let partition = VerticalPartition::from_assignments(vec![ADV.to_vec(), TARGET.to_vec()], D);
    let system = Arc::new(VflSystem::from_global(tree, partition, &ds.features));

    // Tree deployments shard like any other: run this parity check
    // through a 3-replica pool with the cache on, not the single
    // batcher — released one-hot confidences must survive both.
    let server = PredictionServer::spawn(
        Arc::clone(&system),
        identity_defense(),
        ServeConfig {
            replicas: 3,
            cache_capacity: 256,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");

    let n = system.n_samples();
    let indices: Vec<usize> = (0..n).collect();
    let x_adv = ds.features.select_columns(&ADV).unwrap();
    let attack = PathRestrictionAttack::new(&attack_tree, &ADV, &TARGET);
    let engine = AttackEngine::new();

    let local = engine.run(
        &attack,
        &QueryBatch::new(x_adv.clone(), system.predict_batch(&indices)),
    );
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");
    let remote =
        run_over_oracle(&engine, &attack, &mut oracle, &x_adv, &indices, 25).expect("replay");
    assert_eq!(local.estimates, remote.estimates);
    assert_eq!(local.degraded_rows, remote.degraded_rows);
    server.shutdown();
}

#[test]
fn esa_and_grna_through_pool_and_cache_match_in_process() {
    // The acceptance bar for the pool rework: with 4 replicas sharding
    // the stored prediction set and a warm released-score cache, attack
    // replays over the wire must still pin the in-process engine within
    // 1e-9 — sharding and caching change where rounds run, never what
    // is released.
    let (system, global) = deployed_lr();
    let server = PredictionServer::spawn(
        Arc::clone(&system),
        identity_defense(),
        ServeConfig {
            replicas: 4,
            cache_capacity: 2 * N,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");

    let indices: Vec<usize> = (0..N).collect();
    let x_adv = global.select_columns(&ADV).unwrap();
    let truth = global.select_columns(&TARGET).unwrap();
    let engine = AttackEngine::new();

    // ESA, cold (populates the cache through all four shards).
    let esa = EqualitySolvingAttack::new(system.model(), &ADV, &TARGET);
    let local = engine.run(
        &esa,
        &QueryBatch::new(x_adv.clone(), system.predict_batch(&indices)),
    );
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");
    let cold =
        run_over_oracle(&engine, &esa, &mut oracle, &x_adv, &indices, 13).expect("cold replay");
    assert!(
        (local.mse_against(&truth) - cold.mse_against(&truth)).abs() < 1e-9,
        "pooled ESA diverged from the in-process engine"
    );
    assert!(local.estimates.max_abs_diff(&cold.estimates).unwrap() < 1e-12);

    // ESA, warm (every row served from the cache) on a fresh connection.
    let mut warm_oracle = RemoteOracle::connect(server.addr()).expect("connect");
    let warm = run_over_oracle(&engine, &esa, &mut warm_oracle, &x_adv, &indices, 20)
        .expect("warm replay");
    assert_eq!(warm_oracle.query_cost().cached_rows, N as u64);
    assert!(local.estimates.max_abs_diff(&warm.estimates).unwrap() < 1e-12);

    // GRNA on the warm corpus: bit-exact training data + same seed ⇒
    // identical generator ⇒ identical estimates.
    let wire_batch = accumulate_batch(&mut warm_oracle, &x_adv, &indices, 7).expect("accumulate");
    let local_batch = QueryBatch::new(x_adv.clone(), system.predict_batch(&indices));
    assert_eq!(local_batch.confidences, wire_batch.confidences);
    let mut cfg = GrnaConfig::fast().with_seed(5);
    cfg.hidden = vec![12, 6];
    cfg.epochs = 4;
    let grna = Grna::new(system.model(), &ADV, &TARGET, cfg);
    let local_g = engine.run(
        &grna
            .train(&local_batch.x_adv, &local_batch.confidences)
            .with_infer_seed(2),
        &local_batch,
    );
    let remote_g = engine.run(
        &grna
            .train(&wire_batch.x_adv, &wire_batch.confidences)
            .with_infer_seed(2),
        &wire_batch,
    );
    assert!(local_g.estimates.max_abs_diff(&remote_g.estimates).unwrap() < 1e-12);

    // The shard routing actually spread the cold campaign: every
    // replica ran rounds, and the totals reconcile.
    let m = server.metrics();
    assert_eq!(m.replica_rounds.len(), 4);
    assert!(
        m.replica_rounds.iter().all(|&r| r > 0),
        "a shard never saw traffic: {:?}",
        m.replica_rounds
    );
    assert_eq!(m.replica_rows.iter().sum::<u64>(), m.rows);
    server.shutdown();
}

#[test]
fn pooled_concurrent_clients_spread_over_replicas_and_get_their_own_rows() {
    let (system, _) = deployed_lr();
    let config = ServeConfig {
        replicas: 3,
        batch_cap: 16,
        batch_deadline: Duration::from_millis(1),
        round_cost: Duration::from_millis(1),
        cache_capacity: 0, // pure dispatch path
        ..ServeConfig::default()
    };
    let server =
        PredictionServer::spawn(Arc::clone(&system), identity_defense(), config).expect("bind");
    let addr = server.addr();

    let workers: Vec<_> = (0..6)
        .map(|worker| {
            let system = Arc::clone(&system);
            std::thread::spawn(move || {
                let mut oracle = RemoteOracle::connect(addr).expect("connect");
                let mut next = lcg(worker * 7919 + 1);
                for round in 0..8 {
                    if round % 2 == 0 {
                        // Stored-index query spanning all three shards.
                        let indices: Vec<usize> =
                            (0..6).map(|_| (next() * N as f64) as usize % N).collect();
                        let wire = oracle.predict_batch(&indices).expect("predict");
                        let local = system.predict_batch(&indices);
                        assert_eq!(wire, local, "worker {worker} round {round} misrouted");
                    } else {
                        // Ad-hoc query (least-loaded routing).
                        let rows = 1 + round % 3;
                        let slices = vec![
                            Matrix::from_fn(rows, ADV.len(), |_, _| next()),
                            Matrix::from_fn(rows, TARGET.len(), |_, _| next()),
                        ];
                        let wire = oracle.predict_features(&slices).expect("predict");
                        let local = system.predict_features_batch(&slices);
                        assert_eq!(wire, local, "worker {worker} round {round} misrouted");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }

    let m = server.metrics();
    assert_eq!(m.errors, 0);
    assert!(m.requests >= 48, "all requests served, got {}", m.requests);
    assert_eq!(m.replica_rounds.len(), 3);
    assert!(
        m.replica_rounds.iter().filter(|&&r| r > 0).count() >= 2,
        "traffic never spread past one replica: {:?}",
        m.replica_rounds
    );
    assert_eq!(m.replica_rows.iter().sum::<u64>(), m.rows);
    server.shutdown();
}

#[test]
fn defense_pipeline_applies_at_the_release_boundary() {
    let (system, global) = deployed_lr();
    let defense = Arc::new(DefensePipeline::new().then(RoundingDefense::coarse()));
    let server = PredictionServer::spawn(Arc::clone(&system), defense, ServeConfig::default())
        .expect("bind ephemeral port");

    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");
    let released = oracle.predict_batch(&[0, 1, 2, 3]).expect("predict");
    // Every released score is coarsened to one decimal digit — the raw
    // model scores are not (they are generic softmax outputs).
    for &v in released.as_slice() {
        assert!(
            ((v * 10.0) - (v * 10.0).round()).abs() < 1e-9,
            "score {v} escaped the rounding defense"
        );
    }
    let raw = system.predict_batch(&[0, 1, 2, 3]);
    assert!(
        released.max_abs_diff(&raw).unwrap() > 0.0,
        "defense was a no-op"
    );

    // And the degradation propagates into the attack, as in the paper.
    let indices: Vec<usize> = (0..N).collect();
    let x_adv = global.select_columns(&ADV).unwrap();
    let truth = global.select_columns(&TARGET).unwrap();
    let attack = EqualitySolvingAttack::new(system.model(), &ADV, &TARGET);
    let engine = AttackEngine::new();
    let defended =
        run_over_oracle(&engine, &attack, &mut oracle, &x_adv, &indices, 0).expect("replay");
    let defended_mse = mse_per_feature(&defended.estimates.map(|v| v.clamp(0.0, 1.0)), &truth);
    assert!(
        defended_mse > 1e-4,
        "coarse rounding should break exact recovery, mse = {defended_mse}"
    );
    server.shutdown();
}

#[test]
fn concurrent_clients_each_get_their_own_rows() {
    let (system, _) = deployed_lr();
    let config = ServeConfig {
        batch_cap: 32,
        batch_deadline: Duration::from_millis(2),
        round_cost: Duration::from_millis(2),
        ..ServeConfig::default()
    };
    let server =
        PredictionServer::spawn(Arc::clone(&system), identity_defense(), config).expect("bind");
    let addr = server.addr();

    let workers: Vec<_> = (0..6)
        .map(|worker| {
            let system = Arc::clone(&system);
            std::thread::spawn(move || {
                let mut oracle = RemoteOracle::connect(addr).expect("connect");
                for round in 0..6 {
                    // Distinct ad-hoc inputs per worker and round, so a
                    // misrouted row would be caught immediately.
                    let mut next = lcg(worker * 1000 + round + 1);
                    let rows = 1 + (round as usize % 3);
                    let slices = vec![
                        Matrix::from_fn(rows, ADV.len(), |_, _| next()),
                        Matrix::from_fn(rows, TARGET.len(), |_, _| next()),
                    ];
                    let wire = oracle.predict_features(&slices).expect("predict");
                    let local = system.predict_features_batch(&slices);
                    assert_eq!(wire, local, "worker {worker} round {round} misrouted");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }

    let m = server.metrics();
    assert_eq!(m.errors, 0);
    assert!(m.requests >= 36, "all requests served, got {}", m.requests);
    assert!(
        m.mean_batch_fill > 1.0,
        "coalescer never merged concurrent traffic (fill = {})",
        m.mean_batch_fill
    );
    assert!(m.rounds < m.requests);
    assert!(m.p99_latency_us >= m.p50_latency_us);
    server.shutdown();
}

#[test]
fn info_ping_empty_batches_and_rejections() {
    let (system, _) = deployed_lr();
    let server = PredictionServer::spawn(
        Arc::clone(&system),
        identity_defense(),
        ServeConfig::default(),
    )
    .expect("bind");
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");

    oracle.ping().expect("ping");
    let info = oracle.info().clone();
    assert_eq!(info.n_samples, N);
    assert_eq!(info.n_features, D);
    assert_eq!(info.n_classes, C);
    assert_eq!(info.party_widths, vec![ADV.len(), TARGET.len()]);
    assert_eq!(PredictionOracle::n_samples(&oracle), N);

    // Empty round: answered directly, shaped 0 × c.
    let empty = oracle.predict_batch(&[]).expect("empty batch");
    assert_eq!(empty.shape(), (0, C));

    // Out-of-range index and malformed feature blocks are rejected with
    // reasons, and the connection stays usable afterwards.
    let err = oracle.predict_batch(&[N]).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
    let err = oracle
        .predict_features(&[Matrix::zeros(1, ADV.len())])
        .unwrap_err();
    assert!(err.to_string().contains("party"), "{err}");
    let err = oracle
        .predict_features(&[Matrix::zeros(1, 3), Matrix::zeros(1, 4)])
        .unwrap_err();
    assert!(err.to_string().contains("wide"), "{err}");
    let ok = oracle.predict_batch(&[0]).expect("connection survived");
    assert_eq!(ok.shape(), (1, C));

    let m = server.metrics();
    assert_eq!(m.errors, 3);
    server.shutdown();
}

#[test]
fn graceful_shutdown_over_the_wire() {
    let (system, _) = deployed_lr();
    let server = PredictionServer::spawn(
        Arc::clone(&system),
        identity_defense(),
        ServeConfig::default(),
    )
    .expect("bind");
    let addr = server.addr();

    let mut oracle = RemoteOracle::connect(addr).expect("connect");
    oracle.predict_batch(&[0, 1]).expect("warm request");
    oracle.shutdown_server().expect("shutdown acknowledged");
    // Joins every thread; must not hang even though a client socket is
    // still open.
    server.shutdown();
    assert!(
        RemoteOracle::connect(addr).is_err(),
        "listener should be closed after shutdown"
    );
}

#[test]
fn load_generator_reports_sane_throughput() {
    let (system, _) = deployed_lr();
    let server = PredictionServer::spawn(
        Arc::clone(&system),
        identity_defense(),
        ServeConfig::default(),
    )
    .expect("bind");
    let report = fia_serve::run_load(
        server.addr(),
        &LoadConfig {
            threads: 3,
            requests_per_thread: 20,
            rows_per_request: 2,
        },
    )
    .expect("load run");
    assert_eq!(report.total_requests, 60);
    assert_eq!(report.total_rows, 120);
    assert!(report.rps > 0.0);
    let m = server.metrics();
    assert!(m.requests >= 60);
    assert!(m.rows >= 120);
    server.shutdown();
}

#[test]
fn open_loop_generator_honors_schedule_and_counts_everything() {
    let (system, _) = deployed_lr();
    let server = PredictionServer::spawn(
        Arc::clone(&system),
        identity_defense(),
        ServeConfig::default(),
    )
    .expect("bind");
    // A rate the loopback server trivially sustains: the run should
    // complete the whole schedule, on time, at roughly the offered rate
    // (wall clock ≈ schedule span).
    let report = fia_serve::run_load_open(
        server.addr(),
        &fia_serve::OpenLoadConfig {
            connections: 4,
            arrival_rps: 400.0,
            total_requests: 80,
            rows_per_request: 2,
        },
    )
    .expect("open-loop run");
    assert_eq!(report.total_requests, 80);
    assert_eq!(report.total_rows, 160);
    assert!((report.offered_rps - 400.0).abs() < f64::EPSILON);
    // 80 arrivals at 400/s span 200 ms; achieved must be in that
    // ballpark, not "as fast as the server can close the loop".
    assert!(
        report.achieved_rps <= 1.5 * report.offered_rps,
        "achieved {} should track the offered schedule",
        report.achieved_rps
    );
    assert!(report.elapsed >= Duration::from_millis(150));
    assert!(report.p99_latency_us >= report.p50_latency_us);
    let m = server.metrics();
    assert!(m.requests >= 80);
    server.shutdown();
}
