//! Over-the-wire scrape of the `MetricsText` op: a live server must
//! answer with well-formed Prometheus-style exposition whose samples
//! agree with the binary `Metrics` snapshot taken on the same
//! connection.

use fia_linalg::Matrix;
use fia_models::LogisticRegression;
use fia_serve::{PredictionServer, RemoteOracle, ServeConfig};
use fia_vfl::{VerticalPartition, VflSystem};
use std::sync::Arc;

const D: usize = 6;
const C: usize = 3;
const N: usize = 48;

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 32) as f64
    }
}

fn deployed_lr() -> Arc<VflSystem<LogisticRegression>> {
    let mut next = lcg(0x5C4A9E);
    let w = Matrix::from_fn(D, C, |_, _| next() * 2.0 - 1.0);
    let model = LogisticRegression::from_parameters(w, vec![0.0; C], C);
    let global = Matrix::from_fn(N, D, |_, _| 0.05 + 0.9 * next());
    let partition = VerticalPartition::from_assignments(vec![vec![0, 2, 4], vec![1, 3, 5]], D);
    Arc::new(VflSystem::from_global(model, partition, &global))
}

fn take_sample(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .unwrap_or_else(|| panic!("no sample line for {name} in:\n{text}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|e| panic!("sample for {name} not integral: {e}"))
}

#[test]
fn scrape_is_well_formed_and_agrees_with_the_binary_snapshot() {
    let server = PredictionServer::spawn(
        deployed_lr(),
        Arc::new(fia_defense::DefensePipeline::new()),
        ServeConfig {
            replicas: 2,
            cache_capacity: 2 * N,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");

    oracle.predict_batch(&[1, 5, 9, 13]).expect("round 1");
    oracle
        .predict_batch(&[1, 5, 9, 13])
        .expect("round 2 (cached)");
    assert!(oracle.predict_batch(&[999]).is_err(), "oob rejected");

    let report = oracle.server_metrics().expect("binary snapshot");
    let text = oracle.metrics_text().expect("scrape");

    // Structure: every sample's metric name has exactly one TYPE header.
    for name in [
        "fia_serve_requests_total",
        "fia_serve_errors_total",
        "fia_serve_cache_hit_rows_total",
        "fia_serve_cache_miss_rows_total",
        "fia_serve_replica_rounds_total",
        "fia_serve_replica_rows_total",
        "fia_serve_request_duration_us",
        "fia_serve_uptime_seconds",
    ] {
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with(&format!("# TYPE {name} ")))
                .count(),
            1,
            "TYPE header for {name}"
        );
    }

    // Agreement with the binary report. The scrape itself happened after
    // the Metrics request completed, so requests grew by exactly one.
    assert_eq!(
        take_sample(&text, "fia_serve_requests_total"),
        report.requests + 1
    );
    assert_eq!(take_sample(&text, "fia_serve_errors_total"), report.errors);
    assert_eq!(
        take_sample(&text, "fia_serve_cache_hit_rows_total"),
        report.cache_hits
    );
    assert_eq!(report.cache_hits, 4, "second round was fully cached");
    let rows: u64 = (0..2)
        .map(|i| {
            take_sample(
                &text,
                &format!("fia_serve_replica_rows_total{{replica=\"{i}\"}}"),
            )
        })
        .sum();
    assert_eq!(rows, report.rows);

    // The latency histogram saw every completed request and its +Inf
    // bucket equals its count.
    let count = take_sample(&text, "fia_serve_request_duration_us_count");
    assert_eq!(count, report.requests + 1);
    assert_eq!(
        take_sample(&text, "fia_serve_request_duration_us_bucket{le=\"+Inf\"}"),
        count
    );

    // ServerHandle::metrics_text is the same surface, server-side.
    assert!(server
        .metrics_text()
        .contains("# TYPE fia_serve_requests_total counter"));
    server.shutdown();
}
