//! Integration coverage for the serving layer's observability surface:
//! traced wire variants open linked `serve.request` spans on the server,
//! the audit ledger attributes traffic per client (and agrees with each
//! client's own meter), session tags rename ledger entries, and legacy
//! untraced clients stay bit-identical with no span overhead.

use fia_core::{PredictionOracle, TraceContext};
use fia_defense::DefensePipeline;
use fia_linalg::Matrix;
use fia_models::LogisticRegression;
use fia_serve::{PredictionServer, RemoteOracle, ServeConfig, SERVER_SPAN_ID_BASE};
use fia_vfl::{VerticalPartition, VflSystem};
use std::sync::Arc;

const D: usize = 6;
const C: usize = 4;
const N: usize = 40;

fn deployed() -> Arc<VflSystem<LogisticRegression>> {
    let w = Matrix::from_fn(D, C, |i, j| ((i * C + j) as f64).sin());
    let model = LogisticRegression::from_parameters(w, vec![0.0; C], C);
    let global = Matrix::from_fn(N, D, |i, j| 0.05 + 0.9 * (((i * D + j) as f64).cos().abs()));
    let partition = VerticalPartition::from_assignments(vec![vec![0, 1, 2], vec![3, 4, 5]], D);
    Arc::new(VflSystem::from_global(model, partition, &global))
}

fn spawn(cfg: ServeConfig) -> fia_serve::ServerHandle {
    PredictionServer::spawn(deployed(), Arc::new(DefensePipeline::new()), cfg).expect("bind")
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn traced_queries_open_linked_request_spans() {
    let server = spawn(ServeConfig {
        replicas: 2,
        cache_capacity: 64,
        ..ServeConfig::default()
    });
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");

    // Untraced traffic must not open spans.
    oracle.predict_batch(&[0, 1]).expect("legacy predict");
    assert!(server.trace_jsonl().is_empty(), "legacy ops stay span-free");

    oracle.set_trace_context(Some(TraceContext {
        trace_id: 0xA11CE,
        parent_span: 42,
    }));
    oracle.predict_batch(&[0, 1, 2]).expect("traced predict");
    oracle.predict_batch(&[0, 1]).expect("traced cache hit");
    let slices = vec![Matrix::zeros(2, 3), Matrix::zeros(2, 3)];
    oracle.predict_features(&slices).expect("traced features");
    oracle.set_trace_context(None);
    oracle.predict_batch(&[3]).expect("untraced again");

    // The span export travels over the wire too (TraceExport op).
    let jsonl = oracle.server_trace_jsonl().expect("trace export");
    assert_eq!(jsonl, server.trace_jsonl());

    let requests: Vec<&str> = jsonl
        .lines()
        .filter(|l| l.contains("\"name\":\"serve.request\""))
        .collect();
    // Exactly the three traced queries; the bracketing untraced ones
    // left no spans.
    assert_eq!(requests.len(), 3, "{jsonl}");
    for req in &requests {
        assert_eq!(field_u64(req, "parent"), Some(42));
        assert_eq!(field_u64(req, "trace_id"), Some(0xA11CE));
        assert!(field_u64(req, "id").unwrap() >= SERVER_SPAN_ID_BASE);
        assert!(req.contains("\"outcome\":\"ok\""));
    }
    let ops: Vec<&str> = requests
        .iter()
        .filter_map(|l| {
            let at = l.find("\"op\":\"")? + 6;
            l[at..].split('"').next()
        })
        .collect();
    assert_eq!(
        ops,
        ["predict_by_index", "predict_by_index", "predict_features"]
    );

    // The fully-cached second predict recorded its cache hits and did
    // not dispatch: rows 0+1 were warmed by the first traced query.
    assert!(jsonl.contains("\"cached_rows\":2"), "{jsonl}");
    assert!(jsonl.contains("\"name\":\"serve.cache\""));
    assert!(jsonl.contains("\"name\":\"serve.dispatch\""));
    server.shutdown();
}

#[test]
fn rejected_traced_requests_record_the_outcome() {
    let server = spawn(ServeConfig::default());
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");
    oracle.set_trace_context(Some(TraceContext {
        trace_id: 7,
        parent_span: 9,
    }));
    assert!(oracle.predict_batch(&[N]).is_err(), "out of range rejects");
    let jsonl = server.trace_jsonl();
    let req = jsonl
        .lines()
        .find(|l| l.contains("\"name\":\"serve.request\""))
        .expect("rejection still traced");
    assert!(req.contains("\"outcome\":\"rejected\""), "{req}");

    // And the rejection never reaches the audit ledger.
    let audit = oracle.audit_report().expect("audit");
    assert!(audit.clients.is_empty(), "{audit:?}");
    server.shutdown();
}

#[test]
fn audit_ledger_attributes_per_client_and_matches_their_meters() {
    let server = spawn(ServeConfig {
        replicas: 2,
        cache_capacity: 2 * N,
        ..ServeConfig::default()
    });

    // Client A: declares a session tag, sweeps most of the sample space
    // and re-queries rows (cache-exploiting probe shape).
    let mut probe = RemoteOracle::connect(server.addr()).expect("connect");
    probe.declare_session("probe-7").expect("declare");
    let sweep: Vec<usize> = (0..N).collect();
    probe.predict_batch(&sweep).expect("sweep");
    probe.predict_batch(&sweep[..10]).expect("repeat");
    probe.predict_batch(&[]).expect("empty still a query");

    // Client B: anonymous, ad-hoc feature traffic only.
    let mut casual = RemoteOracle::connect(server.addr()).expect("connect");
    let slices = vec![Matrix::zeros(3, 3), Matrix::zeros(3, 3)];
    casual.predict_features(&slices).expect("features");

    let audit = casual.audit_report().expect("audit");
    assert_eq!(audit.n_samples, N as u64);
    assert_eq!(audit.clients.len(), 2, "{audit:?}");

    let p = audit.client("probe-7").expect("tagged entry");
    assert_eq!(p.cost(), probe.query_cost(), "ledger == client meter");
    assert_eq!(p.queries, 3);
    assert_eq!(p.rows, (N + 10) as u64);
    assert_eq!(p.cached_rows, 10);
    assert_eq!(p.distinct_rows, N as u64);
    assert_eq!(p.repeat_rows, 10);
    assert!((p.coverage(N) - 1.0).abs() < 1e-12);
    assert!(p.flags.contains(&"high-coverage".to_string()));

    // The anonymous client keyed under its connection label.
    let anon = audit
        .clients
        .iter()
        .find(|c| c.client.starts_with("conn-"))
        .expect("anonymous entry");
    assert_eq!(anon.cost(), casual.query_cost());
    assert_eq!(anon.feature_queries, 1);
    assert_eq!(anon.rows, 3);
    assert_eq!(anon.distinct_rows, 0);

    // The per-client mirror series are scrapeable via MetricsText.
    let text = probe.metrics_text().expect("scrape");
    assert!(
        text.contains("fia_serve_client_queries_total{client=\"probe-7\"} 3"),
        "{text}"
    );
    assert!(text.contains("fia_serve_client_window_rate_rps{client=\"probe-7\"}"));
    server.shutdown();
}

#[test]
fn session_tag_splits_ledger_entries_and_empty_tag_reverts() {
    let server = spawn(ServeConfig::default());
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");
    oracle.predict_batch(&[0]).expect("as conn label");
    oracle.declare_session("alice").expect("declare");
    oracle.predict_batch(&[1, 2]).expect("as alice");
    oracle.declare_session("").expect("revert");
    oracle.predict_batch(&[3]).expect("as conn label again");

    let audit = oracle.audit_report().expect("audit");
    let alice = audit.client("alice").expect("tagged rows");
    assert_eq!(alice.rows, 2);
    let conn = audit
        .clients
        .iter()
        .find(|c| c.client.starts_with("conn-"))
        .expect("connection-labeled rows");
    assert_eq!(conn.rows, 2);
    assert_eq!(conn.queries, 2);
    // Combined, the ledger accounts for the client's whole meter.
    assert_eq!(
        alice.rows + conn.rows,
        oracle.query_cost().rows,
        "no rows lost across relabeling"
    );
    server.shutdown();
}

#[test]
fn audit_can_be_disabled_per_server() {
    let server = spawn(ServeConfig {
        audit: false,
        ..ServeConfig::default()
    });
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");
    oracle.declare_session("ghost").expect("tag still accepted");
    oracle.predict_batch(&[0, 1]).expect("predict");
    let audit = oracle.audit_report().expect("op still answers");
    assert_eq!(audit.n_samples, N as u64);
    assert!(audit.clients.is_empty(), "no ledger kept: {audit:?}");
    let text = oracle.metrics_text().expect("scrape");
    assert!(!text.contains("fia_serve_client_queries_total"));
    server.shutdown();
}
