//! Release semantics of the score cache, pinned over the wire.
//!
//! The paper's defenses act at the score-release boundary; the cache
//! sits strictly *after* them, so its contract is a security property,
//! not just a performance one: a re-queried row must be re-released
//! **bit-identically** to its first release. In particular the noise
//! defense must not be re-sampled — if it were, an adversary could
//! average fresh noise away by asking repeatedly. The discriminating
//! case is re-querying a row inside a *different* batch composition:
//! the content-keyed noise defense would then draw different noise, so
//! only the cache can (and must) keep the released bytes stable.

use fia_core::{run_over_oracle, AttackEngine, EqualitySolvingAttack, PredictionOracle};
use fia_defense::{DefensePipeline, NoiseDefense, RoundingDefense};
use fia_linalg::Matrix;
use fia_models::LogisticRegression;
use fia_serve::{PredictionServer, RemoteOracle, ServeConfig};
use fia_vfl::{VerticalPartition, VflSystem};
use std::sync::Arc;

const D: usize = 8;
const C: usize = 5;
const N: usize = 72;
const ADV: [usize; 4] = [0, 2, 4, 6];
const TARGET: [usize; 4] = [1, 3, 5, 7];

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 32) as f64
    }
}

fn deployed_lr() -> (Arc<VflSystem<LogisticRegression>>, Matrix) {
    let mut next = lcg(0xCAC4E);
    let w = Matrix::from_fn(D, C, |_, _| next() * 2.0 - 1.0);
    let model = LogisticRegression::from_parameters(w, vec![0.0; C], C);
    let global = Matrix::from_fn(N, D, |_, _| 0.05 + 0.9 * next());
    let partition = VerticalPartition::from_assignments(vec![ADV.to_vec(), TARGET.to_vec()], D);
    let system = Arc::new(VflSystem::from_global(model, partition, &global));
    (system, global)
}

/// Rounding + content-keyed noise: the paper's defended release path.
fn noisy_defense() -> Arc<DefensePipeline> {
    Arc::new(
        DefensePipeline::new()
            .then(NoiseDefense::new(0.02, 77))
            .then(RoundingDefense::fine()),
    )
}

fn cached_config(replicas: usize) -> ServeConfig {
    ServeConfig {
        replicas,
        cache_capacity: 4 * N, // everything stays resident
        cache_seed: 0xE71C,
        ..ServeConfig::default()
    }
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn requeried_rows_are_byte_identical_to_their_first_release() {
    let (system, _) = deployed_lr();
    let server = PredictionServer::spawn(system, noisy_defense(), cached_config(2)).expect("bind");
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");

    // First release of four rows (one round, one noise draw each).
    let first = oracle.predict_batch(&[3, 9, 17, 40]).expect("first");
    assert_eq!(oracle.cost().cached_rows, 0, "cold campaign has no hits");

    // Exact re-query: must be the same bytes, all from the cache.
    let again = oracle.predict_batch(&[3, 9, 17, 40]).expect("again");
    assert_eq!(
        bits(&first),
        bits(&again),
        "re-release must be bit-identical"
    );
    assert_eq!(oracle.cost().cached_rows, 4);

    // The discriminating case: the same rows inside a *different* batch
    // composition and order. Without the cache, the content-keyed noise
    // defense would draw fresh noise for this round; with it, rows 9,
    // 40 and 3 must reproduce their first-released bytes exactly.
    let mixed = oracle.predict_batch(&[9, 40, 50, 3]).expect("mixed");
    assert_eq!(
        bits(&mixed.select_rows(&[0]).unwrap()),
        bits(&first.select_rows(&[1]).unwrap())
    );
    assert_eq!(
        bits(&mixed.select_rows(&[1]).unwrap()),
        bits(&first.select_rows(&[3]).unwrap())
    );
    assert_eq!(
        bits(&mixed.select_rows(&[3]).unwrap()),
        bits(&first.select_rows(&[0]).unwrap())
    );
    assert_eq!(oracle.cost().cached_rows, 7, "three more hits, one miss");

    // And the newly released row 50 is itself now canonical.
    let row50 = oracle.predict_batch(&[50]).expect("row 50");
    assert_eq!(bits(&row50), bits(&mixed.select_rows(&[2]).unwrap()));

    let m = server.metrics();
    assert_eq!(m.cache_hits, 8);
    assert_eq!(m.cache_misses, 5);
    assert!((m.cache_hit_rate() - 8.0 / 13.0).abs() < 1e-12);
    server.shutdown();
}

#[test]
fn esa_over_remote_oracle_is_identical_warm_vs_cold() {
    let (system, global) = deployed_lr();
    let server = PredictionServer::spawn(Arc::clone(&system), noisy_defense(), cached_config(4))
        .expect("bind");

    let indices: Vec<usize> = (0..N).collect();
    let x_adv = global.select_columns(&ADV).unwrap();
    let attack = EqualitySolvingAttack::new(system.model(), &ADV, &TARGET);
    let engine = AttackEngine::new();

    // Cold campaign: every row is released (and cached) for the first
    // time, across 4 shards and several accumulation rounds.
    let mut cold_oracle = RemoteOracle::connect(server.addr()).expect("connect");
    let cold = run_over_oracle(&engine, &attack, &mut cold_oracle, &x_adv, &indices, 16)
        .expect("cold replay");
    let cold_cost = cold_oracle.query_cost();
    assert_eq!(cold_cost.rows, N as u64);
    assert_eq!(cold_cost.cached_rows, 0);
    assert_eq!(cold_cost.computed_rows(), N as u64);

    // Warm campaign: a fresh connection, different chunking — every row
    // comes from the cache, and the corpus is *identical*, so the
    // attack's estimates are too (bit-for-bit).
    let mut warm_oracle = RemoteOracle::connect(server.addr()).expect("connect");
    let warm = run_over_oracle(&engine, &attack, &mut warm_oracle, &x_adv, &indices, 9)
        .expect("warm replay");
    let warm_cost = warm_oracle.query_cost();
    assert_eq!(warm_cost.cached_rows, N as u64, "fully cache-served");
    assert_eq!(warm_cost.computed_rows(), 0);

    assert_eq!(
        cold.estimates, warm.estimates,
        "a warm cache must not change what the adversary reconstructs"
    );
    server.shutdown();
}
