//! The adaptive micro-batch coalescer.
//!
//! One joint-prediction protocol round can answer any number of queued
//! queries, but each round pays fixed costs — model dispatch, defense
//! application, and in a real deployment the secure-computation round
//! trip itself. The coalescer drains the server's request queue into one
//! round under two caps: a row budget ([`Coalescer::max_rows`]) and a
//! deadline measured from the round's first request
//! ([`Coalescer::max_delay`]).
//!
//! The policy is *adaptive*: the first job is taken the moment it
//! arrives, everything already queued behind it is grabbed without
//! waiting, and the deadline clock only runs when that greedy grab found
//! concurrent traffic. A lone client therefore never pays the deadline
//! as added latency, while concurrent load naturally fills rounds — the
//! classic serving-stack batching behaviour.

use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

/// Anything the coalescer can pack into a round: a queued job knows how
/// many query rows it contributes.
pub trait Coalescible {
    /// Query rows this job adds to the round.
    fn rows(&self) -> usize;
}

/// Queue-draining policy for one prediction round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coalescer {
    /// Close the round once it holds at least this many rows.
    pub max_rows: usize,
    /// Close the round this long after its first request arrived, even
    /// if the row budget is not reached. Only consulted when the greedy
    /// drain found concurrent traffic.
    pub max_delay: Duration,
}

impl Coalescer {
    /// A coalescing policy: up to `max_rows` rows per round, waiting at
    /// most `max_delay` past the first request for the round to fill.
    pub fn adaptive(max_rows: usize, max_delay: Duration) -> Self {
        Coalescer {
            max_rows: max_rows.max(1),
            max_delay,
        }
    }

    /// Coalescing disabled: every request is its own protocol round.
    pub fn passthrough() -> Self {
        Coalescer {
            max_rows: 1,
            max_delay: Duration::ZERO,
        }
    }

    /// `true` when this policy never merges requests.
    pub fn is_passthrough(&self) -> bool {
        self.max_rows <= 1
    }

    /// Drains `rx` into one round starting from `first` (which the
    /// caller already received). Returns the jobs of the round, in
    /// arrival order; never blocks longer than `max_delay`.
    pub fn drain<T: Coalescible>(&self, rx: &Receiver<T>, first: T) -> Vec<T> {
        let t0 = Instant::now();
        let mut rows = first.rows();
        let mut jobs = vec![first];
        if rows >= self.max_rows {
            return jobs;
        }
        // Greedy phase: everything already queued joins the round free.
        while let Ok(job) = rx.try_recv() {
            rows += job.rows();
            jobs.push(job);
            if rows >= self.max_rows {
                return jobs;
            }
        }
        // Adaptive phase: only wait out the deadline when the greedy
        // grab proved there is concurrent traffic to wait for.
        if jobs.len() > 1 {
            while rows < self.max_rows {
                let Some(remaining) = self.max_delay.checked_sub(t0.elapsed()) else {
                    break;
                };
                match rx.recv_timeout(remaining) {
                    Ok(job) => {
                        rows += job.rows();
                        jobs.push(job);
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    struct Job(usize);
    impl Coalescible for Job {
        fn rows(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn passthrough_never_merges() {
        let (tx, rx) = mpsc::channel();
        tx.send(Job(1)).unwrap();
        tx.send(Job(1)).unwrap();
        let c = Coalescer::passthrough();
        assert!(c.is_passthrough());
        let round = c.drain(&rx, Job(1));
        assert_eq!(round.len(), 1);
        // The queued jobs are untouched for the next rounds.
        assert_eq!(rx.try_iter().count(), 2);
    }

    #[test]
    fn greedy_drain_takes_everything_queued() {
        let (tx, rx) = mpsc::channel();
        for _ in 0..5 {
            tx.send(Job(1)).unwrap();
        }
        let round = Coalescer::adaptive(64, Duration::from_millis(50)).drain(&rx, Job(1));
        assert_eq!(round.len(), 6);
    }

    #[test]
    fn row_budget_closes_the_round() {
        let (tx, rx) = mpsc::channel();
        for _ in 0..10 {
            tx.send(Job(2)).unwrap();
        }
        let round = Coalescer::adaptive(5, Duration::from_secs(5)).drain(&rx, Job(2));
        // 2 + 2 + 2 = 6 ≥ 5: closed after two extra jobs off the queue.
        assert_eq!(round.len(), 3);
        assert_eq!(rx.try_iter().count(), 8);
    }

    #[test]
    fn lone_request_pays_no_deadline() {
        let (_tx, rx) = mpsc::channel::<Job>();
        let t0 = Instant::now();
        let round = Coalescer::adaptive(64, Duration::from_secs(10)).drain(&rx, Job(1));
        assert_eq!(round.len(), 1);
        // Adaptive rule: no concurrent traffic observed → no waiting.
        assert!(t0.elapsed() < Duration::from_secs(1), "drained immediately");
    }

    #[test]
    fn deadline_window_admits_late_concurrent_jobs() {
        let (tx, rx) = mpsc::channel();
        tx.send(Job(1)).unwrap(); // concurrency signal for the greedy phase
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let _ = tx.send(Job(1));
        });
        let round = Coalescer::adaptive(64, Duration::from_secs(2)).drain(&rx, Job(1));
        sender.join().unwrap();
        assert_eq!(round.len(), 3, "late job joined within the deadline");
    }

    #[test]
    fn deadline_expiry_closes_an_unfilled_round() {
        let (tx, rx) = mpsc::channel();
        tx.send(Job(1)).unwrap();
        let t0 = Instant::now();
        let round = Coalescer::adaptive(64, Duration::from_millis(30)).drain(&rx, Job(1));
        assert_eq!(round.len(), 2);
        let waited = t0.elapsed();
        assert!(
            waited < Duration::from_secs(2),
            "deadline bounded the wait, got {waited:?}"
        );
        drop(tx);
    }

    #[test]
    fn first_job_at_budget_returns_immediately() {
        let (tx, rx) = mpsc::channel();
        tx.send(Job(1)).unwrap();
        let round = Coalescer::adaptive(4, Duration::from_secs(5)).drain(&rx, Job(4));
        assert_eq!(round.len(), 1);
        assert_eq!(rx.try_iter().count(), 1);
    }
}
