//! The adaptive micro-batch coalescer.
//!
//! One joint-prediction protocol round can answer any number of queued
//! queries, but each round pays fixed costs — model dispatch, defense
//! application, and in a real deployment the secure-computation round
//! trip itself. The coalescer drains the server's request queue into one
//! round under two caps: a row budget ([`Coalescer::max_rows`]) and a
//! deadline measured from the round's first request
//! ([`Coalescer::max_delay`]).
//!
//! The policy is *adaptive*: the first job is taken the moment it
//! arrives, everything already queued behind it is grabbed without
//! waiting, and the deadline clock only runs when that greedy grab found
//! concurrent traffic. A lone client therefore never pays the deadline
//! as added latency, while concurrent load naturally fills rounds — the
//! classic serving-stack batching behaviour.
//!
//! The row cap is strict: a job that would overflow the round is
//! *carried* into the next round instead of packed (see
//! [`Coalescer::drain`]), so `rows ≤ max_rows` holds for every round
//! with more than one job and arrival order is preserved across rounds.

use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

/// Anything the coalescer can pack into a round: a queued job knows how
/// many query rows it contributes.
pub trait Coalescible {
    /// Query rows this job adds to the round.
    fn rows(&self) -> usize;
}

/// Queue-draining policy for one prediction round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coalescer {
    /// Close the round once it holds at least this many rows.
    pub max_rows: usize,
    /// Close the round this long after its first request arrived, even
    /// if the row budget is not reached. Only consulted when the greedy
    /// drain found concurrent traffic.
    pub max_delay: Duration,
}

impl Coalescer {
    /// A coalescing policy: up to `max_rows` rows per round, waiting at
    /// most `max_delay` past the first request for the round to fill.
    pub fn adaptive(max_rows: usize, max_delay: Duration) -> Self {
        Coalescer {
            max_rows: max_rows.max(1),
            max_delay,
        }
    }

    /// Coalescing disabled: every request is its own protocol round.
    pub fn passthrough() -> Self {
        Coalescer {
            max_rows: 1,
            max_delay: Duration::ZERO,
        }
    }

    /// `true` when this policy never merges requests.
    pub fn is_passthrough(&self) -> bool {
        self.max_rows <= 1
    }

    /// Drains `rx` into one round starting from `first` (which the
    /// caller already received). Returns the jobs of the round, in
    /// arrival order; never blocks longer than `max_delay`.
    ///
    /// The row cap is *strict*: a job that would push the round past
    /// `max_rows` is not packed — it is parked in `carry`, closes the
    /// round, and must be fed back as the next round's `first` (the
    /// batcher loop does this), so arrival order is preserved across
    /// rounds. The single exception is a lone job whose own row count
    /// exceeds the cap: it forms a round of one, because splitting a
    /// request across protocol rounds would change what the defense
    /// pipeline sees released together. The resulting invariant, which
    /// the property sweep pins: every round satisfies
    /// `rows ≤ max_rows || jobs.len() == 1`.
    ///
    /// `carry` must be `None` on entry; the caller owns the parked job
    /// between rounds.
    pub fn drain<T: Coalescible>(
        &self,
        rx: &Receiver<T>,
        first: T,
        carry: &mut Option<T>,
    ) -> Vec<T> {
        debug_assert!(carry.is_none(), "previous round's carry was not consumed");
        let t0 = Instant::now();
        let mut rows = first.rows();
        let mut jobs = vec![first];
        if rows >= self.max_rows {
            return jobs;
        }
        // Greedy phase: everything already queued joins the round free,
        // up to the row cap.
        while let Ok(job) = rx.try_recv() {
            if rows + job.rows() > self.max_rows {
                *carry = Some(job);
                return jobs;
            }
            rows += job.rows();
            jobs.push(job);
            if rows >= self.max_rows {
                return jobs;
            }
        }
        // Adaptive phase: only wait out the deadline when the greedy
        // grab proved there is concurrent traffic to wait for.
        if jobs.len() > 1 {
            while rows < self.max_rows {
                let Some(remaining) = self.max_delay.checked_sub(t0.elapsed()) else {
                    break;
                };
                match rx.recv_timeout(remaining) {
                    Ok(job) => {
                        if rows + job.rows() > self.max_rows {
                            *carry = Some(job);
                            return jobs;
                        }
                        rows += job.rows();
                        jobs.push(job);
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    struct Job(usize);
    impl Coalescible for Job {
        fn rows(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn passthrough_never_merges() {
        let (tx, rx) = mpsc::channel();
        tx.send(Job(1)).unwrap();
        tx.send(Job(1)).unwrap();
        let c = Coalescer::passthrough();
        assert!(c.is_passthrough());
        let mut carry = None;
        let round = c.drain(&rx, Job(1), &mut carry);
        assert_eq!(round.len(), 1);
        assert!(carry.is_none());
        // The queued jobs are untouched for the next rounds.
        assert_eq!(rx.try_iter().count(), 2);
    }

    #[test]
    fn greedy_drain_takes_everything_queued() {
        let (tx, rx) = mpsc::channel();
        for _ in 0..5 {
            tx.send(Job(1)).unwrap();
        }
        let mut carry = None;
        let round =
            Coalescer::adaptive(64, Duration::from_millis(50)).drain(&rx, Job(1), &mut carry);
        assert_eq!(round.len(), 6);
        assert!(carry.is_none());
    }

    #[test]
    fn row_budget_is_a_strict_cap() {
        let (tx, rx) = mpsc::channel();
        for _ in 0..10 {
            tx.send(Job(2)).unwrap();
        }
        let mut carry = None;
        let round = Coalescer::adaptive(5, Duration::from_secs(5)).drain(&rx, Job(2), &mut carry);
        // 2 + 2 = 4; a third job would make 6 > 5, so it is carried to
        // the next round rather than packed past the cap.
        assert_eq!(round.len(), 2);
        assert_eq!(round.iter().map(Coalescible::rows).sum::<usize>(), 4);
        assert_eq!(carry.take().map(|j| j.rows()), Some(2));
        assert_eq!(rx.try_iter().count(), 8);
    }

    #[test]
    fn oversized_lone_job_still_forms_a_round() {
        let (tx, rx) = mpsc::channel();
        tx.send(Job(1)).unwrap();
        let mut carry = None;
        let round = Coalescer::adaptive(4, Duration::from_secs(5)).drain(&rx, Job(9), &mut carry);
        // A single job above the cap runs alone; nothing else joins it.
        assert_eq!(round.len(), 1);
        assert_eq!(round[0].rows(), 9);
        assert!(carry.is_none());
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn lone_request_pays_no_deadline() {
        let (_tx, rx) = mpsc::channel::<Job>();
        let t0 = Instant::now();
        let mut carry = None;
        let round = Coalescer::adaptive(64, Duration::from_secs(10)).drain(&rx, Job(1), &mut carry);
        assert_eq!(round.len(), 1);
        // Adaptive rule: no concurrent traffic observed → no waiting.
        assert!(t0.elapsed() < Duration::from_secs(1), "drained immediately");
    }

    #[test]
    fn deadline_window_admits_late_concurrent_jobs() {
        let (tx, rx) = mpsc::channel();
        tx.send(Job(1)).unwrap(); // concurrency signal for the greedy phase
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let _ = tx.send(Job(1));
        });
        let mut carry = None;
        let round = Coalescer::adaptive(64, Duration::from_secs(2)).drain(&rx, Job(1), &mut carry);
        sender.join().unwrap();
        assert_eq!(round.len(), 3, "late job joined within the deadline");
    }

    #[test]
    fn deadline_phase_carries_an_overflowing_job() {
        let (tx, rx) = mpsc::channel();
        tx.send(Job(1)).unwrap(); // concurrency signal
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let _ = tx.send(Job(10)); // would overflow the cap of 4
        });
        let mut carry = None;
        let round = Coalescer::adaptive(4, Duration::from_secs(2)).drain(&rx, Job(1), &mut carry);
        sender.join().unwrap();
        assert_eq!(round.len(), 2);
        assert_eq!(carry.map(|j| j.rows()), Some(10));
    }

    #[test]
    fn deadline_expiry_closes_an_unfilled_round() {
        let (tx, rx) = mpsc::channel();
        tx.send(Job(1)).unwrap();
        let t0 = Instant::now();
        let mut carry = None;
        let round =
            Coalescer::adaptive(64, Duration::from_millis(30)).drain(&rx, Job(1), &mut carry);
        assert_eq!(round.len(), 2);
        let waited = t0.elapsed();
        assert!(
            waited < Duration::from_secs(2),
            "deadline bounded the wait, got {waited:?}"
        );
        drop(tx);
    }

    #[test]
    fn first_job_at_budget_returns_immediately() {
        let (tx, rx) = mpsc::channel();
        tx.send(Job(1)).unwrap();
        let mut carry = None;
        let round = Coalescer::adaptive(4, Duration::from_secs(5)).drain(&rx, Job(4), &mut carry);
        assert_eq!(round.len(), 1);
        assert!(carry.is_none());
        assert_eq!(rx.try_iter().count(), 1);
    }
}
