//! The adversary's side of the wire: a blocking client speaking the
//! frame codec, plus the [`fia_core::PredictionOracle`] implementation
//! that lets every attack in the workspace run unchanged against a live
//! endpoint.

use crate::audit::AuditSummary;
use crate::metrics::MetricsReport;
use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, ServerInfo,
    WireError,
};
use fia_core::{OracleError, PredictionOracle, QueryCost, TraceContext};
use fia_linalg::Matrix;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport, protocol violation, or a server-side
/// rejection.
#[derive(Debug)]
pub enum ClientError {
    /// The wire layer failed (socket error, truncation, bad frame).
    Wire(WireError),
    /// The server answered, but with an `Error` response.
    Rejected(String),
    /// The server answered with an unexpected message type.
    Protocol(&'static str),
    /// The server closed the connection mid-conversation.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "transport failure: {e}"),
            ClientError::Rejected(why) => write!(f, "server rejected request: {why}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// A connection to a deployed prediction service, seen the way the
/// paper's adversary sees it: submit queries, receive confidence
/// vectors. One request/response pair is in flight per connection.
///
/// The oracle meters its own campaign: every prediction request updates
/// a [`QueryCost`] tally, including how many rows the server answered
/// from its released-score cache (the `Scores` response carries the
/// count), so attack reports can state what a corpus cost the
/// deployment.
pub struct RemoteOracle {
    stream: TcpStream,
    info: ServerInfo,
    cost: QueryCost,
    /// When set, prediction requests travel as their *traced* wire
    /// variants, carrying this context so the server opens linked
    /// `serve.request` spans.
    trace: Option<TraceContext>,
}

impl RemoteOracle {
    /// Connects and performs the `Info` handshake, so the oracle knows
    /// the deployment's shape before the first query.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut oracle = RemoteOracle {
            stream,
            info: ServerInfo {
                n_samples: 0,
                n_features: 0,
                n_classes: 0,
                party_widths: Vec::new(),
            },
            cost: QueryCost::default(),
            trace: None,
        };
        oracle.info = match oracle.call(&Request::Info)? {
            Response::Info(info) => info,
            Response::Error(why) => return Err(ClientError::Rejected(why)),
            _ => return Err(ClientError::Protocol("Info answered with wrong variant")),
        };
        Ok(oracle)
    }

    /// The deployment facts learned at connect time.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// One request/response round trip.
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let payload = encode_request(req)?;
        write_frame(&mut self.stream, &payload)?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(decode_response(&payload)?),
            None => Err(ClientError::Disconnected),
        }
    }

    /// Unpacks a prediction response and folds it into the cost tally.
    fn expect_scores(&mut self, resp: Response) -> Result<Matrix, ClientError> {
        match resp {
            Response::Scores {
                scores,
                cached_rows,
            } => {
                self.cost.queries += 1;
                self.cost.rows += scores.rows() as u64;
                self.cost.cached_rows += u64::from(cached_rows);
                Ok(scores)
            }
            Response::Error(why) => Err(ClientError::Rejected(why)),
            _ => Err(ClientError::Protocol("predict answered with wrong variant")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Protocol("Ping answered with wrong variant")),
        }
    }

    /// One prediction round over stored sample indices; returns the
    /// released `|indices| × c` confidence matrix. With a trace context
    /// set, the request travels as its traced wire variant — byte-
    /// identical body, plus the 16-byte context.
    pub fn predict_batch(&mut self, indices: &[usize]) -> Result<Matrix, ClientError> {
        let wire_indices: Vec<u32> = indices.iter().map(|&i| i as u32).collect();
        let req = match self.trace {
            Some(ctx) => Request::PredictByIndexTraced(wire_indices, ctx),
            None => Request::PredictByIndex(wire_indices),
        };
        let resp = self.call(&req)?;
        self.expect_scores(resp)
    }

    /// One prediction round over ad-hoc inputs: one `n × d_p` feature
    /// block per party, in party id order.
    pub fn predict_features(&mut self, slices: &[Matrix]) -> Result<Matrix, ClientError> {
        let req = match self.trace {
            Some(ctx) => Request::PredictFeaturesTraced(slices.to_vec(), ctx),
            None => Request::PredictFeatures(slices.to_vec()),
        };
        let resp = self.call(&req)?;
        self.expect_scores(resp)
    }

    /// Declares a stable session tag: the server's audit ledger keys
    /// this connection's traffic under `tag` instead of the ephemeral
    /// `conn-{id}` label (an empty tag reverts to the default).
    pub fn declare_session(&mut self, tag: &str) -> Result<(), ClientError> {
        match self.call(&Request::DeclareSession(tag.to_string()))? {
            Response::SessionAck => Ok(()),
            Response::Error(why) => Err(ClientError::Rejected(why)),
            _ => Err(ClientError::Protocol(
                "DeclareSession answered with wrong variant",
            )),
        }
    }

    /// The server's finished spans as JSONL. Concatenated with a
    /// client-side tracer's JSONL this forms one merged trace: server
    /// span ids live in a disjoint id space and `serve.request` parents
    /// point at client span ids.
    pub fn server_trace_jsonl(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::TraceExport)? {
            Response::TraceJsonl(text) => Ok(text),
            Response::Error(why) => Err(ClientError::Rejected(why)),
            _ => Err(ClientError::Protocol(
                "TraceExport answered with wrong variant",
            )),
        }
    }

    /// The server's per-client audit ledger: counters, window rates and
    /// probe-shape flags for every client it has served.
    pub fn audit_report(&mut self) -> Result<AuditSummary, ClientError> {
        match self.call(&Request::AuditReport)? {
            Response::Audit(summary) => Ok(summary),
            Response::Error(why) => Err(ClientError::Rejected(why)),
            _ => Err(ClientError::Protocol(
                "AuditReport answered with wrong variant",
            )),
        }
    }

    /// What this connection's prediction traffic has cost the deployment
    /// so far (successful requests only).
    pub fn cost(&self) -> QueryCost {
        self.cost
    }

    /// The server's full telemetry surface as Prometheus-style text
    /// exposition — the scrape a monitoring stack would perform.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::MetricsText)? {
            Response::MetricsText(text) => Ok(text),
            Response::Error(why) => Err(ClientError::Rejected(why)),
            _ => Err(ClientError::Protocol(
                "MetricsText answered with wrong variant",
            )),
        }
    }

    /// The server's live metrics snapshot.
    pub fn server_metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            Response::Error(why) => Err(ClientError::Rejected(why)),
            _ => Err(ClientError::Protocol("Metrics answered with wrong variant")),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Protocol(
                "Shutdown answered with wrong variant",
            )),
        }
    }
}

/// The attacks' query surface, over the wire: this is what makes
/// `fia_core::accumulate_batch` / `run_over_oracle` — and therefore ESA,
/// PRA and GRNA — work against a live endpoint.
impl PredictionOracle for RemoteOracle {
    fn n_classes(&self) -> usize {
        self.info.n_classes
    }

    fn n_samples(&self) -> usize {
        self.info.n_samples
    }

    fn confidences(&mut self, indices: &[usize]) -> Result<Matrix, OracleError> {
        self.predict_batch(indices)
            .map_err(|e| OracleError(e.to_string()))
    }

    fn query_cost(&self) -> QueryCost {
        self.cost
    }

    fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.trace = ctx;
    }
}

// ---------------------------------------------------------------------
// Load generation.

/// Closed-loop load-generator configuration: `threads` clients, each
/// issuing `requests_per_thread` synchronous prediction requests of
/// `rows_per_request` stored samples.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub threads: usize,
    /// Requests each client issues before disconnecting.
    pub requests_per_thread: usize,
    /// Stored-sample rows per request.
    pub rows_per_request: usize,
}

/// What a load run achieved.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests completed across all clients.
    pub total_requests: u64,
    /// Query rows answered across all clients.
    pub total_rows: u64,
    /// Wall-clock duration of the run.
    pub elapsed: std::time::Duration,
    /// Aggregate requests per second.
    pub rps: f64,
}

/// Open-loop load-generator configuration: requests *arrive* on a
/// fixed schedule (`arrival_rps` aggregate), independent of how fast
/// the server answers — unlike the closed loop of [`run_load`], where
/// each client waits for its response before sending again and the
/// offered rate silently degenerates to whatever the server sustains.
///
/// The schedule is spread round-robin over `connections` sender
/// connections; each sender has one request in flight, so the
/// generator approximates a true open loop with concurrency bounded by
/// the connection count. A sender that falls behind its schedule fires
/// immediately and the lateness is counted ([`OpenLoadReport::late_sends`]) —
/// a saturated server therefore shows `achieved_rps < offered_rps`
/// *and* a high late count, instead of quietly stretching the
/// inter-arrival gap.
#[derive(Debug, Clone)]
pub struct OpenLoadConfig {
    /// Sender connections the arrival schedule is spread over.
    pub connections: usize,
    /// Aggregate target arrival rate, requests per second.
    pub arrival_rps: f64,
    /// Total requests in the schedule.
    pub total_requests: usize,
    /// Stored-sample rows per request.
    pub rows_per_request: usize,
}

/// What an open-loop run achieved.
#[derive(Debug, Clone)]
pub struct OpenLoadReport {
    /// The configured arrival rate.
    pub offered_rps: f64,
    /// Completed requests per second of wall clock.
    pub achieved_rps: f64,
    /// Requests completed across all senders.
    pub total_requests: u64,
    /// Query rows answered across all senders.
    pub total_rows: u64,
    /// Wall-clock duration of the schedule: the longest driver's
    /// send/receive window, connection setup excluded.
    pub elapsed: std::time::Duration,
    /// Client-observed p50 request latency, microseconds.
    pub p50_latency_us: f64,
    /// Client-observed p99 request latency, microseconds.
    pub p99_latency_us: f64,
    /// Sends that fired behind their scheduled arrival instant.
    pub late_sends: u64,
}

/// One multiplexed sender connection inside an open-loop driver thread.
struct MuxConn {
    stream: std::net::TcpStream,
    /// Request bytes not yet accepted by the kernel.
    out: Vec<u8>,
    out_pos: usize,
    /// Unparsed response bytes.
    inbuf: Vec<u8>,
    /// A request is in flight (one per connection, as before).
    waiting: bool,
    sent_at: std::time::Instant,
    /// Next arrival index this connection owns (global schedule).
    next_k: usize,
    /// When that arrival is due, relative to the schedule epoch.
    due: std::time::Duration,
    /// Interest currently registered with the driver's poller.
    reg: crate::sys::Interest,
}

impl MuxConn {
    fn out_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Still has arrivals to fire or a response outstanding.
    fn active(&self, total: usize) -> bool {
        self.waiting || self.next_k < total
    }
}

/// Drives a fixed-arrival-rate schedule at `addr` and reports achieved
/// throughput and client-observed latency. See [`OpenLoadConfig`] for
/// the open-loop semantics.
///
/// The schedule's `connections` sender sockets are *multiplexed* over a
/// small fixed pool of driver threads (readiness-driven, the same
/// [`crate::sys`] poller the server's reactor uses), so driving 4096
/// connections costs a handful of client threads, not 4096 — connection
/// `c` owns arrivals `k ≡ c (mod connections)`, exactly the schedule
/// the thread-per-connection generator produced.
pub fn run_load_open(
    addr: std::net::SocketAddr,
    cfg: &OpenLoadConfig,
) -> Result<OpenLoadReport, ClientError> {
    assert!(cfg.arrival_rps > 0.0, "arrival rate must be positive");
    let connections = cfg.connections.max(1);
    let interval = std::time::Duration::from_secs_f64(1.0 / cfg.arrival_rps);
    // One blocking handshake learns the deployment shape; the mux
    // sockets skip per-connection Info round trips entirely.
    let n_samples = RemoteOracle::connect(addr)?.info().n_samples.max(1);
    let drivers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8)
        .min(connections)
        .max(1);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(drivers));
    let mut workers = Vec::with_capacity(drivers);
    for driver in 0..drivers {
        let barrier = std::sync::Arc::clone(&barrier);
        let cfg = cfg.clone();
        workers.push(std::thread::spawn(
            move || -> Result<(u64, u64, Vec<u64>, std::time::Duration), ClientError> {
                // Connect this driver's share before the barrier, so the
                // schedule epoch starts with every socket established.
                // Errors still reach the barrier — a failed driver must
                // never strand the rest.
                let conns = open_mux_conns(addr, driver, drivers, &cfg);
                barrier.wait();
                let conns = conns?;
                drive_open_loop(conns, &cfg, interval, n_samples)
            },
        ));
    }
    let mut total_rows = 0u64;
    let mut late_sends = 0u64;
    let mut latencies = Vec::with_capacity(cfg.total_requests);
    // The schedule window is the slowest driver's: all drivers share
    // one epoch (the barrier), so the max is the wall clock of the
    // schedule itself, uninflated by connection setup.
    let mut elapsed = std::time::Duration::from_nanos(1);
    let mut first_err = None;
    for worker in workers {
        match worker.join().expect("open-loop driver panicked") {
            Ok((rows, late, lat, driver_elapsed)) => {
                total_rows += rows;
                late_sends += late;
                latencies.extend(lat);
                elapsed = elapsed.max(driver_elapsed);
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let (p50, p99) = crate::metrics::percentiles(&latencies);
    Ok(OpenLoadReport {
        offered_rps: cfg.arrival_rps,
        achieved_rps: latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        total_requests: latencies.len() as u64,
        total_rows,
        elapsed,
        p50_latency_us: p50,
        p99_latency_us: p99,
        late_sends,
    })
}

/// Connects the sender sockets driver `driver` owns (global connection
/// ids `c ≡ driver (mod drivers)`), nonblocking and nodelay.
fn open_mux_conns(
    addr: std::net::SocketAddr,
    driver: usize,
    drivers: usize,
    cfg: &OpenLoadConfig,
) -> Result<Vec<MuxConn>, ClientError> {
    let connections = cfg.connections.max(1);
    let mut conns = Vec::new();
    let mut c = driver;
    while c < connections {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        conns.push(MuxConn {
            stream,
            out: Vec::new(),
            out_pos: 0,
            inbuf: Vec::new(),
            waiting: false,
            sent_at: std::time::Instant::now(),
            // Connection c owns arrivals k ≡ c (mod connections).
            next_k: c,
            due: std::time::Duration::ZERO,
            reg: crate::sys::Interest::READ,
        });
        c += drivers;
    }
    Ok(conns)
}

/// One driver's event loop: fire each connection's arrivals on schedule,
/// collect responses, count lateness the way the blocking generator did
/// (evaluated once per arrival, at the moment its sender went idle).
fn drive_open_loop(
    mut conns: Vec<MuxConn>,
    cfg: &OpenLoadConfig,
    interval: std::time::Duration,
    n_samples: usize,
) -> Result<(u64, u64, Vec<u64>, std::time::Duration), ClientError> {
    use crate::sys::{fd_of, Event, Interest, Poller};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    use std::io::Read;

    let total = cfg.total_requests;
    let stride = cfg.connections.max(1);
    let mut poller = Poller::new()?;
    // Idle connections with a pending arrival, ordered by due time.
    // Firing pops exactly what is due — never an O(connections) scan,
    // which at 4096 sockets would dominate the very schedule this
    // generator exists to keep.
    let mut idle: BinaryHeap<Reverse<(std::time::Duration, usize)>> = BinaryHeap::new();
    for (i, conn) in conns.iter_mut().enumerate() {
        poller.register(fd_of(&conn.stream), i as u64, Interest::READ)?;
        if conn.next_k < total {
            conn.due = interval.mul_f64(conn.next_k as f64);
            idle.push(Reverse((conn.due, i)));
        }
    }

    let start = std::time::Instant::now();
    let mut outstanding = 0usize;
    let mut rows_done = 0u64;
    let mut late = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; 16 * 1024];

    while outstanding > 0 || !idle.is_empty() {
        // Fire every arrival that has come due, in schedule order.
        let now = start.elapsed();
        while let Some(&Reverse((due, i))) = idle.peek() {
            if due > now {
                break;
            }
            idle.pop();
            let conn = &mut conns[i];
            let k = conn.next_k;
            let indices: Vec<u32> = (0..cfg.rows_per_request)
                .map(|r| ((k * cfg.rows_per_request + r) % n_samples) as u32)
                .collect();
            let payload = encode_request(&Request::PredictByIndex(indices))?;
            conn.out.clear();
            conn.out_pos = 0;
            conn.out
                .extend_from_slice(&(payload.len() as u32).to_le_bytes());
            conn.out.extend_from_slice(&payload);
            conn.sent_at = std::time::Instant::now();
            conn.waiting = true;
            outstanding += 1;
            flush_mux(&mut conns[i], &mut poller, i as u64)?;
        }
        if outstanding == 0 && idle.is_empty() {
            break;
        }

        let timeout = match idle.peek() {
            Some(&Reverse((due, _))) => due
                .saturating_sub(start.elapsed())
                .max(std::time::Duration::from_micros(100)),
            None => std::time::Duration::from_millis(20),
        };
        events.clear();
        poller.wait(&mut events, Some(timeout))?;

        for ev in std::mem::take(&mut events) {
            let i = ev.token as usize;
            let conn = &mut conns[i];
            if !conn.active(total) {
                continue;
            }
            if ev.closed {
                return Err(ClientError::Disconnected);
            }
            if ev.writable && conn.out_pending() {
                flush_mux(&mut conns[i], &mut poller, ev.token)?;
            }
            let conn = &mut conns[i];
            if !ev.readable {
                continue;
            }
            // Drain the socket, then every complete response frame.
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => return Err(ClientError::Disconnected),
                    Ok(n) => {
                        conn.inbuf.extend_from_slice(&scratch[..n]);
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            while conn.inbuf.len() >= 4 {
                let len = u32::from_le_bytes(conn.inbuf[..4].try_into().expect("4 bytes")) as usize;
                if conn.inbuf.len() < 4 + len {
                    break;
                }
                let frame: Vec<u8> = conn.inbuf[4..4 + len].to_vec();
                conn.inbuf.drain(..4 + len);
                match decode_response(&frame)? {
                    Response::Scores { scores, .. } => {
                        latencies.push(conn.sent_at.elapsed().as_micros() as u64);
                        rows_done += scores.rows() as u64;
                    }
                    Response::Error(why) => return Err(ClientError::Rejected(why)),
                    _ => return Err(ClientError::Protocol("predict answered with wrong variant")),
                }
                // The sender is idle again: schedule its next arrival
                // and judge lateness *now*, exactly when the blocking
                // generator would have evaluated its sleep.
                conn.waiting = false;
                outstanding -= 1;
                conn.next_k += stride;
                if conn.next_k < total {
                    conn.due = interval.mul_f64(conn.next_k as f64);
                    if start.elapsed() > conn.due {
                        late += 1;
                    }
                    idle.push(Reverse((conn.due, i)));
                }
            }
        }
    }
    Ok((rows_done, late, latencies, start.elapsed()))
}

/// Writes a mux connection's buffered request bytes, switching write
/// interest on while the kernel pushes back and off once drained.
fn flush_mux(
    conn: &mut MuxConn,
    poller: &mut crate::sys::Poller,
    token: u64,
) -> Result<(), ClientError> {
    use crate::sys::{fd_of, Interest};
    use std::io::Write;
    while conn.out_pending() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Err(ClientError::Disconnected),
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let desired = Interest {
        read: true,
        write: conn.out_pending(),
    };
    if desired != conn.reg {
        poller.modify(fd_of(&conn.stream), token, desired)?;
        conn.reg = desired;
    }
    Ok(())
}

/// Drives `cfg` worth of traffic at `addr` and reports the achieved
/// throughput. Clients start together (barrier) and each issues
/// synchronous requests over its own connection — a closed loop, so
/// aggregate throughput is what the *server* sustains, not an open-loop
/// arrival rate (see [`run_load_open`] for that).
pub fn run_load(addr: std::net::SocketAddr, cfg: &LoadConfig) -> Result<LoadReport, ClientError> {
    let threads = cfg.threads.max(1);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads));
    let mut workers = Vec::with_capacity(threads);
    let t0 = std::time::Instant::now();
    for worker in 0..threads {
        let barrier = std::sync::Arc::clone(&barrier);
        let cfg = cfg.clone();
        workers.push(std::thread::spawn(move || -> Result<u64, ClientError> {
            // Reach the barrier whether or not the connection succeeded —
            // a worker that bailed before waiting would leave the others
            // blocked on it forever.
            let connected = RemoteOracle::connect(addr);
            barrier.wait();
            let mut oracle = connected?;
            let n = oracle.info().n_samples.max(1);
            let mut rows_done = 0u64;
            for r in 0..cfg.requests_per_thread {
                let base = worker * cfg.requests_per_thread + r;
                let indices: Vec<usize> = (0..cfg.rows_per_request)
                    .map(|k| (base * cfg.rows_per_request + k) % n)
                    .collect();
                let scores = oracle.predict_batch(&indices)?;
                rows_done += scores.rows() as u64;
            }
            Ok(rows_done)
        }));
    }
    let mut total_rows = 0u64;
    for worker in workers {
        total_rows += worker.join().expect("load worker panicked")?;
    }
    let elapsed = t0.elapsed();
    let total_requests = (threads * cfg.requests_per_thread) as u64;
    Ok(LoadReport {
        total_requests,
        total_rows,
        elapsed,
        rps: total_requests as f64 / elapsed.as_secs_f64().max(1e-9),
    })
}
