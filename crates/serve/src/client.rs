//! The adversary's side of the wire: a blocking client speaking the
//! frame codec, plus the [`fia_core::PredictionOracle`] implementation
//! that lets every attack in the workspace run unchanged against a live
//! endpoint.

use crate::metrics::MetricsReport;
use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, ServerInfo,
    WireError,
};
use fia_core::{OracleError, PredictionOracle, QueryCost};
use fia_linalg::Matrix;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport, protocol violation, or a server-side
/// rejection.
#[derive(Debug)]
pub enum ClientError {
    /// The wire layer failed (socket error, truncation, bad frame).
    Wire(WireError),
    /// The server answered, but with an `Error` response.
    Rejected(String),
    /// The server answered with an unexpected message type.
    Protocol(&'static str),
    /// The server closed the connection mid-conversation.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "transport failure: {e}"),
            ClientError::Rejected(why) => write!(f, "server rejected request: {why}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// A connection to a deployed prediction service, seen the way the
/// paper's adversary sees it: submit queries, receive confidence
/// vectors. One request/response pair is in flight per connection.
///
/// The oracle meters its own campaign: every prediction request updates
/// a [`QueryCost`] tally, including how many rows the server answered
/// from its released-score cache (the `Scores` response carries the
/// count), so attack reports can state what a corpus cost the
/// deployment.
pub struct RemoteOracle {
    stream: TcpStream,
    info: ServerInfo,
    cost: QueryCost,
}

impl RemoteOracle {
    /// Connects and performs the `Info` handshake, so the oracle knows
    /// the deployment's shape before the first query.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut oracle = RemoteOracle {
            stream,
            info: ServerInfo {
                n_samples: 0,
                n_features: 0,
                n_classes: 0,
                party_widths: Vec::new(),
            },
            cost: QueryCost::default(),
        };
        oracle.info = match oracle.call(&Request::Info)? {
            Response::Info(info) => info,
            Response::Error(why) => return Err(ClientError::Rejected(why)),
            _ => return Err(ClientError::Protocol("Info answered with wrong variant")),
        };
        Ok(oracle)
    }

    /// The deployment facts learned at connect time.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// One request/response round trip.
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let payload = encode_request(req)?;
        write_frame(&mut self.stream, &payload)?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(decode_response(&payload)?),
            None => Err(ClientError::Disconnected),
        }
    }

    /// Unpacks a prediction response and folds it into the cost tally.
    fn expect_scores(&mut self, resp: Response) -> Result<Matrix, ClientError> {
        match resp {
            Response::Scores {
                scores,
                cached_rows,
            } => {
                self.cost.queries += 1;
                self.cost.rows += scores.rows() as u64;
                self.cost.cached_rows += u64::from(cached_rows);
                Ok(scores)
            }
            Response::Error(why) => Err(ClientError::Rejected(why)),
            _ => Err(ClientError::Protocol("predict answered with wrong variant")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Protocol("Ping answered with wrong variant")),
        }
    }

    /// One prediction round over stored sample indices; returns the
    /// released `|indices| × c` confidence matrix.
    pub fn predict_batch(&mut self, indices: &[usize]) -> Result<Matrix, ClientError> {
        let wire_indices: Vec<u32> = indices.iter().map(|&i| i as u32).collect();
        let resp = self.call(&Request::PredictByIndex(wire_indices))?;
        self.expect_scores(resp)
    }

    /// One prediction round over ad-hoc inputs: one `n × d_p` feature
    /// block per party, in party id order.
    pub fn predict_features(&mut self, slices: &[Matrix]) -> Result<Matrix, ClientError> {
        let resp = self.call(&Request::PredictFeatures(slices.to_vec()))?;
        self.expect_scores(resp)
    }

    /// What this connection's prediction traffic has cost the deployment
    /// so far (successful requests only).
    pub fn cost(&self) -> QueryCost {
        self.cost
    }

    /// The server's full telemetry surface as Prometheus-style text
    /// exposition — the scrape a monitoring stack would perform.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::MetricsText)? {
            Response::MetricsText(text) => Ok(text),
            Response::Error(why) => Err(ClientError::Rejected(why)),
            _ => Err(ClientError::Protocol(
                "MetricsText answered with wrong variant",
            )),
        }
    }

    /// The server's live metrics snapshot.
    pub fn server_metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            Response::Error(why) => Err(ClientError::Rejected(why)),
            _ => Err(ClientError::Protocol("Metrics answered with wrong variant")),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Protocol(
                "Shutdown answered with wrong variant",
            )),
        }
    }
}

/// The attacks' query surface, over the wire: this is what makes
/// `fia_core::accumulate_batch` / `run_over_oracle` — and therefore ESA,
/// PRA and GRNA — work against a live endpoint.
impl PredictionOracle for RemoteOracle {
    fn n_classes(&self) -> usize {
        self.info.n_classes
    }

    fn n_samples(&self) -> usize {
        self.info.n_samples
    }

    fn confidences(&mut self, indices: &[usize]) -> Result<Matrix, OracleError> {
        self.predict_batch(indices)
            .map_err(|e| OracleError(e.to_string()))
    }

    fn query_cost(&self) -> QueryCost {
        self.cost
    }
}

// ---------------------------------------------------------------------
// Load generation.

/// Closed-loop load-generator configuration: `threads` clients, each
/// issuing `requests_per_thread` synchronous prediction requests of
/// `rows_per_request` stored samples.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub threads: usize,
    /// Requests each client issues before disconnecting.
    pub requests_per_thread: usize,
    /// Stored-sample rows per request.
    pub rows_per_request: usize,
}

/// What a load run achieved.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests completed across all clients.
    pub total_requests: u64,
    /// Query rows answered across all clients.
    pub total_rows: u64,
    /// Wall-clock duration of the run.
    pub elapsed: std::time::Duration,
    /// Aggregate requests per second.
    pub rps: f64,
}

/// Open-loop load-generator configuration: requests *arrive* on a
/// fixed schedule (`arrival_rps` aggregate), independent of how fast
/// the server answers — unlike the closed loop of [`run_load`], where
/// each client waits for its response before sending again and the
/// offered rate silently degenerates to whatever the server sustains.
///
/// The schedule is spread round-robin over `connections` sender
/// connections; each sender has one request in flight, so the
/// generator approximates a true open loop with concurrency bounded by
/// the connection count. A sender that falls behind its schedule fires
/// immediately and the lateness is counted ([`OpenLoadReport::late_sends`]) —
/// a saturated server therefore shows `achieved_rps < offered_rps`
/// *and* a high late count, instead of quietly stretching the
/// inter-arrival gap.
#[derive(Debug, Clone)]
pub struct OpenLoadConfig {
    /// Sender connections the arrival schedule is spread over.
    pub connections: usize,
    /// Aggregate target arrival rate, requests per second.
    pub arrival_rps: f64,
    /// Total requests in the schedule.
    pub total_requests: usize,
    /// Stored-sample rows per request.
    pub rows_per_request: usize,
}

/// What an open-loop run achieved.
#[derive(Debug, Clone)]
pub struct OpenLoadReport {
    /// The configured arrival rate.
    pub offered_rps: f64,
    /// Completed requests per second of wall clock.
    pub achieved_rps: f64,
    /// Requests completed across all senders.
    pub total_requests: u64,
    /// Query rows answered across all senders.
    pub total_rows: u64,
    /// Wall-clock duration of the run.
    pub elapsed: std::time::Duration,
    /// Client-observed p50 request latency, microseconds.
    pub p50_latency_us: f64,
    /// Client-observed p99 request latency, microseconds.
    pub p99_latency_us: f64,
    /// Sends that fired behind their scheduled arrival instant.
    pub late_sends: u64,
}

/// Drives a fixed-arrival-rate schedule at `addr` and reports achieved
/// throughput and client-observed latency. See [`OpenLoadConfig`] for
/// the open-loop semantics.
pub fn run_load_open(
    addr: std::net::SocketAddr,
    cfg: &OpenLoadConfig,
) -> Result<OpenLoadReport, ClientError> {
    assert!(cfg.arrival_rps > 0.0, "arrival rate must be positive");
    let connections = cfg.connections.max(1);
    let interval = std::time::Duration::from_secs_f64(1.0 / cfg.arrival_rps);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(connections));
    let mut workers = Vec::with_capacity(connections);
    let t0 = std::time::Instant::now();
    for worker in 0..connections {
        let barrier = std::sync::Arc::clone(&barrier);
        let cfg = cfg.clone();
        workers.push(std::thread::spawn(
            move || -> Result<(u64, u64, Vec<u64>), ClientError> {
                // Reach the barrier whether or not the connection
                // succeeded, so a failed worker never strands the rest.
                let connected = RemoteOracle::connect(addr);
                barrier.wait();
                let mut oracle = connected?;
                let n = oracle.info().n_samples.max(1);
                let start = std::time::Instant::now();
                let mut rows_done = 0u64;
                let mut late = 0u64;
                let mut latencies = Vec::new();
                // Arrival k fires at start + k·interval; this sender
                // owns arrivals k ≡ worker (mod connections).
                let mut k = worker;
                while k < cfg.total_requests {
                    let due = interval.mul_f64(k as f64);
                    match due.checked_sub(start.elapsed()) {
                        Some(wait) => {
                            if !wait.is_zero() {
                                std::thread::sleep(wait);
                            }
                        }
                        None => late += 1,
                    }
                    let indices: Vec<usize> = (0..cfg.rows_per_request)
                        .map(|r| (k * cfg.rows_per_request + r) % n)
                        .collect();
                    let sent = std::time::Instant::now();
                    let scores = oracle.predict_batch(&indices)?;
                    latencies.push(sent.elapsed().as_micros() as u64);
                    rows_done += scores.rows() as u64;
                    k += connections;
                }
                Ok((rows_done, late, latencies))
            },
        ));
    }
    let mut total_rows = 0u64;
    let mut late_sends = 0u64;
    let mut latencies = Vec::with_capacity(cfg.total_requests);
    for worker in workers {
        let (rows, late, lat) = worker.join().expect("open-loop worker panicked")?;
        total_rows += rows;
        late_sends += late;
        latencies.extend(lat);
    }
    let elapsed = t0.elapsed();
    let (p50, p99) = crate::metrics::percentiles(&latencies);
    Ok(OpenLoadReport {
        offered_rps: cfg.arrival_rps,
        achieved_rps: latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        total_requests: latencies.len() as u64,
        total_rows,
        elapsed,
        p50_latency_us: p50,
        p99_latency_us: p99,
        late_sends,
    })
}

/// Drives `cfg` worth of traffic at `addr` and reports the achieved
/// throughput. Clients start together (barrier) and each issues
/// synchronous requests over its own connection — a closed loop, so
/// aggregate throughput is what the *server* sustains, not an open-loop
/// arrival rate (see [`run_load_open`] for that).
pub fn run_load(addr: std::net::SocketAddr, cfg: &LoadConfig) -> Result<LoadReport, ClientError> {
    let threads = cfg.threads.max(1);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads));
    let mut workers = Vec::with_capacity(threads);
    let t0 = std::time::Instant::now();
    for worker in 0..threads {
        let barrier = std::sync::Arc::clone(&barrier);
        let cfg = cfg.clone();
        workers.push(std::thread::spawn(move || -> Result<u64, ClientError> {
            // Reach the barrier whether or not the connection succeeded —
            // a worker that bailed before waiting would leave the others
            // blocked on it forever.
            let connected = RemoteOracle::connect(addr);
            barrier.wait();
            let mut oracle = connected?;
            let n = oracle.info().n_samples.max(1);
            let mut rows_done = 0u64;
            for r in 0..cfg.requests_per_thread {
                let base = worker * cfg.requests_per_thread + r;
                let indices: Vec<usize> = (0..cfg.rows_per_request)
                    .map(|k| (base * cfg.rows_per_request + k) % n)
                    .collect();
                let scores = oracle.predict_batch(&indices)?;
                rows_done += scores.rows() as u64;
            }
            Ok(rows_done)
        }));
    }
    let mut total_rows = 0u64;
    for worker in workers {
        total_rows += worker.join().expect("load worker panicked")?;
    }
    let elapsed = t0.elapsed();
    let total_requests = (threads * cfg.requests_per_thread) as u64;
    Ok(LoadReport {
        total_requests,
        total_rows,
        elapsed,
        rps: total_requests as f64 / elapsed.as_secs_f64().max(1e-9),
    })
}
