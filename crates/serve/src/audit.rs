//! Per-client leakage audit ledger.
//!
//! The paper's adversary is visible to a deployment only as a *query
//! stream*; the auditing literature (arxiv 2507.02376) frames measuring
//! that stream as the defender's job. This module is the serving side of
//! that job: the reactor feeds every successfully answered prediction
//! request into an [`AuditLedger`] keyed by client (connection id, or a
//! client-declared session tag), which maintains
//!
//! * a per-client [`fia_core::QueryCost`] that exactly mirrors what the
//!   client's own meter records — queries, rows, cache-released rows —
//!   pinned equal by the campaign parity test;
//! * probe-shape statistics: distinct stored rows touched (coverage of
//!   the aligned sample space), repeated rows (cache-exploiting
//!   re-queries), ad-hoc feature-query counts, and a sliding-window
//!   query rate;
//! * Prometheus series per client
//!   (`fia_serve_client_{queries,rows,distinct_rows,repeat_rows,feature_queries}_total{client=}`
//!   and `fia_serve_client_window_rate_rps{client=}`), so a scrape of
//!   the existing `MetricsText` op shows per-client spend.
//!
//! The authoritative ledger counts are plain integers owned by the
//! single-threaded reactor — no locks, and deliberately *not* subject to
//! the telemetry recording kill-switch, so audit parity holds even when
//! instrument recording is priced out. The registry instruments are a
//! mirror for the scrape surface.

use fia_core::QueryCost;
use fia_telemetry::{Counter, Gauge, Registry};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sliding window over which the per-client query rate is measured.
pub const RATE_WINDOW: Duration = Duration::from_secs(10);

/// Cap on retained per-client query timestamps (bounds ledger memory
/// against a hot client; the rate saturates rather than growing state).
const WINDOW_CAP: usize = 8192;

/// A client whose distinct stored-row coverage reaches this fraction of
/// the aligned sample space is flagged `high-coverage` — systematic
/// sweeps of the sample space are the accumulation phase of the paper's
/// attacks.
pub const COVERAGE_FLAG_FRAC: f64 = 0.5;

/// A client whose repeated-row fraction reaches this value is flagged
/// `repeat-heavy` — re-querying rows exploits bit-identical cache
/// re-release (noise cannot be averaged away, but release is free).
pub const REPEAT_FLAG_FRAC: f64 = 0.5;

/// Minimum ad-hoc feature queries before the `feature-burst` flag can
/// fire (together with feature queries being the majority of traffic) —
/// structured ad-hoc probes are how GRNA-style attacks explore inputs.
pub const FEATURE_BURST_MIN: u64 = 16;

/// One client's ledger entry, as reported over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientAudit {
    /// Client label: the declared session tag, or `conn-{id}`.
    pub client: String,
    /// Prediction requests answered successfully.
    pub queries: u64,
    /// Total confidence rows released.
    pub rows: u64,
    /// Rows released from the score cache.
    pub cached_rows: u64,
    /// Distinct stored sample indices this client has queried.
    pub distinct_rows: u64,
    /// Stored-row requests beyond each row's first query.
    pub repeat_rows: u64,
    /// Ad-hoc feature-block prediction requests.
    pub feature_queries: u64,
    /// Queries per second over the trailing [`RATE_WINDOW`].
    pub window_rate_rps: f64,
    /// Probe-shape flags (`high-coverage`, `repeat-heavy`,
    /// `feature-burst`), sorted.
    pub flags: Vec<String>,
}

impl ClientAudit {
    /// The serving side's view of this client's [`QueryCost`] — the
    /// number the client's own meter must agree with.
    pub fn cost(&self) -> QueryCost {
        QueryCost {
            queries: self.queries,
            rows: self.rows,
            cached_rows: self.cached_rows,
        }
    }

    /// Fraction of the aligned sample space this client has touched.
    pub fn coverage(&self, n_samples: usize) -> f64 {
        if n_samples == 0 {
            0.0
        } else {
            self.distinct_rows as f64 / n_samples as f64
        }
    }

    /// Fraction of released rows that were repeats of earlier queries.
    pub fn repeat_ratio(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.repeat_rows as f64 / self.rows as f64
        }
    }
}

/// Point-in-time audit of every client the server has answered —
/// what the `AuditReport` wire op returns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditSummary {
    /// Aligned sample count of the deployment (the coverage denominator).
    pub n_samples: u64,
    /// Per-client entries, sorted by label for deterministic output.
    pub clients: Vec<ClientAudit>,
}

impl AuditSummary {
    /// Looks up one client's entry by label.
    pub fn client(&self, label: &str) -> Option<&ClientAudit> {
        self.clients.iter().find(|c| c.client == label)
    }
}

/// Per-client mirror instruments on the server registry.
struct ClientInstruments {
    queries: Arc<Counter>,
    rows: Arc<Counter>,
    distinct_rows: Arc<Counter>,
    repeat_rows: Arc<Counter>,
    feature_queries: Arc<Counter>,
    window_rate: Arc<Gauge>,
}

/// One client's live ledger state.
struct ClientLedger {
    queries: u64,
    rows: u64,
    cached_rows: u64,
    repeat_rows: u64,
    feature_queries: u64,
    /// Distinct stored sample indices queried so far.
    seen: HashSet<u32>,
    /// Completion times of recent queries, oldest first.
    recent: VecDeque<Instant>,
    instruments: ClientInstruments,
}

impl ClientLedger {
    fn new(label: &str, registry: &Registry) -> Self {
        let labels = &[("client", label)];
        ClientLedger {
            queries: 0,
            rows: 0,
            cached_rows: 0,
            repeat_rows: 0,
            feature_queries: 0,
            seen: HashSet::new(),
            recent: VecDeque::new(),
            instruments: ClientInstruments {
                queries: registry.counter_with(
                    "fia_serve_client_queries_total",
                    "Prediction requests answered, per client.",
                    labels,
                ),
                rows: registry.counter_with(
                    "fia_serve_client_rows_total",
                    "Confidence rows released, per client.",
                    labels,
                ),
                distinct_rows: registry.counter_with(
                    "fia_serve_client_distinct_rows_total",
                    "Distinct stored sample indices queried, per client.",
                    labels,
                ),
                repeat_rows: registry.counter_with(
                    "fia_serve_client_repeat_rows_total",
                    "Stored-row requests beyond each row's first query, per client.",
                    labels,
                ),
                feature_queries: registry.counter_with(
                    "fia_serve_client_feature_queries_total",
                    "Ad-hoc feature-block prediction requests, per client.",
                    labels,
                ),
                window_rate: registry.gauge_with(
                    "fia_serve_client_window_rate_rps",
                    "Queries per second over the trailing rate window (set at audit time).",
                    labels,
                ),
            },
        }
    }

    fn note_query(&mut self, rows: u64, cached_rows: u64, now: Instant) {
        self.queries += 1;
        self.rows += rows;
        self.cached_rows += cached_rows;
        self.instruments.queries.inc();
        self.instruments.rows.add(rows);
        if self.recent.len() == WINDOW_CAP {
            self.recent.pop_front();
        }
        self.recent.push_back(now);
    }

    fn prune_window(&mut self, now: Instant) {
        while let Some(&front) = self.recent.front() {
            if now.duration_since(front) > RATE_WINDOW {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    fn flags(&self, n_samples: u64) -> Vec<String> {
        let mut flags = Vec::new();
        if self.feature_queries >= FEATURE_BURST_MIN && 2 * self.feature_queries >= self.queries {
            flags.push("feature-burst".to_string());
        }
        if n_samples > 0 && self.seen.len() as f64 >= COVERAGE_FLAG_FRAC * n_samples as f64 {
            flags.push("high-coverage".to_string());
        }
        if self.rows > 0 && self.repeat_rows as f64 >= REPEAT_FLAG_FRAC * self.rows as f64 {
            flags.push("repeat-heavy".to_string());
        }
        flags
    }
}

/// The reactor's per-client audit ledger. Single-threaded by design: the
/// reactor owns it and records on the same thread that stages responses,
/// so successful-response accounting is exact without any locking.
pub struct AuditLedger {
    registry: Arc<Registry>,
    /// Keyed by client label; `BTreeMap` so summaries are sorted.
    clients: BTreeMap<String, ClientLedger>,
}

impl AuditLedger {
    /// A fresh ledger whose mirror instruments register on `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        AuditLedger {
            registry,
            clients: BTreeMap::new(),
        }
    }

    fn entry(&mut self, label: &str) -> &mut ClientLedger {
        if !self.clients.contains_key(label) {
            self.clients
                .insert(label.to_string(), ClientLedger::new(label, &self.registry));
        }
        self.clients.get_mut(label).expect("just inserted")
    }

    /// Records one successfully answered stored-index request:
    /// `indices` as queried (duplicates included), `cached_rows` of them
    /// released from the score cache.
    pub fn record_stored(&mut self, label: &str, indices: &[u32], cached_rows: u64, now: Instant) {
        let c = self.entry(label);
        let mut new_distinct = 0u64;
        let mut repeats = 0u64;
        for &i in indices {
            if c.seen.insert(i) {
                new_distinct += 1;
            } else {
                repeats += 1;
            }
        }
        c.repeat_rows += repeats;
        c.instruments.distinct_rows.add(new_distinct);
        c.instruments.repeat_rows.add(repeats);
        c.note_query(indices.len() as u64, cached_rows, now);
    }

    /// Records one successfully answered ad-hoc feature request of
    /// `rows` prediction rows.
    pub fn record_features(&mut self, label: &str, rows: u64, now: Instant) {
        let c = self.entry(label);
        c.feature_queries += 1;
        c.instruments.feature_queries.inc();
        c.note_query(rows, 0, now);
    }

    /// Builds the point-in-time summary (and refreshes the per-client
    /// rate gauges). `n_samples` is the deployment's aligned sample
    /// count — the coverage denominator.
    pub fn summary(&mut self, n_samples: u64, now: Instant) -> AuditSummary {
        let clients = self
            .clients
            .iter_mut()
            .map(|(label, c)| {
                c.prune_window(now);
                let rate = c.recent.len() as f64 / RATE_WINDOW.as_secs_f64();
                c.instruments.window_rate.set(rate);
                ClientAudit {
                    client: label.clone(),
                    queries: c.queries,
                    rows: c.rows,
                    cached_rows: c.cached_rows,
                    distinct_rows: c.seen.len() as u64,
                    repeat_rows: c.repeat_rows,
                    feature_queries: c.feature_queries,
                    window_rate_rps: rate,
                    flags: c.flags(n_samples),
                }
            })
            .collect();
        AuditSummary { n_samples, clients }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> AuditLedger {
        AuditLedger::new(Arc::new(Registry::new()))
    }

    #[test]
    fn cost_parity_counts_queries_rows_and_cached_rows() {
        let mut l = ledger();
        let t = Instant::now();
        l.record_stored("a", &[0, 1, 2], 0, t);
        l.record_stored("a", &[1, 2, 3], 3, t);
        l.record_stored("a", &[], 0, t); // empty batch still a query
        let s = l.summary(10, t);
        let a = s.client("a").unwrap();
        assert_eq!(
            a.cost(),
            QueryCost {
                queries: 3,
                rows: 6,
                cached_rows: 3,
            }
        );
        assert_eq!(a.distinct_rows, 4);
        assert_eq!(a.repeat_rows, 2);
    }

    #[test]
    fn feature_queries_count_rows_but_not_coverage() {
        let mut l = ledger();
        let t = Instant::now();
        l.record_features("f", 5, t);
        l.record_features("f", 0, t);
        let s = l.summary(10, t);
        let f = s.client("f").unwrap();
        assert_eq!(f.queries, 2);
        assert_eq!(f.rows, 5);
        assert_eq!(f.feature_queries, 2);
        assert_eq!(f.distinct_rows, 0);
        assert_eq!(f.coverage(10), 0.0);
    }

    #[test]
    fn clients_are_isolated_and_sorted() {
        let mut l = ledger();
        let t = Instant::now();
        l.record_stored("zeta", &[0], 0, t);
        l.record_stored("alpha", &[1, 2], 0, t);
        let s = l.summary(4, t);
        assert_eq!(s.clients.len(), 2);
        assert_eq!(s.clients[0].client, "alpha");
        assert_eq!(s.clients[1].client, "zeta");
        assert_eq!(s.client("alpha").unwrap().rows, 2);
        assert_eq!(s.client("zeta").unwrap().rows, 1);
        assert!(s.client("missing").is_none());
    }

    #[test]
    fn high_coverage_flag_fires_at_half_the_sample_space() {
        let mut l = ledger();
        let t = Instant::now();
        l.record_stored("probe", &[0, 1, 2, 3, 4], 0, t);
        let s = l.summary(10, t);
        let p = s.client("probe").unwrap();
        assert!((p.coverage(10) - 0.5).abs() < 1e-12);
        assert!(p.flags.contains(&"high-coverage".to_string()));
        // A narrow client is not flagged.
        let mut l2 = ledger();
        l2.record_stored("casual", &[0], 0, t);
        assert!(l2.summary(10, t).client("casual").unwrap().flags.is_empty());
    }

    #[test]
    fn repeat_heavy_flag_fires_on_cache_exploiting_requeries() {
        let mut l = ledger();
        let t = Instant::now();
        l.record_stored("r", &[0, 1], 0, t);
        l.record_stored("r", &[0, 1], 2, t);
        l.record_stored("r", &[0, 1], 2, t);
        let s = l.summary(100, t);
        let r = s.client("r").unwrap();
        assert!((r.repeat_ratio() - 4.0 / 6.0).abs() < 1e-12);
        assert!(r.flags.contains(&"repeat-heavy".to_string()));
        assert!(!r.flags.contains(&"high-coverage".to_string()));
    }

    #[test]
    fn feature_burst_flag_needs_volume_and_majority() {
        let mut l = ledger();
        let t = Instant::now();
        for _ in 0..FEATURE_BURST_MIN {
            l.record_features("g", 2, t);
        }
        let s = l.summary(10, t);
        assert!(s
            .client("g")
            .unwrap()
            .flags
            .contains(&"feature-burst".to_string()));
        // Majority stored-index traffic suppresses the flag.
        let mut l2 = ledger();
        for _ in 0..FEATURE_BURST_MIN {
            l2.record_features("h", 2, t);
        }
        for _ in 0..(3 * FEATURE_BURST_MIN) {
            l2.record_stored("h", &[0], 0, t);
        }
        assert!(!l2
            .summary(10, t)
            .client("h")
            .unwrap()
            .flags
            .contains(&"feature-burst".to_string()));
    }

    #[test]
    fn window_rate_counts_only_recent_queries() {
        let mut l = ledger();
        let t0 = Instant::now();
        l.record_stored("w", &[0], 0, t0);
        l.record_stored("w", &[1], 0, t0);
        // At t0 both are in-window.
        let rate_now = l.summary(10, t0).client("w").unwrap().window_rate_rps;
        assert!((rate_now - 2.0 / RATE_WINDOW.as_secs_f64()).abs() < 1e-9);
        // Far in the future both have aged out.
        let later = t0 + RATE_WINDOW + Duration::from_secs(1);
        let rate_later = l.summary(10, later).client("w").unwrap().window_rate_rps;
        assert_eq!(rate_later, 0.0);
        // Counters are cumulative, unaffected by the window.
        assert_eq!(l.summary(10, later).client("w").unwrap().queries, 2);
    }

    #[test]
    fn registry_mirror_exposes_per_client_series() {
        let registry = Arc::new(Registry::new());
        let mut l = AuditLedger::new(registry.clone());
        let t = Instant::now();
        l.record_stored("tag-1", &[0, 0, 1], 1, t);
        l.record_features("tag-1", 4, t);
        l.summary(10, t);
        let snap = registry.snapshot();
        let get = |name: &str| match snap.get(name, &[("client", "tag-1")]).unwrap().value {
            fia_telemetry::InstrumentValue::Counter(v) => v,
            ref other => panic!("expected counter, got {other:?}"),
        };
        assert_eq!(get("fia_serve_client_queries_total"), 2);
        assert_eq!(get("fia_serve_client_rows_total"), 7);
        assert_eq!(get("fia_serve_client_distinct_rows_total"), 2);
        assert_eq!(get("fia_serve_client_repeat_rows_total"), 1);
        assert_eq!(get("fia_serve_client_feature_queries_total"), 1);
        assert!(snap
            .get("fia_serve_client_window_rate_rps", &[("client", "tag-1")])
            .is_some());
    }

    #[test]
    fn window_memory_is_bounded() {
        let mut l = ledger();
        let t = Instant::now();
        for _ in 0..(WINDOW_CAP + 100) {
            l.record_stored("hot", &[0], 0, t);
        }
        assert!(l.clients.get("hot").unwrap().recent.len() <= WINDOW_CAP);
        assert_eq!(
            l.summary(1, t).client("hot").unwrap().queries,
            (WINDOW_CAP + 100) as u64
        );
    }
}
