//! The replica pool: N backend clones of the deployment, each owning a
//! private job queue, [`Coalescer`] and batcher thread.
//!
//! PR 2's server ran *one* batcher over *one* model — one joint
//! prediction round in flight at a time, however many clients queued.
//! The pool keeps that faithfulness *per replica* (each replica is a
//! deployment of the same `m` parties running one secure computation at
//! a time) while letting N replicas run rounds concurrently, which is
//! how a real serving stack scales past one backend: replicate the
//! read-only model state, shard the traffic.
//!
//! Replication is an `Arc` bump, not a copy — [`fia_vfl::VflSystem`]'s
//! `Clone` shares the model, partition and party tables — so a 4-replica
//! pool holds the stored prediction set in memory once.
//!
//! Each replica's batcher applies the [`DefensePipeline`] once per round
//! at its own score-release boundary, exactly as the single-batcher
//! server did: sharding changes *where* a round runs, never *what* is
//! released.

use crate::coalesce::{Coalescer, Coalescible};
use crate::metrics::ServerMetrics;
use crate::sys::Waker;
use fia_defense::{DefensePipeline, ScoreDefense};
use fia_linalg::Matrix;
use fia_models::PredictProba;
use fia_telemetry::Tracer;
use fia_vfl::VflSystem;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked server threads re-check the stop flag.
pub(crate) const POLL_TICK: Duration = Duration::from_millis(20);

/// One queued prediction job: the round input plus where its released
/// rows travel back to.
pub(crate) struct Job {
    pub input: RoundInput,
    pub rows: usize,
    pub reply: ReplyTo,
    /// Server-side span id of the dispatch that enqueued this job, when
    /// the originating request carried a trace context. The batcher's
    /// `serve.round` span links to it, joining the round into the
    /// request's trace.
    pub trace_parent: Option<u64>,
    /// When the job entered the queue — prices the coalescer's batch
    /// wait into the round span.
    pub enqueued: Instant,
}

/// Where a job's released rows go.
pub(crate) enum ReplyTo {
    /// A blocking caller waiting on an mpsc receiver (unit tests and
    /// any in-process dispatch path).
    #[cfg_attr(not(test), allow(dead_code))]
    Channel(Sender<Result<Matrix, String>>),
    /// The reactor's completion queue: the batcher pushes the result
    /// and nudges the event loop awake.
    Reactor(ReactorReply),
}

impl ReplyTo {
    /// Delivers the job's outcome to whoever is waiting.
    pub fn send(self, result: Result<Matrix, String>) {
        match self {
            ReplyTo::Channel(tx) => {
                let _ = tx.send(result);
            }
            ReplyTo::Reactor(mut r) => r.deliver(result),
        }
    }
}

/// One sub-round's route back to the reactor. If the job is dropped
/// unanswered — a queue torn down mid-shutdown, a send that never
/// happened — `Drop` delivers an error completion, so a connection can
/// never wait forever on a reply that isn't coming.
pub(crate) struct ReactorReply {
    tx: Sender<Completion>,
    waker: Waker,
    pending_id: u64,
    part: usize,
    sent: bool,
}

impl ReactorReply {
    pub fn new(tx: Sender<Completion>, waker: Waker, pending_id: u64, part: usize) -> Self {
        ReactorReply {
            tx,
            waker,
            pending_id,
            part,
            sent: false,
        }
    }

    fn deliver(&mut self, result: Result<Matrix, String>) {
        if self.sent {
            return;
        }
        self.sent = true;
        let _ = self.tx.send(Completion {
            pending_id: self.pending_id,
            part: self.part,
            result,
        });
        self.waker.wake();
    }
}

impl Drop for ReactorReply {
    fn drop(&mut self) {
        self.deliver(Err("server is shutting down".to_string()));
    }
}

/// A finished sub-round flowing back to the reactor's event loop.
pub(crate) struct Completion {
    pub pending_id: u64,
    pub part: usize,
    pub result: Result<Matrix, String>,
}

pub(crate) enum RoundInput {
    /// Stored-sample queries (already range-checked).
    Stored(Vec<usize>),
    /// Ad-hoc per-party feature blocks (already shape-checked).
    AdHoc(Vec<Matrix>),
}

impl Coalescible for Job {
    fn rows(&self) -> usize {
        self.rows
    }
}

/// The dispatcher-facing half of one replica: where to enqueue jobs and
/// how many rows are already waiting there.
struct ReplicaQueue {
    tx: Sender<Job>,
    depth_rows: Arc<AtomicUsize>,
}

/// Dispatcher-side handle to the pool's queues. The batcher threads'
/// join handles live separately in the server handle (the pool is owned
/// by the shared state, which every connection thread holds).
pub(crate) struct ReplicaPool {
    queues: Vec<ReplicaQueue>,
}

impl ReplicaPool {
    /// Spawns `replicas` batcher threads over cheap clones of `system`
    /// and returns the queue handles plus the join handles.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn<M>(
        system: &Arc<VflSystem<M>>,
        defense: &Arc<DefensePipeline>,
        metrics: &Arc<ServerMetrics>,
        stop: &Arc<AtomicBool>,
        tracer: &Tracer,
        coalescer: Coalescer,
        round_cost: Duration,
        replicas: usize,
    ) -> (ReplicaPool, Vec<JoinHandle<()>>)
    where
        M: PredictProba + Send + Sync + 'static,
    {
        let replicas = replicas.max(1);
        let mut queues = Vec::with_capacity(replicas);
        let mut handles = Vec::with_capacity(replicas);
        for id in 0..replicas {
            let (tx, rx) = mpsc::channel::<Job>();
            let depth_rows = Arc::new(AtomicUsize::new(0));
            let partition = system.partition();
            let party_widths = (0..partition.n_parties())
                .map(|p| partition.features_of(fia_vfl::PartyId(p)).len())
                .collect();
            let ctx = ReplicaCtx {
                id,
                // A replica, not a second copy: shares the read-only
                // deployment state behind the caller's Arc.
                system: system.as_ref().clone(),
                defense: Arc::clone(defense),
                metrics: Arc::clone(metrics),
                stop: Arc::clone(stop),
                depth_rows: Arc::clone(&depth_rows),
                party_widths,
                coalescer,
                round_cost,
                tracer: tracer.clone(),
            };
            handles.push(std::thread::spawn(move || batcher_loop(&ctx, &rx)));
            queues.push(ReplicaQueue { tx, depth_rows });
        }
        (ReplicaPool { queues }, handles)
    }

    /// Number of replicas in the pool.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues `job` on `replica`'s queue, accounting its rows into the
    /// replica's load gauge. Fails only during shutdown.
    pub fn send(&self, replica: usize, job: Job) -> Result<(), String> {
        let q = &self.queues[replica];
        let rows = job.rows;
        match q.tx.send(job) {
            Ok(()) => {
                q.depth_rows.fetch_add(rows, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => Err("server is shutting down".to_string()),
        }
    }

    /// The replica with the fewest queued rows right now (ties broken by
    /// lowest id) — the target for ad-hoc feature queries, which have no
    /// shard affinity.
    pub fn least_loaded(&self) -> usize {
        self.queues
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| q.depth_rows.load(Ordering::Relaxed))
            .map(|(i, _)| i)
            .expect("pool has at least one replica")
    }

    /// Rows currently queued on `replica` (test/diagnostic visibility).
    #[cfg(test)]
    pub fn queued_rows(&self, replica: usize) -> usize {
        self.queues[replica].depth_rows.load(Ordering::Relaxed)
    }
}

/// Everything one replica's batcher thread owns.
struct ReplicaCtx<M: PredictProba> {
    id: usize,
    system: VflSystem<M>,
    defense: Arc<DefensePipeline>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    depth_rows: Arc<AtomicUsize>,
    /// Per-party feature widths, precomputed once (round hot path).
    party_widths: Vec<usize>,
    coalescer: Coalescer,
    round_cost: Duration,
    tracer: Tracer,
}

fn batcher_loop<M: PredictProba>(ctx: &ReplicaCtx<M>, rx: &Receiver<Job>) {
    // A job the coalescer refused to pack past the row cap; it becomes
    // the next round's first job, preserving arrival order.
    let mut pending: Option<Job> = None;
    loop {
        let first = match pending.take() {
            Some(job) => job,
            None => match rx.recv_timeout(POLL_TICK) {
                Ok(job) => job,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if ctx.stop.load(Ordering::SeqCst) {
                        // Drain stragglers so no connection hangs, then exit.
                        while let Ok(job) = rx.try_recv() {
                            run_round(ctx, vec![job]);
                        }
                        return;
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            },
        };
        let round = ctx.coalescer.drain(rx, first, &mut pending);
        run_round(ctx, round);
    }
}

/// Executes one joint-prediction round over the coalesced jobs.
fn run_round<M: PredictProba>(ctx: &ReplicaCtx<M>, jobs: Vec<Job>) {
    let total: usize = jobs.iter().map(|j| j.rows).sum();

    // A round is traced when any coalesced job carried a trace context:
    // the span links to the *first* traced job's dispatch span (one
    // parent is enough to join the client and server streams; a round
    // may serve many requests) and prices that job's queue wait.
    let round_span = jobs
        .iter()
        .find_map(|j| j.trace_parent.map(|p| (p, j.enqueued)))
        .map(|(parent, enqueued)| {
            let s = ctx.tracer.root_with_parent("serve.round", parent);
            s.record_u64("replica", ctx.id as u64);
            s.record_u64("jobs", jobs.len() as u64);
            s.record_u64("rows", total as u64);
            s.record_u64("batch_wait_us", enqueued.elapsed().as_micros() as u64);
            s
        });

    // Assemble each party's contribution for the whole round, consuming
    // the jobs so ad-hoc blocks are moved, not cloned.
    let mut slices: Vec<Matrix> = ctx
        .party_widths
        .iter()
        .map(|&w| Matrix::zeros(total, w))
        .collect();
    let mut replies = Vec::with_capacity(jobs.len());
    let mut offset = 0;
    for job in jobs {
        let blocks: Vec<Matrix> = match job.input {
            RoundInput::Stored(indices) => ctx.system.party_slices(&indices),
            RoundInput::AdHoc(blocks) => blocks,
        };
        for (slice, block) in slices.iter_mut().zip(&blocks) {
            for r in 0..job.rows {
                slice.row_mut(offset + r).copy_from_slice(block.row(r));
            }
        }
        offset += job.rows;
        replies.push((job.rows, job.reply));
    }

    // The simulated secure-computation round trip: paid once per round,
    // however many queries the round answers.
    if ctx.round_cost > Duration::ZERO {
        std::thread::sleep(ctx.round_cost);
    }

    let scores = {
        let _predict = round_span.as_ref().map(|s| s.child("serve.predict"));
        ctx.system.predict_features_batch(&slices)
    };
    // Defense at the score-release boundary: one batch hook per round,
    // exactly where a deployment would apply it.
    let released = {
        let _defense = round_span.as_ref().map(|s| s.child("serve.defense"));
        ctx.defense.defend_batch(&scores)
    };
    ctx.metrics.record_round(ctx.id, total);

    let mut offset = 0;
    for (job_rows, reply) in replies {
        let rows: Vec<usize> = (offset..offset + job_rows).collect();
        let part = released
            .select_rows(&rows)
            .expect("round rows were assembled in range");
        offset += job_rows;
        reply.send(Ok(part));
    }
    // Every job reached this queue through `ReplicaPool::send`, which
    // accounted its rows, so the gauge cannot underflow.
    ctx.depth_rows.fetch_sub(total, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_models::LogisticRegression;
    use fia_vfl::VerticalPartition;

    fn toy_system() -> Arc<VflSystem<LogisticRegression>> {
        let w = Matrix::from_fn(4, 3, |i, j| 0.1 * (i as f64 + 1.0) - 0.05 * j as f64);
        let model = LogisticRegression::from_parameters(w, vec![0.0, 0.1, -0.1], 3);
        let partition = VerticalPartition::contiguous(&[2, 2]);
        let global = Matrix::from_fn(6, 4, |i, j| ((i + 2 * j) % 5) as f64 * 0.2);
        Arc::new(VflSystem::from_global(model, partition, &global))
    }

    fn spawn_pool(
        replicas: usize,
        stop: &Arc<AtomicBool>,
    ) -> (ReplicaPool, Vec<JoinHandle<()>>, Arc<ServerMetrics>, Tracer) {
        let metrics = Arc::new(ServerMetrics::with_replicas(replicas));
        let tracer = Tracer::new();
        let (pool, handles) = ReplicaPool::spawn(
            &toy_system(),
            &Arc::new(DefensePipeline::new()),
            &metrics,
            stop,
            &tracer,
            Coalescer::adaptive(16, Duration::from_micros(100)),
            Duration::ZERO,
            replicas,
        );
        (pool, handles, metrics, tracer)
    }

    fn job(input: RoundInput, rows: usize, reply: ReplyTo) -> Job {
        Job {
            input,
            rows,
            reply,
            trace_parent: None,
            enqueued: Instant::now(),
        }
    }

    fn shutdown(stop: &Arc<AtomicBool>, handles: Vec<JoinHandle<()>>) {
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().expect("batcher thread panicked");
        }
    }

    #[test]
    fn each_replica_answers_its_own_queue() {
        let stop = Arc::new(AtomicBool::new(false));
        let (pool, handles, metrics, _) = spawn_pool(3, &stop);
        let system = toy_system();
        let mut receivers = Vec::new();
        for replica in 0..3 {
            let (tx, rx) = mpsc::channel();
            pool.send(
                replica,
                job(
                    RoundInput::Stored(vec![replica, replica + 1]),
                    2,
                    ReplyTo::Channel(tx),
                ),
            )
            .expect("send");
            receivers.push((replica, rx));
        }
        for (replica, rx) in receivers {
            let scores = rx.recv().expect("reply").expect("round ok");
            assert_eq!(scores, system.predict_batch(&[replica, replica + 1]));
        }
        let r = metrics.report();
        assert_eq!(r.replica_rounds, vec![1, 1, 1]);
        assert_eq!(r.replica_rows, vec![2, 2, 2]);
        shutdown(&stop, handles);
    }

    #[test]
    fn least_loaded_prefers_the_empty_queue() {
        let stop = Arc::new(AtomicBool::new(true)); // batchers idle out fast
        let (pool, handles, _metrics, _) = spawn_pool(2, &stop);
        // Gauge accounting is what least_loaded reads; simulate load on
        // replica 0 directly.
        pool.queues[0].depth_rows.store(10, Ordering::Relaxed);
        assert_eq!(pool.least_loaded(), 1);
        pool.queues[1].depth_rows.store(20, Ordering::Relaxed);
        assert_eq!(pool.least_loaded(), 0);
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(pool.queued_rows(0), 10);
    }

    #[test]
    fn queued_jobs_are_answered_before_shutdown() {
        let stop = Arc::new(AtomicBool::new(false));
        let (pool, handles, _metrics, _) = spawn_pool(1, &stop);
        let mut rxs = Vec::new();
        for i in 0..5 {
            let (tx, rx) = mpsc::channel();
            pool.send(0, job(RoundInput::Stored(vec![i]), 1, ReplyTo::Channel(tx)))
                .expect("send");
            rxs.push(rx);
        }
        shutdown(&stop, handles);
        for rx in rxs {
            assert!(rx.recv().expect("answered before exit").is_ok());
        }
    }

    #[test]
    fn traced_jobs_open_a_round_span_linked_to_the_dispatch() {
        let stop = Arc::new(AtomicBool::new(false));
        let (pool, handles, _metrics, tracer) = spawn_pool(1, &stop);
        let (tx, rx) = mpsc::channel();
        pool.send(
            0,
            Job {
                input: RoundInput::Stored(vec![0, 1]),
                rows: 2,
                reply: ReplyTo::Channel(tx),
                trace_parent: Some(77),
                enqueued: Instant::now(),
            },
        )
        .expect("send");
        rx.recv().expect("reply").expect("round ok");
        // The round span finishes when run_round returns, a hair after
        // the reply lands — wait for it rather than racing the batcher.
        let deadline = Instant::now() + Duration::from_secs(5);
        let round = loop {
            let recs = tracer.records();
            if let Some(r) = recs.iter().find(|r| r.name == "serve.round") {
                break r.clone();
            }
            assert!(Instant::now() < deadline, "no serve.round span appeared");
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(round.parent, Some(77), "round links to the dispatch span");
        let recs = tracer.records();
        for child in ["serve.predict", "serve.defense"] {
            let c = recs
                .iter()
                .find(|r| r.name == child)
                .unwrap_or_else(|| panic!("missing {child} span"));
            assert_eq!(c.parent, Some(round.id));
        }
        shutdown(&stop, handles);
    }

    #[test]
    fn untraced_rounds_record_no_spans() {
        let stop = Arc::new(AtomicBool::new(false));
        let (pool, handles, _metrics, tracer) = spawn_pool(1, &stop);
        let (tx, rx) = mpsc::channel();
        pool.send(0, job(RoundInput::Stored(vec![0]), 1, ReplyTo::Channel(tx)))
            .expect("send");
        rx.recv().expect("reply").expect("round ok");
        shutdown(&stop, handles);
        assert!(tracer.records().is_empty(), "legacy traffic costs no spans");
    }
}
