#![warn(missing_docs)]

//! # fia-serve — the deployed prediction boundary
//!
//! The paper's adversary is not handed a `VflSystem` — it *queries a
//! deployed prediction API* and accumulates `(x_adv, v)` pairs from what
//! the API releases. This crate models that boundary as a real network
//! service, std-only (`std::net` + threads + channels):
//!
//! * [`wire`] — a length-prefixed binary codec whose matrices travel as
//!   raw IEEE-754 bits, so over-the-wire attack replays reproduce
//!   in-process results to the last ulp.
//! * [`Coalescer`] — adaptive micro-batch coalescing: queued requests
//!   drain into one joint-prediction round when a row budget or a
//!   deadline is hit, amortizing the per-round protocol cost a real VFL
//!   deployment pays.
//! * [`PredictionServer`] — the multi-threaded TCP service: acceptor +
//!   per-connection threads + one batcher owning the deployment, with
//!   the [`fia_defense::DefensePipeline`] applied once per round at the
//!   score-release boundary, graceful shutdown, and live
//!   [`ServerMetrics`] (throughput, p50/p99 latency, batch fill).
//! * [`RemoteOracle`] — the client half: it implements
//!   [`fia_core::PredictionOracle`], so ESA, PRA and GRNA run unchanged
//!   against a live endpoint via `fia_core::accumulate_batch` /
//!   `run_over_oracle`. [`run_load`] drives closed-loop benchmark
//!   traffic at a server.
//!
//! Servers in tests and examples bind port `0` (ephemeral) and read the
//! real address back from [`ServerHandle::addr`], keeping parallel test
//! runs collision-free.
//!
//! This is the seam later scaling work (sharding, caching, multi-backend
//! dispatch) plugs into: everything behind the wire codec can change
//! without touching a client.

mod client;
mod coalesce;
mod metrics;
mod server;
pub mod wire;

pub use client::{run_load, ClientError, LoadConfig, LoadReport, RemoteOracle};
pub use coalesce::{Coalescer, Coalescible};
pub use metrics::{MetricsReport, ServerMetrics};
pub use server::{PredictionServer, ServeConfig, ServerHandle};
pub use wire::{ServerInfo, WireError};
