#![warn(missing_docs)]

//! # fia-serve — the deployed prediction boundary
//!
//! The paper's adversary is not handed a `VflSystem` — it *queries a
//! deployed prediction API* and accumulates `(x_adv, v)` pairs from what
//! the API releases. This crate models that boundary as a real network
//! service, std-only (`std::net` + threads + channels):
//!
//! * [`wire`] — a length-prefixed binary codec whose matrices travel as
//!   raw IEEE-754 bits, so over-the-wire attack replays reproduce
//!   in-process results to the last ulp.
//! * [`Coalescer`] — adaptive micro-batch coalescing: queued requests
//!   drain into one joint-prediction round when a row budget or a
//!   deadline is hit, amortizing the per-round protocol cost a real VFL
//!   deployment pays.
//! * [`PredictionServer`] — the TCP service: a single *reactor* thread
//!   (nonblocking sockets multiplexed through an in-tree `epoll` shim,
//!   with a portable `poll` fallback selectable via `FIA_FORCE_POLL=1`)
//!   owns the listener and every client connection — incremental frame
//!   assembly, classified accept-error backoff, in-order response
//!   writes — and feeds a *replica pool* of batchers
//!   ([`ServeConfig::replicas`]), each owning a cheap clone of the
//!   deployment, with the [`fia_defense::DefensePipeline`] applied once
//!   per round at each replica's score-release boundary, graceful
//!   shutdown, and live [`ServerMetrics`] (throughput, p50/p99 latency,
//!   per-replica batch fill, cache hit rate, connection gauges). Four
//!   thousand idle clients cost four thousand fds, not four thousand
//!   threads.
//! * [`ShardMap`] — consistent contiguous row-range sharding of the
//!   stored prediction set across the replicas: stored-index queries
//!   route by shard, ad-hoc feature queries by least-loaded replica.
//! * [`ScoreCache`] — the bounded, seeded released-score cache
//!   ([`ServeConfig::cache_capacity`]). It sits strictly *after* the
//!   defense pipeline: what it stores is what crossed the release
//!   boundary, and a re-queried row is re-released bit-identically —
//!   repetition gives the adversary nothing fresh to average over,
//!   and costs the deployment no joint round.
//! * [`RemoteOracle`] — the client half: it implements
//!   [`fia_core::PredictionOracle`], so ESA, PRA and GRNA run unchanged
//!   against a live endpoint via `fia_core::accumulate_batch` /
//!   `run_over_oracle`, and it meters its campaign's
//!   [`fia_core::QueryCost`] (including server-cached rows). [`run_load`]
//!   drives closed-loop benchmark traffic at a server; [`run_load_open`]
//!   drives a fixed-arrival-rate (open-loop) schedule.
//!
//! Servers in tests and examples bind port `0` (ephemeral) and read the
//! real address back from [`ServerHandle::addr`], keeping parallel test
//! runs collision-free.
//!
//! Everything above the wire codec is behind [`PredictionServer::spawn`]:
//! pool, dispatch and cache landed without changing a client.

pub mod audit;
mod cache;
mod client;
mod coalesce;
mod dispatch;
mod metrics;
mod pool;
mod reactor;
mod server;
pub mod sys;
pub mod wire;

pub use audit::{AuditLedger, AuditSummary, ClientAudit};
pub use cache::ScoreCache;
pub use client::{
    run_load, run_load_open, ClientError, LoadConfig, LoadReport, OpenLoadConfig, OpenLoadReport,
    RemoteOracle,
};
pub use coalesce::{Coalescer, Coalescible};
pub use dispatch::ShardMap;
pub use metrics::{MetricsReport, ServerMetrics};
pub use server::{PredictionServer, ServeConfig, ServerHandle, SERVER_SPAN_ID_BASE};
pub use wire::{JobState, JobStatusInfo, ServerInfo, WireError};
