//! The TCP prediction service.
//!
//! Thread layout:
//!
//! * a single *reactor* thread ([`crate::reactor`]) owns the listener
//!   and every client socket: nonblocking accept, incremental frame
//!   assembly, request validation, and in-order response writes all run
//!   on readiness events from the [`crate::sys`] poller (`epoll`, or
//!   `poll` under `FIA_FORCE_POLL=1`) — thousands of connections on one
//!   thread;
//! * a [`ReplicaPool`] of N *batcher* threads, each owning a cheap
//!   replica of the deployment: stored-index traffic is routed by shard
//!   of the stored prediction set, ad-hoc feature traffic by least
//!   loaded replica, and each batcher drains its queue through a
//!   [`Coalescer`](crate::Coalescer) into joint-prediction rounds with
//!   the [`DefensePipeline`] applied once per round at the score-release
//!   boundary.
//!
//! One round in flight *per replica* keeps the faithfulness of the
//! modelled deployment (the `m` parties run one secure computation at a
//! time per backend) while scaling throughput with the replica count.
//! [`ServeConfig::round_cost`] makes each round's fixed protocol
//! overhead explicit; the optional released-score cache
//! ([`ServeConfig::cache_capacity`]) answers repeated stored-index
//! queries without paying it again — and, deliberately, re-releases the
//! first-released bytes so repetition leaks nothing fresh.
//!
//! Shutdown is graceful: a stop flag flips and the waker nudges the
//! reactor, which immediately closes the listener (new connects are
//! refused), stops reading, lets every batcher answer the jobs still
//! queued, flushes buffered responses, and exits; the handle then joins
//! the reactor and the batchers.

use crate::cache::ScoreCache;
use crate::coalesce::Coalescer;
use crate::dispatch::{Dispatcher, ShardMap};
use crate::metrics::{MetricsReport, ServerMetrics};
use crate::pool::ReplicaPool;
use crate::reactor::Reactor;
use crate::sys::Waker;
use crate::wire::ServerInfo;
use fia_defense::DefensePipeline;
use fia_models::PredictProba;
use fia_telemetry::Tracer;
use fia_vfl::{PartyId, VflSystem};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; use port `0` for an ephemeral port (tests and
    /// examples should, so parallel runs never collide).
    pub bind: String,
    /// Backend replicas: clones of the deployment, each with its own
    /// coalescer and batcher thread. The stored prediction set is
    /// range-sharded across them (`1` reproduces PR 2's single-batcher
    /// server exactly).
    pub replicas: usize,
    /// Row budget per coalesced round.
    pub batch_cap: usize,
    /// Deadline past a round's first request (see
    /// [`Coalescer`](crate::Coalescer)).
    pub batch_deadline: Duration,
    /// `false` turns the coalescer off: every request is its own round.
    pub coalesce: bool,
    /// Released-score cache capacity in rows; `0` disables caching.
    /// The cache stores post-defense released rows keyed by stored
    /// sample index and re-releases them bit-identically.
    pub cache_capacity: usize,
    /// Seed for the cache's eviction choices (reproducible experiments).
    pub cache_seed: u64,
    /// Simulated fixed cost of one secure joint-prediction round. The
    /// in-tree deployment evaluates the model in the clear, so the
    /// per-round protocol overhead a real VFL serving stack pays
    /// (secure aggregation, HE, party round trips) would be invisible;
    /// setting this reinstates it. `Duration::ZERO` for tests.
    pub round_cost: Duration,
    /// Per-client audit ledger ([`crate::AuditLedger`]): query/row/
    /// distinct-row counters, sliding-window rates and probe-shape flags
    /// keyed by connection (or declared session tag). `false` removes
    /// the ledger entirely — the bench's overhead-pricing knob.
    pub audit: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_string(),
            replicas: 1,
            batch_cap: 64,
            batch_deadline: Duration::from_micros(500),
            coalesce: true,
            cache_capacity: 0,
            cache_seed: 0x5C0_7E5,
            round_cost: Duration::ZERO,
            audit: true,
        }
    }
}

impl ServeConfig {
    /// The coalescing policy this config describes.
    fn coalescer(&self) -> Coalescer {
        if self.coalesce {
            Coalescer::adaptive(self.batch_cap, self.batch_deadline)
        } else {
            Coalescer::passthrough()
        }
    }
}

/// State shared by the reactor and the server handle. Deliberately not
/// generic over the model type: the generic deployment lives inside the
/// pool's batcher threads, so connection handling stays monomorphic.
pub(crate) struct Shared {
    pub(crate) dispatcher: Dispatcher,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) info: ServerInfo,
    /// Server-side span tracer. Its id space starts at `1 << 32` so a
    /// merged client+server trace never collides span ids (client
    /// tracers start at 1), which is what lets cross-process parent
    /// links resolve unambiguously.
    pub(crate) tracer: Tracer,
    /// Whether the reactor keeps a per-client [`crate::AuditLedger`].
    pub(crate) audit: bool,
}

/// Where the server-side span id space starts (see [`Shared::tracer`]):
/// server span ids are `>= SERVER_SPAN_ID_BASE`, client span ids below
/// it, so a merged trace tells the two processes apart by id alone.
pub const SERVER_SPAN_ID_BASE: u64 = 1 << 32;

/// The prediction service; [`PredictionServer::spawn`] is its only
/// entry point.
pub struct PredictionServer;

impl PredictionServer {
    /// Binds `config.bind`, spawns the server threads (one reactor + one
    /// batcher per replica), and returns a handle carrying the bound
    /// address (resolve ephemeral ports from it). The deployment and the
    /// defense pipeline are shared, not consumed — the caller keeps its
    /// `Arc` clones, which is what lets tests compare over-the-wire
    /// results against in-process runs of the *same* system.
    pub fn spawn<M>(
        system: Arc<VflSystem<M>>,
        defense: Arc<DefensePipeline>,
        config: ServeConfig,
    ) -> std::io::Result<ServerHandle>
    where
        M: PredictProba + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let partition = system.partition();
        let info = ServerInfo {
            n_samples: system.n_samples(),
            n_features: partition.n_features(),
            n_classes: system.model().n_classes(),
            party_widths: (0..partition.n_parties())
                .map(|p| partition.features_of(PartyId(p)).len())
                .collect(),
        };

        let replicas = config.replicas.max(1);
        let metrics = Arc::new(ServerMetrics::with_replicas(replicas));
        let stop = Arc::new(AtomicBool::new(false));
        let tracer = Tracer::with_id_base(SERVER_SPAN_ID_BASE);
        let (pool, batchers) = ReplicaPool::spawn(
            &system,
            &defense,
            &metrics,
            &stop,
            &tracer,
            config.coalescer(),
            config.round_cost,
            replicas,
        );
        let cache = (config.cache_capacity > 0)
            .then(|| ScoreCache::new(config.cache_capacity, config.cache_seed));
        let dispatcher = Dispatcher::new(
            pool,
            ShardMap::new(info.n_samples, replicas),
            cache,
            Arc::clone(&metrics),
            info.n_classes,
        );

        let shared = Arc::new(Shared {
            dispatcher,
            metrics: Arc::clone(&metrics),
            stop: Arc::clone(&stop),
            info,
            tracer: tracer.clone(),
            audit: config.audit,
        });

        let (reactor, waker) = Reactor::new(listener, shared)?;
        let reactor = std::thread::Builder::new()
            .name("fia-serve-reactor".to_string())
            .spawn(move || reactor.run())?;

        Ok(ServerHandle {
            addr,
            stop,
            metrics,
            tracer,
            waker,
            reactor: Some(reactor),
            batchers,
        })
    }
}

/// A running server: its bound address, live metrics, and the shutdown
/// switch. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    tracer: Tracer,
    waker: Waker,
    reactor: Option<JoinHandle<()>>,
    batchers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address — with an ephemeral-port bind this is where the
    /// kernel actually put the server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server's live metrics.
    pub fn metrics(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Prometheus-style text exposition of this server's telemetry (the
    /// same text the `MetricsText` wire op returns).
    pub fn metrics_text(&self) -> String {
        self.metrics.exposition()
    }

    /// Switches this server's telemetry recording on/off — the serve
    /// bench's overhead-pricing knob.
    pub fn set_telemetry_recording(&self, on: bool) {
        self.metrics.set_recording(on);
    }

    /// Finished server-side spans as JSONL (the same text the
    /// `TraceExport` wire op returns). Server span ids start at
    /// `1 << 32`, so concatenating this with a client tracer's JSONL
    /// yields a merged trace with no id collisions.
    pub fn trace_jsonl(&self) -> String {
        self.tracer.to_jsonl()
    }

    /// Stops accepting, lets in-flight rounds finish, answers everything
    /// queued, and joins every server thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The reactor may be parked in poller.wait with no traffic due
        // for a whole tick: the waker makes shutdown prompt, not
        // tick-quantized.
        self.waker.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        for h in std::mem::take(&mut self.batchers) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}
