//! The multi-threaded TCP prediction service.
//!
//! Thread layout:
//!
//! * an *acceptor* polls the listener and spawns one thread per
//!   connection;
//! * *connection* threads frame-decode requests, validate them, and
//!   enqueue prediction jobs;
//! * a single *batcher* thread owns the deployment: it drains the job
//!   queue through the [`Coalescer`] into joint-prediction rounds
//!   ([`VflSystem::predict_features_batch`]), applies the
//!   [`DefensePipeline`] once per round at the score-release boundary,
//!   and routes each job's rows back to its connection.
//!
//! One batcher means one protocol round in flight at a time — faithful
//! to the deployment being modelled, where the `m` parties jointly run
//! one secure computation per round. [`ServeConfig::round_cost`] makes
//! that round's fixed overhead explicit: the in-the-clear simulation
//! pays almost nothing per round, while the real protocol (secure
//! aggregation / HE) pays a latency in the hundreds of microseconds to
//! milliseconds; benches reinstate it to measure what micro-batch
//! coalescing buys at the served-prediction boundary.
//!
//! Shutdown is graceful: a stop flag flips, the acceptor exits on its
//! next poll, connection threads notice within one read-timeout tick,
//! and the batcher answers every job still queued before exiting.

use crate::coalesce::{Coalescer, Coalescible};
use crate::metrics::{MetricsReport, ServerMetrics};
use crate::wire::{
    decode_request, encode_response, write_frame, Request, Response, ServerInfo, WireError,
};
use fia_defense::{DefensePipeline, ScoreDefense};
use fia_linalg::Matrix;
use fia_models::PredictProba;
use fia_vfl::{PartyId, VflSystem};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; use port `0` for an ephemeral port (tests and
    /// examples should, so parallel runs never collide).
    pub bind: String,
    /// Row budget per coalesced round.
    pub batch_cap: usize,
    /// Deadline past a round's first request (see [`Coalescer`]).
    pub batch_deadline: Duration,
    /// `false` turns the coalescer off: every request is its own round.
    pub coalesce: bool,
    /// Simulated fixed cost of one secure joint-prediction round. The
    /// in-tree deployment evaluates the model in the clear, so the
    /// per-round protocol overhead a real VFL serving stack pays
    /// (secure aggregation, HE, party round trips) would be invisible;
    /// setting this reinstates it. `Duration::ZERO` for tests.
    pub round_cost: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_string(),
            batch_cap: 64,
            batch_deadline: Duration::from_micros(500),
            coalesce: true,
            round_cost: Duration::ZERO,
        }
    }
}

impl ServeConfig {
    /// The coalescing policy this config describes.
    fn coalescer(&self) -> Coalescer {
        if self.coalesce {
            Coalescer::adaptive(self.batch_cap, self.batch_deadline)
        } else {
            Coalescer::passthrough()
        }
    }
}

/// How often blocked threads re-check the stop flag.
const POLL_TICK: Duration = Duration::from_millis(20);

/// One queued prediction job: the round input plus the channel its rows
/// travel back on.
struct Job {
    input: RoundInput,
    rows: usize,
    reply: Sender<Result<Matrix, String>>,
}

enum RoundInput {
    /// Stored-sample queries (already range-checked).
    Stored(Vec<usize>),
    /// Ad-hoc per-party feature blocks (already shape-checked).
    AdHoc(Vec<Matrix>),
}

impl Coalescible for Job {
    fn rows(&self) -> usize {
        self.rows
    }
}

/// State shared by every server thread.
struct Shared<M: PredictProba> {
    system: Arc<VflSystem<M>>,
    defense: Arc<DefensePipeline>,
    metrics: Arc<ServerMetrics>,
    stop: AtomicBool,
    jobs: Sender<Job>,
    info: ServerInfo,
}

/// The prediction service; [`PredictionServer::spawn`] is its only
/// entry point.
pub struct PredictionServer;

impl PredictionServer {
    /// Binds `config.bind`, spawns the server threads, and returns a
    /// handle carrying the bound address (resolve ephemeral ports from
    /// it). The deployment and the defense pipeline are shared, not
    /// consumed — the caller keeps its `Arc` clones, which is what lets
    /// tests compare over-the-wire results against in-process runs of
    /// the *same* system.
    pub fn spawn<M>(
        system: Arc<VflSystem<M>>,
        defense: Arc<DefensePipeline>,
        config: ServeConfig,
    ) -> std::io::Result<ServerHandle>
    where
        M: PredictProba + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let partition = system.partition();
        let info = ServerInfo {
            n_samples: system.n_samples(),
            n_features: partition.n_features(),
            n_classes: system.model().n_classes(),
            party_widths: (0..partition.n_parties())
                .map(|p| partition.features_of(PartyId(p)).len())
                .collect(),
        };

        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let metrics = Arc::new(ServerMetrics::new());
        let shared = Arc::new(Shared {
            system,
            defense,
            metrics: Arc::clone(&metrics),
            stop: AtomicBool::new(false),
            jobs: jobs_tx,
            info,
        });

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let coalescer = config.coalescer();
        let round_cost = config.round_cost;

        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(&shared, &jobs_rx, coalescer, round_cost))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || acceptor_loop(listener, &shared, &conns))
        };

        Ok(ServerHandle {
            addr,
            stop: StopFlag(shared),
            metrics,
            acceptor: Some(acceptor),
            batcher: Some(batcher),
            conns,
        })
    }
}

/// Type-erased access to the shared stop flag (the handle must not be
/// generic over the model type).
struct StopFlag(Arc<dyn StopTarget + Send + Sync>);

trait StopTarget {
    fn stop(&self) -> &AtomicBool;
}

impl<M: PredictProba + Send + Sync> StopTarget for Shared<M> {
    fn stop(&self) -> &AtomicBool {
        &self.stop
    }
}

/// A running server: its bound address, live metrics, and the shutdown
/// switch. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: StopFlag,
    metrics: Arc<ServerMetrics>,
    acceptor: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address — with an ephemeral-port bind this is where the
    /// kernel actually put the server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server's live metrics.
    pub fn metrics(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Stops accepting, lets in-flight rounds finish, answers everything
    /// queued, and joins every server thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.0.stop().store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock().expect("conns"));
        for h in handles {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

// ---------------------------------------------------------------------
// Thread bodies.

fn acceptor_loop<M: PredictProba + Send + Sync + 'static>(
    listener: TcpListener,
    shared: &Arc<Shared<M>>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || connection_loop(stream, &shared));
                let mut guard = conns.lock().expect("conns");
                // Reap finished connection threads so a long-lived
                // server's bookkeeping stays bounded by *live*
                // connections, not by every connection ever accepted.
                let mut i = 0;
                while i < guard.len() {
                    if guard[i].is_finished() {
                        let _ = guard.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                guard.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn connection_loop<M: PredictProba + Send + Sync>(mut stream: TcpStream, shared: &Shared<M>) {
    // The accepted stream inherits the listener's non-blocking mode on
    // some platforms; force blocking + a short read timeout so the
    // thread both sleeps properly and notices shutdown.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_nodelay(true);

    loop {
        let payload = match read_frame_interruptible(&mut stream, &shared.stop) {
            Ok(Some(p)) => p,
            Ok(None) => break, // peer closed, or we are shutting down
            Err(_) => break,   // corrupt framing: drop the connection
        };
        let t0 = Instant::now();
        let response = match decode_request(&payload) {
            Ok(req) => answer(req, shared),
            Err(e) => {
                shared.metrics.record_error();
                Response::Error(format!("bad request: {e}"))
            }
        };
        let stop_after = matches!(response, Response::ShuttingDown);
        match encode_response(&response).and_then(|payload| write_frame(&mut stream, &payload)) {
            Ok(()) => {
                if !matches!(response, Response::Error(_)) {
                    shared
                        .metrics
                        .record_request(t0.elapsed().as_micros() as u64);
                }
            }
            Err(_) => break,
        }
        if stop_after {
            shared.stop.store(true, Ordering::SeqCst);
            break;
        }
    }
}

/// Computes the response for one decoded request.
fn answer<M: PredictProba + Send + Sync>(req: Request, shared: &Shared<M>) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Info => Response::Info(shared.info.clone()),
        Request::Metrics => Response::Metrics(shared.metrics.report()),
        Request::Shutdown => Response::ShuttingDown,
        Request::PredictByIndex(indices) => {
            let n = shared.info.n_samples;
            if let Some(&bad) = indices.iter().find(|&&i| (i as usize) >= n) {
                shared.metrics.record_error();
                return Response::Error(format!(
                    "sample index {bad} out of range (n_samples = {n})"
                ));
            }
            let indices: Vec<usize> = indices.into_iter().map(|i| i as usize).collect();
            let rows = indices.len();
            enqueue(shared, RoundInput::Stored(indices), rows)
        }
        Request::PredictFeatures(slices) => {
            if slices.len() != shared.info.party_widths.len() {
                shared.metrics.record_error();
                return Response::Error(format!(
                    "expected {} party feature blocks, got {}",
                    shared.info.party_widths.len(),
                    slices.len()
                ));
            }
            let rows = slices.first().map(|s| s.rows()).unwrap_or_default();
            for (p, (block, &width)) in slices.iter().zip(&shared.info.party_widths).enumerate() {
                if block.cols() != width {
                    shared.metrics.record_error();
                    return Response::Error(format!(
                        "party {p} block is {} wide, expected {width}",
                        block.cols()
                    ));
                }
                if block.rows() != rows {
                    shared.metrics.record_error();
                    return Response::Error("party blocks must be row-aligned".to_string());
                }
            }
            enqueue(shared, RoundInput::AdHoc(slices), rows)
        }
    }
}

/// Queues a validated prediction job and waits for its rows.
fn enqueue<M: PredictProba + Send + Sync>(
    shared: &Shared<M>,
    input: RoundInput,
    rows: usize,
) -> Response {
    if rows == 0 {
        // Nothing to compute or defend: answer the empty round directly.
        return Response::Scores(Matrix::zeros(0, shared.info.n_classes));
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        input,
        rows,
        reply: reply_tx,
    };
    if shared.jobs.send(job).is_err() {
        return Response::Error("server is shutting down".to_string());
    }
    match reply_rx.recv() {
        Ok(Ok(scores)) => Response::Scores(scores),
        Ok(Err(why)) => Response::Error(why),
        Err(_) => Response::Error("server is shutting down".to_string()),
    }
}

fn batcher_loop<M: PredictProba>(
    shared: &Shared<M>,
    rx: &Receiver<Job>,
    coalescer: Coalescer,
    round_cost: Duration,
) {
    loop {
        let first = match rx.recv_timeout(POLL_TICK) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    // Drain stragglers so no connection hangs, then exit.
                    while let Ok(job) = rx.try_recv() {
                        run_round(shared, vec![job], round_cost);
                    }
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let round = coalescer.drain(rx, first);
        run_round(shared, round, round_cost);
    }
}

/// Executes one joint-prediction round over the coalesced jobs.
fn run_round<M: PredictProba>(shared: &Shared<M>, jobs: Vec<Job>, round_cost: Duration) {
    let total: usize = jobs.iter().map(|j| j.rows).sum();
    let widths = &shared.info.party_widths;

    // Assemble each party's contribution for the whole round, consuming
    // the jobs so ad-hoc blocks are moved, not cloned.
    let mut slices: Vec<Matrix> = widths.iter().map(|&w| Matrix::zeros(total, w)).collect();
    let mut replies = Vec::with_capacity(jobs.len());
    let mut offset = 0;
    for job in jobs {
        let blocks: Vec<Matrix> = match job.input {
            RoundInput::Stored(indices) => shared.system.party_slices(&indices),
            RoundInput::AdHoc(blocks) => blocks,
        };
        for (slice, block) in slices.iter_mut().zip(&blocks) {
            for r in 0..job.rows {
                slice.row_mut(offset + r).copy_from_slice(block.row(r));
            }
        }
        offset += job.rows;
        replies.push((job.rows, job.reply));
    }

    // The simulated secure-computation round trip: paid once per round,
    // however many queries the round answers.
    if round_cost > Duration::ZERO {
        std::thread::sleep(round_cost);
    }

    let scores = shared.system.predict_features_batch(&slices);
    // Defense at the score-release boundary: one batch hook per round,
    // exactly where a deployment would apply it.
    let released = shared.defense.defend_batch(&scores);
    shared.metrics.record_round(total);

    let mut offset = 0;
    for (job_rows, reply) in replies {
        let rows: Vec<usize> = (offset..offset + job_rows).collect();
        let part = released
            .select_rows(&rows)
            .expect("round rows were assembled in range");
        offset += job_rows;
        let _ = reply.send(Ok(part));
    }
}

/// Reads one frame, tolerating read-timeout ticks (progress is kept
/// across them) and returning `Ok(None)` on clean close *or* shutdown.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    match read_all(stream, &mut len_buf, stop, true)? {
        ReadOutcome::Eof | ReadOutcome::Stopped => return Ok(None),
        ReadOutcome::Done => {}
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > crate::wire::MAX_FRAME_LEN {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    match read_all(stream, &mut payload, stop, false)? {
        ReadOutcome::Eof => Err(WireError::Truncated),
        ReadOutcome::Stopped => Ok(None),
        ReadOutcome::Done => Ok(Some(payload)),
    }
}

enum ReadOutcome {
    Done,
    Eof,
    Stopped,
}

fn read_all(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    eof_ok_at_start: bool,
) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Ok(ReadOutcome::Stopped);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && eof_ok_at_start {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(WireError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Done)
}
