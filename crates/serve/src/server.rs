//! The multi-threaded TCP prediction service.
//!
//! Thread layout:
//!
//! * an *acceptor* polls the listener and spawns one thread per
//!   connection;
//! * *connection* threads frame-decode requests, validate them, and hand
//!   prediction jobs to the [`Dispatcher`];
//! * a [`ReplicaPool`] of N *batcher* threads, each owning a cheap
//!   replica of the deployment: stored-index traffic is routed by shard
//!   of the stored prediction set, ad-hoc feature traffic by least
//!   loaded replica, and each batcher drains its queue through a
//!   [`Coalescer`](crate::Coalescer) into joint-prediction rounds with
//!   the [`DefensePipeline`] applied once per round at the score-release
//!   boundary.
//!
//! One round in flight *per replica* keeps the faithfulness of the
//! modelled deployment (the `m` parties run one secure computation at a
//! time per backend) while scaling throughput with the replica count.
//! [`ServeConfig::round_cost`] makes each round's fixed protocol
//! overhead explicit; the optional released-score cache
//! ([`ServeConfig::cache_capacity`]) answers repeated stored-index
//! queries without paying it again — and, deliberately, re-releases the
//! first-released bytes so repetition leaks nothing fresh.
//!
//! Shutdown is graceful: a stop flag flips, the acceptor exits on its
//! next poll, connection threads notice within one read-timeout tick,
//! and every batcher answers the jobs still queued before exiting.

use crate::cache::ScoreCache;
use crate::coalesce::Coalescer;
use crate::dispatch::{Dispatcher, ShardMap};
use crate::metrics::{MetricsReport, ServerMetrics};
use crate::pool::{ReplicaPool, POLL_TICK};
use crate::wire::{
    decode_request, encode_response, write_frame, Request, Response, ServerInfo, WireError,
};
use fia_defense::DefensePipeline;
use fia_linalg::Matrix;
use fia_models::PredictProba;
use fia_vfl::{PartyId, VflSystem};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; use port `0` for an ephemeral port (tests and
    /// examples should, so parallel runs never collide).
    pub bind: String,
    /// Backend replicas: clones of the deployment, each with its own
    /// coalescer and batcher thread. The stored prediction set is
    /// range-sharded across them (`1` reproduces PR 2's single-batcher
    /// server exactly).
    pub replicas: usize,
    /// Row budget per coalesced round.
    pub batch_cap: usize,
    /// Deadline past a round's first request (see
    /// [`Coalescer`](crate::Coalescer)).
    pub batch_deadline: Duration,
    /// `false` turns the coalescer off: every request is its own round.
    pub coalesce: bool,
    /// Released-score cache capacity in rows; `0` disables caching.
    /// The cache stores post-defense released rows keyed by stored
    /// sample index and re-releases them bit-identically.
    pub cache_capacity: usize,
    /// Seed for the cache's eviction choices (reproducible experiments).
    pub cache_seed: u64,
    /// Simulated fixed cost of one secure joint-prediction round. The
    /// in-tree deployment evaluates the model in the clear, so the
    /// per-round protocol overhead a real VFL serving stack pays
    /// (secure aggregation, HE, party round trips) would be invisible;
    /// setting this reinstates it. `Duration::ZERO` for tests.
    pub round_cost: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_string(),
            replicas: 1,
            batch_cap: 64,
            batch_deadline: Duration::from_micros(500),
            coalesce: true,
            cache_capacity: 0,
            cache_seed: 0x5C0_7E5,
            round_cost: Duration::ZERO,
        }
    }
}

impl ServeConfig {
    /// The coalescing policy this config describes.
    fn coalescer(&self) -> Coalescer {
        if self.coalesce {
            Coalescer::adaptive(self.batch_cap, self.batch_deadline)
        } else {
            Coalescer::passthrough()
        }
    }
}

/// State shared by every server thread. Deliberately not generic over
/// the model type: the generic deployment lives inside the pool's
/// batcher threads, so connection handling stays monomorphic.
struct Shared {
    dispatcher: Dispatcher,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    info: ServerInfo,
}

/// The prediction service; [`PredictionServer::spawn`] is its only
/// entry point.
pub struct PredictionServer;

impl PredictionServer {
    /// Binds `config.bind`, spawns the server threads (acceptor + one
    /// batcher per replica), and returns a handle carrying the bound
    /// address (resolve ephemeral ports from it). The deployment and the
    /// defense pipeline are shared, not consumed — the caller keeps its
    /// `Arc` clones, which is what lets tests compare over-the-wire
    /// results against in-process runs of the *same* system.
    pub fn spawn<M>(
        system: Arc<VflSystem<M>>,
        defense: Arc<DefensePipeline>,
        config: ServeConfig,
    ) -> std::io::Result<ServerHandle>
    where
        M: PredictProba + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let partition = system.partition();
        let info = ServerInfo {
            n_samples: system.n_samples(),
            n_features: partition.n_features(),
            n_classes: system.model().n_classes(),
            party_widths: (0..partition.n_parties())
                .map(|p| partition.features_of(PartyId(p)).len())
                .collect(),
        };

        let replicas = config.replicas.max(1);
        let metrics = Arc::new(ServerMetrics::with_replicas(replicas));
        let stop = Arc::new(AtomicBool::new(false));
        let (pool, batchers) = ReplicaPool::spawn(
            &system,
            &defense,
            &metrics,
            &stop,
            config.coalescer(),
            config.round_cost,
            replicas,
        );
        let cache = (config.cache_capacity > 0)
            .then(|| ScoreCache::new(config.cache_capacity, config.cache_seed));
        let dispatcher = Dispatcher::new(
            pool,
            ShardMap::new(info.n_samples, replicas),
            cache,
            Arc::clone(&metrics),
            info.n_classes,
        );

        let shared = Arc::new(Shared {
            dispatcher,
            metrics: Arc::clone(&metrics),
            stop: Arc::clone(&stop),
            info,
        });

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || acceptor_loop(listener, &shared, &conns))
        };

        Ok(ServerHandle {
            addr,
            stop,
            metrics,
            acceptor: Some(acceptor),
            batchers,
            conns,
        })
    }
}

/// A running server: its bound address, live metrics, and the shutdown
/// switch. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    acceptor: Option<JoinHandle<()>>,
    batchers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address — with an ephemeral-port bind this is where the
    /// kernel actually put the server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server's live metrics.
    pub fn metrics(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Prometheus-style text exposition of this server's telemetry (the
    /// same text the `MetricsText` wire op returns).
    pub fn metrics_text(&self) -> String {
        self.metrics.exposition()
    }

    /// Switches this server's telemetry recording on/off — the serve
    /// bench's overhead-pricing knob.
    pub fn set_telemetry_recording(&self, on: bool) {
        self.metrics.set_recording(on);
    }

    /// Stops accepting, lets in-flight rounds finish, answers everything
    /// queued, and joins every server thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock().expect("conns"));
        for h in handles {
            let _ = h.join();
        }
        for h in std::mem::take(&mut self.batchers) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

// ---------------------------------------------------------------------
// Thread bodies.

fn acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || connection_loop(stream, &shared));
                let mut guard = conns.lock().expect("conns");
                // Reap finished connection threads so a long-lived
                // server's bookkeeping stays bounded by *live*
                // connections, not by every connection ever accepted.
                let mut i = 0;
                while i < guard.len() {
                    if guard[i].is_finished() {
                        let _ = guard.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                guard.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn connection_loop(mut stream: TcpStream, shared: &Shared) {
    // The accepted stream inherits the listener's non-blocking mode on
    // some platforms; force blocking + a short read timeout so the
    // thread both sleeps properly and notices shutdown.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_nodelay(true);

    loop {
        let payload = match read_frame_interruptible(&mut stream, &shared.stop) {
            Ok(Some(p)) => p,
            Ok(None) => break, // peer closed, or we are shutting down
            Err(_) => break,   // corrupt framing: drop the connection
        };
        let t0 = Instant::now();
        let response = match decode_request(&payload) {
            Ok(req) => answer(req, shared),
            Err(e) => {
                shared.metrics.record_error();
                Response::Error(format!("bad request: {e}"))
            }
        };
        let stop_after = matches!(response, Response::ShuttingDown);
        match encode_response(&response).and_then(|payload| write_frame(&mut stream, &payload)) {
            Ok(()) => {
                if !matches!(response, Response::Error(_)) {
                    shared
                        .metrics
                        .record_request(t0.elapsed().as_micros() as u64);
                }
            }
            Err(_) => break,
        }
        if stop_after {
            shared.stop.store(true, Ordering::SeqCst);
            break;
        }
    }
}

/// Computes the response for one decoded request.
fn answer(req: Request, shared: &Shared) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Info => Response::Info(shared.info.clone()),
        Request::Metrics => Response::Metrics(shared.metrics.report()),
        Request::MetricsText => Response::MetricsText(shared.metrics.exposition()),
        Request::Shutdown => Response::ShuttingDown,
        Request::PredictByIndex(indices) => {
            let n = shared.info.n_samples;
            if let Some(&bad) = indices.iter().find(|&&i| (i as usize) >= n) {
                shared.metrics.record_error();
                return Response::Error(format!(
                    "sample index {bad} out of range (n_samples = {n})"
                ));
            }
            let indices: Vec<usize> = indices.into_iter().map(|i| i as usize).collect();
            if indices.is_empty() {
                // Nothing to compute or defend: answer the empty round
                // directly.
                return Response::Scores {
                    scores: Matrix::zeros(0, shared.info.n_classes),
                    cached_rows: 0,
                };
            }
            match shared.dispatcher.predict_stored(&indices) {
                Ok((scores, cached)) => Response::Scores {
                    scores,
                    cached_rows: cached as u32,
                },
                Err(why) => Response::Error(why),
            }
        }
        Request::PredictFeatures(slices) => {
            if slices.len() != shared.info.party_widths.len() {
                shared.metrics.record_error();
                return Response::Error(format!(
                    "expected {} party feature blocks, got {}",
                    shared.info.party_widths.len(),
                    slices.len()
                ));
            }
            let rows = slices.first().map(|s| s.rows()).unwrap_or_default();
            for (p, (block, &width)) in slices.iter().zip(&shared.info.party_widths).enumerate() {
                if block.cols() != width {
                    shared.metrics.record_error();
                    return Response::Error(format!(
                        "party {p} block is {} wide, expected {width}",
                        block.cols()
                    ));
                }
                if block.rows() != rows {
                    shared.metrics.record_error();
                    return Response::Error("party blocks must be row-aligned".to_string());
                }
            }
            if rows == 0 {
                return Response::Scores {
                    scores: Matrix::zeros(0, shared.info.n_classes),
                    cached_rows: 0,
                };
            }
            match shared.dispatcher.predict_adhoc(slices, rows) {
                Ok(scores) => Response::Scores {
                    scores,
                    cached_rows: 0,
                },
                Err(why) => Response::Error(why),
            }
        }
    }
}

/// Reads one frame, tolerating read-timeout ticks (progress is kept
/// across them) and returning `Ok(None)` on clean close *or* shutdown.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    match read_all(stream, &mut len_buf, stop, true)? {
        ReadOutcome::Eof | ReadOutcome::Stopped => return Ok(None),
        ReadOutcome::Done => {}
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > crate::wire::MAX_FRAME_LEN {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    match read_all(stream, &mut payload, stop, false)? {
        ReadOutcome::Eof => Err(WireError::Truncated),
        ReadOutcome::Stopped => Ok(None),
        ReadOutcome::Done => Ok(Some(payload)),
    }
}

enum ReadOutcome {
    Done,
    Eof,
    Stopped,
}

fn read_all(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    eof_ok_at_start: bool,
) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Ok(ReadOutcome::Stopped);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && eof_ok_at_start {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(WireError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Done)
}
