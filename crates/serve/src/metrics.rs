//! Per-server metrics: throughput, latency percentiles, batch fill,
//! per-replica round/row gauges and released-score-cache hit rates.
//!
//! Since the telemetry PR the counters are [`fia_telemetry`] instruments
//! on a per-server [`Registry`] — still lock-free atomics on the hot
//! path, but now also scrapeable: [`ServerMetrics::exposition`] renders
//! the server's registry (merged with the process-global one, which
//! holds kernel/campaign/attack instruments) as Prometheus-style text,
//! and that is what the `MetricsText` wire op returns. Each server owns
//! its *own* registry so parallel deployments in one process — the
//! normal test topology — never share counters. [`ServerMetrics::report`]
//! still folds everything into the same plain-old-data [`MetricsReport`]
//! wire shape as before; it is now a view over the instruments.
//!
//! Latency percentiles come from a bounded *seeded reservoir sample*
//! (Algorithm R): once the reservoir is full, the `n`-th observation
//! replaces a uniformly random slot with probability `cap/n`, so at any
//! point the reservoir is a uniform sample of everything seen and the
//! interpolated percentiles are unbiased estimates of the true stream
//! quantiles. (The previous scheme kept every `k`-th sample and doubled
//! `k` on overflow, which over-weighted whatever phase of the run the
//! current stride happened to align with.) The RNG is seeded per server,
//! so a replayed run reproduces its percentile estimates exactly.

use fia_telemetry::{encode_prometheus, global, Counter, Gauge, Histogram, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cap on retained latency samples; beyond it Algorithm R keeps a
/// uniform random sample of the whole stream in O(1) memory.
const LATENCY_RESERVOIR: usize = 65_536;

/// Seed for the reservoir's replacement RNG — fixed so replayed runs
/// reproduce their percentile estimates.
const RESERVOIR_SEED: u64 = 0x5eed_1a7e;

/// Bounded uniform sample of a latency stream (Vitter's Algorithm R).
#[derive(Debug)]
struct Reservoir {
    samples: Vec<u64>,
    /// Observations offered so far (≥ `samples.len()`).
    seen: u64,
    rng: StdRng,
}

impl Reservoir {
    fn new() -> Self {
        Reservoir {
            samples: Vec::new(),
            seen: 0,
            rng: StdRng::seed_from_u64(RESERVOIR_SEED),
        }
    }

    fn push(&mut self, v: u64) {
        self.seen += 1;
        if self.samples.len() < LATENCY_RESERVOIR {
            self.samples.push(v);
        } else {
            // Keep the new observation with probability cap/seen, in a
            // uniformly random slot — the invariant that makes the
            // retained set a uniform sample of the stream.
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < LATENCY_RESERVOIR {
                self.samples[j as usize] = v;
            }
        }
    }
}

/// Per-replica round/row counters.
struct ReplicaCounters {
    rounds: Arc<Counter>,
    rows: Arc<Counter>,
}

/// Classified `accept()` failures — the label set of
/// `fia_serve_accept_errors_total{kind=}`. The old server collapsed all
/// of these into one anonymous sleep; the reactor counts them and picks
/// a policy per kind (see `crate::reactor::classify_accept_error`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcceptErrorKind {
    /// fd or memory exhaustion (`EMFILE`/`ENFILE`/`ENOBUFS`/`ENOMEM`):
    /// retrying immediately cannot succeed, so accept backs off.
    Exhausted,
    /// The pending connection died in the backlog
    /// (`ECONNABORTED`/reset): consumed, accept continues.
    Aborted,
    /// `EINTR`: accept retries immediately.
    Interrupted,
    /// Accept succeeded but the socket could not be configured for the
    /// event loop (`set_nonblocking`/poller registration failed); the
    /// connection is closed rather than run in a mode that would hang.
    Setup,
    /// Anything else: retried at the minimum backoff, never a hot loop.
    Other,
}

impl AcceptErrorKind {
    /// Every kind, in counter-array order.
    pub(crate) const ALL: [AcceptErrorKind; 5] = [
        AcceptErrorKind::Exhausted,
        AcceptErrorKind::Aborted,
        AcceptErrorKind::Interrupted,
        AcceptErrorKind::Setup,
        AcceptErrorKind::Other,
    ];

    /// The `kind` label value.
    pub(crate) fn label(self) -> &'static str {
        match self {
            AcceptErrorKind::Exhausted => "exhausted",
            AcceptErrorKind::Aborted => "aborted",
            AcceptErrorKind::Interrupted => "interrupted",
            AcceptErrorKind::Setup => "setup",
            AcceptErrorKind::Other => "other",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("in ALL")
    }
}

/// Live counters shared by every server thread.
pub struct ServerMetrics {
    registry: Arc<Registry>,
    started: Instant,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    latency_us: Arc<Histogram>,
    uptime: Arc<Gauge>,
    connections_open: Arc<Gauge>,
    connections_total: Arc<Counter>,
    /// One counter per [`AcceptErrorKind`], in `ALL` order.
    accept_errors: Vec<Arc<Counter>>,
    replicas: Vec<ReplicaCounters>,
    reservoir: Mutex<Reservoir>,
}

impl std::fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerMetrics")
            .field("requests", &self.requests.get())
            .field("errors", &self.errors.get())
            .field("replicas", &self.replicas.len())
            .finish_non_exhaustive()
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh single-replica metrics; the uptime clock starts now.
    pub fn new() -> Self {
        Self::with_replicas(1)
    }

    /// Fresh metrics tracking `replicas` backend replicas, on a private
    /// telemetry registry.
    pub fn with_replicas(replicas: usize) -> Self {
        let registry = Arc::new(Registry::new());
        let replicas = (0..replicas.max(1))
            .map(|i| {
                let idx = i.to_string();
                ReplicaCounters {
                    rounds: registry.counter_with(
                        "fia_serve_replica_rounds_total",
                        "Coalesced prediction rounds executed, per backend replica.",
                        &[("replica", &idx)],
                    ),
                    rows: registry.counter_with(
                        "fia_serve_replica_rows_total",
                        "Query rows answered, per backend replica.",
                        &[("replica", &idx)],
                    ),
                }
            })
            .collect();
        ServerMetrics {
            started: Instant::now(),
            requests: registry.counter(
                "fia_serve_requests_total",
                "Completed requests (read-complete to response-written).",
            ),
            errors: registry.counter("fia_serve_errors_total", "Rejected requests."),
            cache_hits: registry.counter(
                "fia_serve_cache_hit_rows_total",
                "Stored-index rows released from the score cache.",
            ),
            cache_misses: registry.counter(
                "fia_serve_cache_miss_rows_total",
                "Stored-index rows that required (part of) a joint round.",
            ),
            latency_us: registry.histogram(
                "fia_serve_request_duration_us",
                "End-to-end service latency, microseconds.",
            ),
            uptime: registry.gauge(
                "fia_serve_uptime_seconds",
                "Seconds since the server started (set at scrape time).",
            ),
            connections_open: registry.gauge(
                "fia_serve_connections_open",
                "Client connections currently held by the reactor.",
            ),
            connections_total: registry.counter(
                "fia_serve_connections_total",
                "Client connections accepted over the server's lifetime.",
            ),
            accept_errors: AcceptErrorKind::ALL
                .iter()
                .map(|kind| {
                    registry.counter_with(
                        "fia_serve_accept_errors_total",
                        "accept() failures, classified by what went wrong.",
                        &[("kind", kind.label())],
                    )
                })
                .collect(),
            replicas,
            reservoir: Mutex::new(Reservoir::new()),
            registry,
        }
    }

    /// Number of replicas being tracked.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The server's private telemetry registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Switches this server's instrument recording on/off (the bench's
    /// overhead-pricing knob; percentile sampling is gated too).
    pub fn set_recording(&self, on: bool) {
        self.registry.set_recording(on);
    }

    /// Records one completed request and its end-to-end service latency
    /// (read-complete to response-written).
    pub fn record_request(&self, latency_us: u64) {
        self.requests.inc();
        self.latency_us.record(latency_us);
        if self.registry.recording() {
            self.reservoir
                .lock()
                .expect("metrics lock")
                .push(latency_us);
        }
    }

    /// Records one rejected request.
    pub fn record_error(&self) {
        self.errors.inc();
    }

    /// Records one classified `accept()` failure.
    pub(crate) fn record_accept_error(&self, kind: AcceptErrorKind) {
        self.accept_errors[kind.index()].inc();
    }

    /// Records an accepted connection; `open_now` is the reactor's live
    /// connection count after the accept.
    pub(crate) fn record_connection_opened(&self, open_now: u64) {
        self.connections_total.inc();
        self.connections_open.set(open_now as f64);
    }

    /// Records a closed connection; `open_now` is the reactor's live
    /// connection count after the close.
    pub(crate) fn record_connection_closed(&self, open_now: u64) {
        self.connections_open.set(open_now as f64);
    }

    /// Records one coalesced prediction round answering `rows` queries
    /// on backend `replica`.
    pub fn record_round(&self, replica: usize, rows: usize) {
        let r = &self.replicas[replica.min(self.replicas.len() - 1)];
        r.rounds.inc();
        r.rows.add(rows as u64);
    }

    /// Records the cache outcome of one stored-index request: `hits`
    /// rows released from the cache, `misses` rows that needed a round.
    pub fn record_cache(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.cache_hits.add(hits);
        }
        if misses > 0 {
            self.cache_misses.add(misses);
        }
    }

    /// Prometheus-style text exposition of this server's registry
    /// followed by the process-global one (kernel, campaign and attack
    /// instruments) — what the `MetricsText` wire op returns.
    pub fn exposition(&self) -> String {
        self.uptime.set(self.started.elapsed().as_secs_f64());
        encode_prometheus(&self.registry.snapshot().merge(global().snapshot()))
    }

    /// Snapshot of everything, as plain data.
    pub fn report(&self) -> MetricsReport {
        let requests = self.requests.get();
        let replica_rounds: Vec<u64> = self.replicas.iter().map(|r| r.rounds.get()).collect();
        let replica_rows: Vec<u64> = self.replicas.iter().map(|r| r.rows.get()).collect();
        let rounds: u64 = replica_rounds.iter().sum();
        let rows: u64 = replica_rows.iter().sum();
        let uptime_secs = self.started.elapsed().as_secs_f64();
        let (p50, p99) = {
            let res = self.reservoir.lock().expect("metrics lock");
            percentiles(&res.samples)
        };
        MetricsReport {
            requests,
            rows,
            rounds,
            errors: self.errors.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            open_connections: self.connections_open.get() as u64,
            total_connections: self.connections_total.get(),
            accept_errors: self.accept_errors.iter().map(|c| c.get()).sum(),
            mean_batch_fill: if rounds == 0 {
                0.0
            } else {
                rows as f64 / rounds as f64
            },
            p50_latency_us: p50,
            p99_latency_us: p99,
            uptime_secs,
            throughput_rps: if uptime_secs > 0.0 {
                requests as f64 / uptime_secs
            } else {
                0.0
            },
            replica_rounds,
            replica_rows,
        }
    }
}

/// `(p50, p99)` of the retained latency samples, in microseconds.
///
/// Quantiles use linear interpolation between the two closest order
/// statistics (the same convention as numpy's default): the empty
/// window reports `(0, 0)`, a single sample is every percentile of
/// itself, and two samples give `p50 = midpoint` rather than snapping
/// to either endpoint.
pub(crate) fn percentiles(samples: &[u64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mut sorted: Vec<u64> = samples.to_vec();
    sorted.sort_unstable();
    let rank = |q: f64| {
        let pos = (sorted.len() - 1) as f64 * q;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] as f64 + (sorted[hi] as f64 - sorted[lo] as f64) * frac
    };
    (rank(0.50), rank(0.99))
}

/// A point-in-time metrics snapshot — what `Metrics` requests return and
/// what the serve bench records.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Completed requests.
    pub requests: u64,
    /// Total query rows answered across all rounds.
    pub rows: u64,
    /// Prediction rounds executed (coalesced batches), all replicas.
    pub rounds: u64,
    /// Rejected requests.
    pub errors: u64,
    /// Stored-index rows released from the score cache.
    pub cache_hits: u64,
    /// Stored-index rows that required (part of) a joint round.
    pub cache_misses: u64,
    /// Client connections currently held by the reactor.
    pub open_connections: u64,
    /// Client connections accepted over the server's lifetime.
    pub total_connections: u64,
    /// `accept()` failures, all kinds (per-kind counts live in the text
    /// exposition's `fia_serve_accept_errors_total{kind=}` series).
    pub accept_errors: u64,
    /// Mean queries per round — the coalescer's fill factor.
    pub mean_batch_fill: f64,
    /// Median end-to-end service latency, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile service latency, microseconds.
    pub p99_latency_us: f64,
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Requests per second over the whole uptime.
    pub throughput_rps: f64,
    /// Rounds executed per backend replica, in replica order.
    pub replica_rounds: Vec<u64>,
    /// Rows answered per backend replica, in replica order.
    pub replica_rows: Vec<u64>,
}

impl MetricsReport {
    /// Number of scalar `f64` slots a report occupies on the wire
    /// (the per-replica gauges travel separately, length-prefixed).
    pub const WIRE_VALUES: usize = 14;

    /// Fraction of stored-index rows answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Per-replica mean batch fill (rows per round), in replica order.
    pub fn replica_fill(&self) -> Vec<f64> {
        self.replica_rounds
            .iter()
            .zip(&self.replica_rows)
            .map(|(&rounds, &rows)| {
                if rounds == 0 {
                    0.0
                } else {
                    rows as f64 / rounds as f64
                }
            })
            .collect()
    }

    /// Flattens the scalar part of the report for the wire codec (fixed
    /// field order).
    pub fn as_wire_values(&self) -> [f64; Self::WIRE_VALUES] {
        [
            self.requests as f64,
            self.rows as f64,
            self.rounds as f64,
            self.errors as f64,
            self.cache_hits as f64,
            self.cache_misses as f64,
            self.open_connections as f64,
            self.total_connections as f64,
            self.accept_errors as f64,
            self.mean_batch_fill,
            self.p50_latency_us,
            self.p99_latency_us,
            self.uptime_secs,
            self.throughput_rps,
        ]
    }

    /// Rebuilds the scalar part of a report from its wire encoding; the
    /// per-replica gauges start empty and are filled by the codec.
    pub fn from_wire_values(v: &[f64; Self::WIRE_VALUES]) -> Self {
        MetricsReport {
            requests: v[0] as u64,
            rows: v[1] as u64,
            rounds: v[2] as u64,
            errors: v[3] as u64,
            cache_hits: v[4] as u64,
            cache_misses: v[5] as u64,
            open_connections: v[6] as u64,
            total_connections: v[7] as u64,
            accept_errors: v[8] as u64,
            mean_batch_fill: v[9],
            p50_latency_us: v[10],
            p99_latency_us: v[11],
            uptime_secs: v[12],
            throughput_rps: v[13],
            replica_rounds: Vec::new(),
            replica_rows: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_fill_is_mean() {
        let m = ServerMetrics::new();
        m.record_round(0, 4);
        m.record_round(0, 8);
        for lat in [100, 200, 300, 400] {
            m.record_request(lat);
        }
        m.record_error();
        let r = m.report();
        assert_eq!(r.requests, 4);
        assert_eq!(r.rows, 12);
        assert_eq!(r.rounds, 2);
        assert_eq!(r.errors, 1);
        assert!((r.mean_batch_fill - 6.0).abs() < 1e-12);
        // Interpolated quantiles of [100, 200, 300, 400].
        assert!((r.p50_latency_us - 250.0).abs() < 1e-9);
        assert!((r.p99_latency_us - 397.0).abs() < 1e-9);
        assert!(r.uptime_secs >= 0.0);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = ServerMetrics::new().report();
        assert_eq!(r.requests, 0);
        assert_eq!(r.mean_batch_fill, 0.0);
        assert_eq!(r.p50_latency_us, 0.0);
        assert_eq!(r.cache_hit_rate(), 0.0);
    }

    #[test]
    fn percentiles_of_empty_window_are_zero() {
        assert_eq!(percentiles(&[]), (0.0, 0.0));
    }

    #[test]
    fn percentiles_of_single_sample_are_that_sample() {
        let (p50, p99) = percentiles(&[740]);
        assert_eq!(p50, 740.0);
        assert_eq!(p99, 740.0);
    }

    #[test]
    fn percentiles_of_two_samples_interpolate() {
        // p50 of a two-sample window is the midpoint — snapping to
        // either endpoint (the old round-half-up behaviour picked the
        // *max*) misreports the median of tiny warm-up windows.
        let (p50, p99) = percentiles(&[100, 300]);
        assert!((p50 - 200.0).abs() < 1e-9);
        assert!((p99 - 298.0).abs() < 1e-9);
        // Order must not matter.
        assert_eq!(percentiles(&[300, 100]), (p50, p99));
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let samples: Vec<u64> = (0..101).map(|i| i * 10).collect();
        let (p50, p99) = percentiles(&samples);
        assert!((p50 - 500.0).abs() < 1e-9);
        assert!((p99 - 990.0).abs() < 1e-9);
        assert!(p50 <= p99);
        assert!(p99 <= *samples.last().unwrap() as f64);
    }

    #[test]
    fn per_replica_gauges_split_rounds_and_rows() {
        let m = ServerMetrics::with_replicas(3);
        assert_eq!(m.n_replicas(), 3);
        m.record_round(0, 10);
        m.record_round(2, 2);
        m.record_round(2, 4);
        let r = m.report();
        assert_eq!(r.replica_rounds, vec![1, 0, 2]);
        assert_eq!(r.replica_rows, vec![10, 0, 6]);
        assert_eq!(r.rounds, 3);
        assert_eq!(r.rows, 16);
        let fill = r.replica_fill();
        assert!((fill[0] - 10.0).abs() < 1e-12);
        assert_eq!(fill[1], 0.0);
        assert!((fill[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cache_counters_and_hit_rate() {
        let m = ServerMetrics::new();
        m.record_cache(3, 1);
        m.record_cache(0, 0); // no-op
        m.record_cache(1, 3);
        let r = m.report();
        assert_eq!(r.cache_hits, 4);
        assert_eq!(r.cache_misses, 4);
        assert!((r.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reservoir_stays_bounded_and_uniform_in_scale() {
        let m = ServerMetrics::new();
        let n = LATENCY_RESERVOIR as u64 + 50_000;
        for i in 0..n {
            m.record_request(i);
        }
        let res = m.reservoir.lock().unwrap();
        assert_eq!(res.samples.len(), LATENCY_RESERVOIR);
        assert_eq!(res.seen, n);
        drop(res);
        // A uniform sample of 0..n keeps the estimated quantiles near
        // the true stream quantiles, not near one stride phase.
        let r = m.report();
        let n = n as f64;
        assert!(
            (r.p50_latency_us - 0.5 * n).abs() < 0.02 * n,
            "{}",
            r.p50_latency_us
        );
        assert!(
            (r.p99_latency_us - 0.99 * n).abs() < 0.02 * n,
            "{}",
            r.p99_latency_us
        );
    }

    #[test]
    fn reservoir_is_seeded_and_reproducible() {
        let run = || {
            let m = ServerMetrics::new();
            for i in 0..(LATENCY_RESERVOIR as u64 + 1000) {
                m.record_request(i * 7 % 5000);
            }
            m.report()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.p50_latency_us, b.p50_latency_us);
        assert_eq!(a.p99_latency_us, b.p99_latency_us);
    }

    #[test]
    fn exposition_covers_the_serve_instruments() {
        let m = ServerMetrics::with_replicas(2);
        m.record_request(150);
        m.record_round(1, 8);
        m.record_cache(3, 1);
        let text = m.exposition();
        assert!(text.contains("fia_serve_requests_total 1\n"));
        assert!(text.contains("fia_serve_replica_rows_total{replica=\"1\"} 8\n"));
        assert!(text.contains("fia_serve_cache_hit_rows_total 3\n"));
        assert!(text.contains("# TYPE fia_serve_request_duration_us histogram"));
        assert!(text.contains("fia_serve_request_duration_us_count 1\n"));
        assert!(text
            .lines()
            .any(|l| l.starts_with("fia_serve_uptime_seconds ")));
    }

    #[test]
    fn servers_have_isolated_registries() {
        let a = ServerMetrics::new();
        let b = ServerMetrics::new();
        a.record_request(10);
        assert_eq!(a.report().requests, 1);
        assert_eq!(b.report().requests, 0);
        assert!(b.exposition().contains("fia_serve_requests_total 0\n"));
    }

    #[test]
    fn recording_toggle_freezes_counters_and_percentiles() {
        let m = ServerMetrics::new();
        m.set_recording(false);
        m.record_request(123);
        m.record_error();
        let r = m.report();
        assert_eq!(r.requests, 0);
        assert_eq!(r.errors, 0);
        assert_eq!(r.p50_latency_us, 0.0);
        m.set_recording(true);
        m.record_request(123);
        assert_eq!(m.report().requests, 1);
    }

    #[test]
    fn accept_errors_count_per_kind_and_sum_in_the_report() {
        let m = ServerMetrics::new();
        m.record_accept_error(AcceptErrorKind::Exhausted);
        m.record_accept_error(AcceptErrorKind::Exhausted);
        m.record_accept_error(AcceptErrorKind::Aborted);
        let r = m.report();
        assert_eq!(r.accept_errors, 3);
        let text = m.exposition();
        assert!(text.contains("fia_serve_accept_errors_total{kind=\"exhausted\"} 2\n"));
        assert!(text.contains("fia_serve_accept_errors_total{kind=\"aborted\"} 1\n"));
        // Unseen kinds are registered eagerly, so the scrape shows the
        // full label set at zero rather than omitting it.
        assert!(text.contains("fia_serve_accept_errors_total{kind=\"setup\"} 0\n"));
    }

    #[test]
    fn connection_gauges_track_open_and_lifetime_counts() {
        let m = ServerMetrics::new();
        m.record_connection_opened(1);
        m.record_connection_opened(2);
        m.record_connection_closed(1);
        let r = m.report();
        assert_eq!(r.open_connections, 1);
        assert_eq!(r.total_connections, 2);
        m.record_connection_closed(0);
        assert_eq!(m.report().open_connections, 0);
        assert_eq!(m.report().total_connections, 2);
    }

    #[test]
    fn wire_values_round_trip() {
        let r = MetricsReport {
            requests: 10,
            rows: 20,
            rounds: 5,
            errors: 1,
            cache_hits: 7,
            cache_misses: 13,
            open_connections: 3,
            total_connections: 42,
            accept_errors: 2,
            mean_batch_fill: 4.0,
            p50_latency_us: 120.0,
            p99_latency_us: 900.0,
            uptime_secs: 1.5,
            throughput_rps: 6.66,
            replica_rounds: Vec::new(),
            replica_rows: Vec::new(),
        };
        let back = MetricsReport::from_wire_values(&r.as_wire_values());
        assert_eq!(r, back);
    }
}
