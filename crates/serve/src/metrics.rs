//! Per-server metrics: throughput, latency percentiles, batch fill.
//!
//! Counters are lock-free atomics updated on the hot path; latencies go
//! into a bounded reservoir behind a mutex (one push per request — the
//! lock is uncontended relative to the wire round-trip it measures).
//! [`ServerMetrics::report`] folds everything into a plain-old-data
//! [`MetricsReport`] that also travels over the wire.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Cap on retained latency samples; beyond it the reservoir keeps every
/// k-th sample so long runs stay O(1) in memory.
const LATENCY_RESERVOIR: usize = 65_536;

/// Live counters shared by every server thread.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    requests: AtomicU64,
    rows: AtomicU64,
    rounds: AtomicU64,
    errors: AtomicU64,
    /// Sampling stride for the latency reservoir (1 = keep everything).
    stride: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh metrics; the uptime clock starts now.
    pub fn new() -> Self {
        ServerMetrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            stride: AtomicU64::new(1),
            latencies_us: Mutex::new(Vec::new()),
        }
    }

    /// Records one completed request and its end-to-end service latency
    /// (read-complete to response-written).
    pub fn record_request(&self, latency_us: u64) {
        let seq = self.requests.fetch_add(1, Ordering::Relaxed);
        let stride = self.stride.load(Ordering::Relaxed).max(1);
        if seq.is_multiple_of(stride) {
            let mut res = self.latencies_us.lock().expect("metrics lock");
            if res.len() >= LATENCY_RESERVOIR {
                // Decimate: keep every other sample, double the stride.
                let mut keep = Vec::with_capacity(res.len() / 2);
                keep.extend(res.iter().copied().step_by(2));
                *res = keep;
                self.stride.store(stride * 2, Ordering::Relaxed);
            }
            res.push(latency_us);
        }
    }

    /// Records one rejected request.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalesced prediction round answering `rows` queries.
    pub fn record_round(&self, rows: usize) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        self.rows.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// Snapshot of everything, as plain data.
    pub fn report(&self) -> MetricsReport {
        let requests = self.requests.load(Ordering::Relaxed);
        let rows = self.rows.load(Ordering::Relaxed);
        let rounds = self.rounds.load(Ordering::Relaxed);
        let errors = self.errors.load(Ordering::Relaxed);
        let uptime_secs = self.started.elapsed().as_secs_f64();
        let (p50, p99) = {
            let res = self.latencies_us.lock().expect("metrics lock");
            percentiles(&res)
        };
        MetricsReport {
            requests,
            rows,
            rounds,
            errors,
            mean_batch_fill: if rounds == 0 {
                0.0
            } else {
                rows as f64 / rounds as f64
            },
            p50_latency_us: p50,
            p99_latency_us: p99,
            uptime_secs,
            throughput_rps: if uptime_secs > 0.0 {
                requests as f64 / uptime_secs
            } else {
                0.0
            },
        }
    }
}

/// `(p50, p99)` of the retained latency samples, in microseconds.
fn percentiles(samples: &[u64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mut sorted: Vec<u64> = samples.to_vec();
    sorted.sort_unstable();
    let rank = |q: f64| {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx] as f64
    };
    (rank(0.50), rank(0.99))
}

/// A point-in-time metrics snapshot — what `Metrics` requests return and
/// what the serve bench records.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Completed requests.
    pub requests: u64,
    /// Total query rows answered across all rounds.
    pub rows: u64,
    /// Prediction rounds executed (coalesced batches).
    pub rounds: u64,
    /// Rejected requests.
    pub errors: u64,
    /// Mean queries per round — the coalescer's fill factor.
    pub mean_batch_fill: f64,
    /// Median end-to-end service latency, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile service latency, microseconds.
    pub p99_latency_us: f64,
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Requests per second over the whole uptime.
    pub throughput_rps: f64,
}

impl MetricsReport {
    /// Number of `f64` slots a report occupies on the wire.
    pub const WIRE_VALUES: usize = 9;

    /// Flattens the report for the wire codec (fixed field order).
    pub fn as_wire_values(&self) -> [f64; Self::WIRE_VALUES] {
        [
            self.requests as f64,
            self.rows as f64,
            self.rounds as f64,
            self.errors as f64,
            self.mean_batch_fill,
            self.p50_latency_us,
            self.p99_latency_us,
            self.uptime_secs,
            self.throughput_rps,
        ]
    }

    /// Rebuilds a report from its wire encoding.
    pub fn from_wire_values(v: &[f64; Self::WIRE_VALUES]) -> Self {
        MetricsReport {
            requests: v[0] as u64,
            rows: v[1] as u64,
            rounds: v[2] as u64,
            errors: v[3] as u64,
            mean_batch_fill: v[4],
            p50_latency_us: v[5],
            p99_latency_us: v[6],
            uptime_secs: v[7],
            throughput_rps: v[8],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_fill_is_mean() {
        let m = ServerMetrics::new();
        m.record_round(4);
        m.record_round(8);
        for lat in [100, 200, 300, 400] {
            m.record_request(lat);
        }
        m.record_error();
        let r = m.report();
        assert_eq!(r.requests, 4);
        assert_eq!(r.rows, 12);
        assert_eq!(r.rounds, 2);
        assert_eq!(r.errors, 1);
        assert!((r.mean_batch_fill - 6.0).abs() < 1e-12);
        assert!(r.p50_latency_us >= 200.0 && r.p50_latency_us <= 300.0);
        assert_eq!(r.p99_latency_us, 400.0);
        assert!(r.uptime_secs >= 0.0);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = ServerMetrics::new().report();
        assert_eq!(r.requests, 0);
        assert_eq!(r.mean_batch_fill, 0.0);
        assert_eq!(r.p50_latency_us, 0.0);
    }

    #[test]
    fn reservoir_decimates_instead_of_growing() {
        let m = ServerMetrics::new();
        for i in 0..(LATENCY_RESERVOIR as u64 + 10_000) {
            m.record_request(i);
        }
        let len = m.latencies_us.lock().unwrap().len();
        assert!(len <= LATENCY_RESERVOIR + 1, "reservoir grew to {len}");
        // Percentiles still reflect the distribution's scale.
        let r = m.report();
        assert!(r.p99_latency_us > r.p50_latency_us);
    }

    #[test]
    fn wire_values_round_trip() {
        let r = MetricsReport {
            requests: 10,
            rows: 20,
            rounds: 5,
            errors: 1,
            mean_batch_fill: 4.0,
            p50_latency_us: 120.0,
            p99_latency_us: 900.0,
            uptime_secs: 1.5,
            throughput_rps: 6.66,
        };
        let back = MetricsReport::from_wire_values(&r.as_wire_values());
        assert_eq!(r, back);
    }
}
