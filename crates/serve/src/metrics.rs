//! Per-server metrics: throughput, latency percentiles, batch fill,
//! per-replica round/row gauges and released-score-cache hit rates.
//!
//! Counters are lock-free atomics updated on the hot path; latencies go
//! into a bounded reservoir behind a mutex (one push per request — the
//! lock is uncontended relative to the wire round-trip it measures).
//! Round and row counts are kept *per replica* so a sharded pool's load
//! spread and per-backend batch fill are observable, and
//! [`ServerMetrics::report`] folds everything into a plain-old-data
//! [`MetricsReport`] that also travels over the wire.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Cap on retained latency samples; beyond it the reservoir keeps every
/// k-th sample so long runs stay O(1) in memory.
const LATENCY_RESERVOIR: usize = 65_536;

/// Round/row counters for one backend replica.
#[derive(Debug, Default)]
struct ReplicaCounters {
    rounds: AtomicU64,
    rows: AtomicU64,
}

/// Live counters shared by every server thread.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    replicas: Vec<ReplicaCounters>,
    /// Sampling stride for the latency reservoir (1 = keep everything).
    stride: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh single-replica metrics; the uptime clock starts now.
    pub fn new() -> Self {
        Self::with_replicas(1)
    }

    /// Fresh metrics tracking `replicas` backend replicas.
    pub fn with_replicas(replicas: usize) -> Self {
        ServerMetrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            replicas: (0..replicas.max(1))
                .map(|_| ReplicaCounters::default())
                .collect(),
            stride: AtomicU64::new(1),
            latencies_us: Mutex::new(Vec::new()),
        }
    }

    /// Number of replicas being tracked.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Records one completed request and its end-to-end service latency
    /// (read-complete to response-written).
    pub fn record_request(&self, latency_us: u64) {
        let seq = self.requests.fetch_add(1, Ordering::Relaxed);
        let stride = self.stride.load(Ordering::Relaxed).max(1);
        if seq.is_multiple_of(stride) {
            let mut res = self.latencies_us.lock().expect("metrics lock");
            if res.len() >= LATENCY_RESERVOIR {
                // Decimate: keep every other sample, double the stride.
                let mut keep = Vec::with_capacity(res.len() / 2);
                keep.extend(res.iter().copied().step_by(2));
                *res = keep;
                self.stride.store(stride * 2, Ordering::Relaxed);
            }
            res.push(latency_us);
        }
    }

    /// Records one rejected request.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalesced prediction round answering `rows` queries
    /// on backend `replica`.
    pub fn record_round(&self, replica: usize, rows: usize) {
        let r = &self.replicas[replica.min(self.replicas.len() - 1)];
        r.rounds.fetch_add(1, Ordering::Relaxed);
        r.rows.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// Records the cache outcome of one stored-index request: `hits`
    /// rows released from the cache, `misses` rows that needed a round.
    pub fn record_cache(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.cache_misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Snapshot of everything, as plain data.
    pub fn report(&self) -> MetricsReport {
        let requests = self.requests.load(Ordering::Relaxed);
        let errors = self.errors.load(Ordering::Relaxed);
        let replica_rounds: Vec<u64> = self
            .replicas
            .iter()
            .map(|r| r.rounds.load(Ordering::Relaxed))
            .collect();
        let replica_rows: Vec<u64> = self
            .replicas
            .iter()
            .map(|r| r.rows.load(Ordering::Relaxed))
            .collect();
        let rounds: u64 = replica_rounds.iter().sum();
        let rows: u64 = replica_rows.iter().sum();
        let uptime_secs = self.started.elapsed().as_secs_f64();
        let (p50, p99) = {
            let res = self.latencies_us.lock().expect("metrics lock");
            percentiles(&res)
        };
        MetricsReport {
            requests,
            rows,
            rounds,
            errors,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            mean_batch_fill: if rounds == 0 {
                0.0
            } else {
                rows as f64 / rounds as f64
            },
            p50_latency_us: p50,
            p99_latency_us: p99,
            uptime_secs,
            throughput_rps: if uptime_secs > 0.0 {
                requests as f64 / uptime_secs
            } else {
                0.0
            },
            replica_rounds,
            replica_rows,
        }
    }
}

/// `(p50, p99)` of the retained latency samples, in microseconds.
///
/// Quantiles use linear interpolation between the two closest order
/// statistics (the same convention as numpy's default): the empty
/// window reports `(0, 0)`, a single sample is every percentile of
/// itself, and two samples give `p50 = midpoint` rather than snapping
/// to either endpoint.
pub(crate) fn percentiles(samples: &[u64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mut sorted: Vec<u64> = samples.to_vec();
    sorted.sort_unstable();
    let rank = |q: f64| {
        let pos = (sorted.len() - 1) as f64 * q;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] as f64 + (sorted[hi] as f64 - sorted[lo] as f64) * frac
    };
    (rank(0.50), rank(0.99))
}

/// A point-in-time metrics snapshot — what `Metrics` requests return and
/// what the serve bench records.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Completed requests.
    pub requests: u64,
    /// Total query rows answered across all rounds.
    pub rows: u64,
    /// Prediction rounds executed (coalesced batches), all replicas.
    pub rounds: u64,
    /// Rejected requests.
    pub errors: u64,
    /// Stored-index rows released from the score cache.
    pub cache_hits: u64,
    /// Stored-index rows that required (part of) a joint round.
    pub cache_misses: u64,
    /// Mean queries per round — the coalescer's fill factor.
    pub mean_batch_fill: f64,
    /// Median end-to-end service latency, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile service latency, microseconds.
    pub p99_latency_us: f64,
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Requests per second over the whole uptime.
    pub throughput_rps: f64,
    /// Rounds executed per backend replica, in replica order.
    pub replica_rounds: Vec<u64>,
    /// Rows answered per backend replica, in replica order.
    pub replica_rows: Vec<u64>,
}

impl MetricsReport {
    /// Number of scalar `f64` slots a report occupies on the wire
    /// (the per-replica gauges travel separately, length-prefixed).
    pub const WIRE_VALUES: usize = 11;

    /// Fraction of stored-index rows answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Per-replica mean batch fill (rows per round), in replica order.
    pub fn replica_fill(&self) -> Vec<f64> {
        self.replica_rounds
            .iter()
            .zip(&self.replica_rows)
            .map(|(&rounds, &rows)| {
                if rounds == 0 {
                    0.0
                } else {
                    rows as f64 / rounds as f64
                }
            })
            .collect()
    }

    /// Flattens the scalar part of the report for the wire codec (fixed
    /// field order).
    pub fn as_wire_values(&self) -> [f64; Self::WIRE_VALUES] {
        [
            self.requests as f64,
            self.rows as f64,
            self.rounds as f64,
            self.errors as f64,
            self.cache_hits as f64,
            self.cache_misses as f64,
            self.mean_batch_fill,
            self.p50_latency_us,
            self.p99_latency_us,
            self.uptime_secs,
            self.throughput_rps,
        ]
    }

    /// Rebuilds the scalar part of a report from its wire encoding; the
    /// per-replica gauges start empty and are filled by the codec.
    pub fn from_wire_values(v: &[f64; Self::WIRE_VALUES]) -> Self {
        MetricsReport {
            requests: v[0] as u64,
            rows: v[1] as u64,
            rounds: v[2] as u64,
            errors: v[3] as u64,
            cache_hits: v[4] as u64,
            cache_misses: v[5] as u64,
            mean_batch_fill: v[6],
            p50_latency_us: v[7],
            p99_latency_us: v[8],
            uptime_secs: v[9],
            throughput_rps: v[10],
            replica_rounds: Vec::new(),
            replica_rows: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_fill_is_mean() {
        let m = ServerMetrics::new();
        m.record_round(0, 4);
        m.record_round(0, 8);
        for lat in [100, 200, 300, 400] {
            m.record_request(lat);
        }
        m.record_error();
        let r = m.report();
        assert_eq!(r.requests, 4);
        assert_eq!(r.rows, 12);
        assert_eq!(r.rounds, 2);
        assert_eq!(r.errors, 1);
        assert!((r.mean_batch_fill - 6.0).abs() < 1e-12);
        // Interpolated quantiles of [100, 200, 300, 400].
        assert!((r.p50_latency_us - 250.0).abs() < 1e-9);
        assert!((r.p99_latency_us - 397.0).abs() < 1e-9);
        assert!(r.uptime_secs >= 0.0);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = ServerMetrics::new().report();
        assert_eq!(r.requests, 0);
        assert_eq!(r.mean_batch_fill, 0.0);
        assert_eq!(r.p50_latency_us, 0.0);
        assert_eq!(r.cache_hit_rate(), 0.0);
    }

    #[test]
    fn percentiles_of_empty_window_are_zero() {
        assert_eq!(percentiles(&[]), (0.0, 0.0));
    }

    #[test]
    fn percentiles_of_single_sample_are_that_sample() {
        let (p50, p99) = percentiles(&[740]);
        assert_eq!(p50, 740.0);
        assert_eq!(p99, 740.0);
    }

    #[test]
    fn percentiles_of_two_samples_interpolate() {
        // p50 of a two-sample window is the midpoint — snapping to
        // either endpoint (the old round-half-up behaviour picked the
        // *max*) misreports the median of tiny warm-up windows.
        let (p50, p99) = percentiles(&[100, 300]);
        assert!((p50 - 200.0).abs() < 1e-9);
        assert!((p99 - 298.0).abs() < 1e-9);
        // Order must not matter.
        assert_eq!(percentiles(&[300, 100]), (p50, p99));
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let samples: Vec<u64> = (0..101).map(|i| i * 10).collect();
        let (p50, p99) = percentiles(&samples);
        assert!((p50 - 500.0).abs() < 1e-9);
        assert!((p99 - 990.0).abs() < 1e-9);
        assert!(p50 <= p99);
        assert!(p99 <= *samples.last().unwrap() as f64);
    }

    #[test]
    fn per_replica_gauges_split_rounds_and_rows() {
        let m = ServerMetrics::with_replicas(3);
        assert_eq!(m.n_replicas(), 3);
        m.record_round(0, 10);
        m.record_round(2, 2);
        m.record_round(2, 4);
        let r = m.report();
        assert_eq!(r.replica_rounds, vec![1, 0, 2]);
        assert_eq!(r.replica_rows, vec![10, 0, 6]);
        assert_eq!(r.rounds, 3);
        assert_eq!(r.rows, 16);
        let fill = r.replica_fill();
        assert!((fill[0] - 10.0).abs() < 1e-12);
        assert_eq!(fill[1], 0.0);
        assert!((fill[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cache_counters_and_hit_rate() {
        let m = ServerMetrics::new();
        m.record_cache(3, 1);
        m.record_cache(0, 0); // no-op
        m.record_cache(1, 3);
        let r = m.report();
        assert_eq!(r.cache_hits, 4);
        assert_eq!(r.cache_misses, 4);
        assert!((r.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reservoir_decimates_instead_of_growing() {
        let m = ServerMetrics::new();
        for i in 0..(LATENCY_RESERVOIR as u64 + 10_000) {
            m.record_request(i);
        }
        let len = m.latencies_us.lock().unwrap().len();
        assert!(len <= LATENCY_RESERVOIR + 1, "reservoir grew to {len}");
        // Percentiles still reflect the distribution's scale.
        let r = m.report();
        assert!(r.p99_latency_us > r.p50_latency_us);
    }

    #[test]
    fn wire_values_round_trip() {
        let r = MetricsReport {
            requests: 10,
            rows: 20,
            rounds: 5,
            errors: 1,
            cache_hits: 7,
            cache_misses: 13,
            mean_batch_fill: 4.0,
            p50_latency_us: 120.0,
            p99_latency_us: 900.0,
            uptime_secs: 1.5,
            throughput_rps: 6.66,
            replica_rounds: Vec::new(),
            replica_rows: Vec::new(),
        };
        let back = MetricsReport::from_wire_values(&r.as_wire_values());
        assert_eq!(r, back);
    }
}
