//! Thin in-tree readiness-API shim: `epoll` on Linux with a portable
//! POSIX `poll` fallback, in the same spirit as `crates/rand-compat` —
//! the workspace has no registry access, so the handful of syscalls the
//! reactor needs are declared against the libc symbols std already
//! links instead of pulling in `libc`/`mio`.
//!
//! The backend is chosen once per [`Poller`]: `epoll` where available,
//! unless `FIA_FORCE_POLL=1` pins the portable arm (mirroring
//! `FIA_FORCE_SCALAR=1` for the SIMD kernels). Both backends expose the
//! same level-triggered readiness contract, so the reactor is written
//! once and CI exercises both arms.

#![allow(unsafe_code)]

#[cfg(not(unix))]
compile_error!("fia-serve's reactor needs a POSIX readiness API (epoll/poll)");

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// What a registered fd should be watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest (the common case for idle connections).
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// No interest bits — HUP/ERR still surface (both backends report
    /// them unconditionally).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness event. `closed` reports a *full* hangup or socket
/// error (`HUP`/`ERR`, which both backends deliver regardless of
/// registered interest) — the peer is gone and nothing is deliverable.
/// A graceful half-close (peer `FIN`, epoll's `RDHUP`) is *not* closed:
/// it surfaces as `readable`, the reader observes `read() == 0`, and
/// responses already in flight can still be written back.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes (or an EOF) to read.
    pub readable: bool,
    /// The fd can accept writes without blocking.
    pub writable: bool,
    /// Full hangup or socket error; the peer is gone.
    pub closed: bool,
}

/// Which readiness backend a [`Poller`] is driving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll`: O(ready) waits, the default where available.
    Epoll,
    /// POSIX `poll`: O(registered) waits, portable fallback
    /// (`FIA_FORCE_POLL=1` pins it).
    Poll,
}

/// `FIA_FORCE_POLL=1` pins the portable `poll` backend at runtime.
pub fn force_poll() -> bool {
    std::env::var_os("FIA_FORCE_POLL").is_some_and(|v| v == "1")
}

// ---------------------------------------------------------------------
// epoll backend (Linux).

#[cfg(target_os = "linux")]
mod epoll {
    use std::os::raw::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Mirrors the kernel ABI: packed on x86 so the 12-byte layout
    /// matches what `epoll_wait` writes.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

#[cfg(target_os = "linux")]
struct EpollPoller {
    epfd: std::os::raw::c_int,
    buf: Vec<epoll::epoll_event>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> io::Result<Self> {
        // SAFETY: plain syscall; the returned fd is owned by this struct
        // and closed in Drop.
        let epfd = unsafe { epoll::epoll_create1(epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollPoller {
            epfd,
            buf: vec![epoll::epoll_event { events: 0, data: 0 }; 256],
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            // RDHUP rides with read interest only: a half-closed peer
            // must stop generating level-triggered wakeups once the
            // reactor has marked the connection read-done.
            m |= epoll::EPOLLIN | epoll::EPOLLRDHUP;
        }
        if interest.write {
            m |= epoll::EPOLLOUT;
        }
        m
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: RawFd,
        ev: Option<epoll::epoll_event>,
    ) -> io::Result<()> {
        let mut ev = ev;
        let ptr = ev
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut epoll::epoll_event);
        // SAFETY: epfd is a live epoll fd; `ptr` is either null (DEL) or
        // points at a stack-local event the kernel only reads.
        if unsafe { epoll::epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let ev = epoll::epoll_event {
            events: Self::mask(interest),
            data: token,
        };
        self.ctl(epoll::EPOLL_CTL_ADD, fd, Some(ev))
    }

    fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let ev = epoll::epoll_event {
            events: Self::mask(interest),
            data: token,
        };
        self.ctl(epoll::EPOLL_CTL_MOD, fd, Some(ev))
    }

    fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(epoll::EPOLL_CTL_DEL, fd, None)
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = timeout_millis(timeout);
        // SAFETY: `buf` outlives the call and `maxevents` matches its
        // length, so the kernel writes in bounds.
        let n = unsafe {
            epoll::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as std::os::raw::c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // spurious wake; the caller's loop retries
            }
            return Err(e);
        }
        for raw in &self.buf[..n as usize] {
            // Copy out of the (possibly packed) struct before use.
            let events = raw.events;
            let token = raw.data;
            let closed = events & (epoll::EPOLLHUP | epoll::EPOLLERR) != 0;
            out.push(Event {
                token,
                readable: events & (epoll::EPOLLIN | epoll::EPOLLRDHUP) != 0 || closed,
                writable: events & epoll::EPOLLOUT != 0,
                closed,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        // SAFETY: epfd was returned by epoll_create1 and never closed
        // elsewhere.
        unsafe { epoll::close(self.epfd) };
    }
}

// ---------------------------------------------------------------------
// poll backend (portable fallback).

mod posix {
    use std::os::raw::{c_int, c_short, c_ulong};

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        // `nfds_t` is `unsigned long` on Linux; platforms where it is
        // narrower still read the correct low bits for any registration
        // count this crate produces.
        pub fn poll(fds: *mut pollfd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
}

struct PollEntry {
    fd: RawFd,
    token: u64,
    interest: Interest,
}

struct PollPoller {
    entries: Vec<PollEntry>,
    buf: Vec<posix::pollfd>,
}

impl PollPoller {
    fn new() -> Self {
        PollPoller {
            entries: Vec::new(),
            buf: Vec::new(),
        }
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.entries.iter().any(|e| e.fd == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push(PollEntry {
            fd,
            token,
            interest,
        });
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.fd == fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        entry.token = token;
        entry.interest = interest;
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let before = self.entries.len();
        self.entries.retain(|e| e.fd != fd);
        if self.entries.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.buf.clear();
        // An fd registered with empty interest still reports
        // POLLERR/POLLHUP, matching epoll's unconditional error events.
        for e in &self.entries {
            let mut events = 0;
            if e.interest.read {
                events |= posix::POLLIN;
            }
            if e.interest.write {
                events |= posix::POLLOUT;
            }
            self.buf.push(posix::pollfd {
                fd: e.fd,
                events,
                revents: 0,
            });
        }
        let timeout_ms = timeout_millis(timeout);
        // SAFETY: `buf` is a live slice of pollfd rebuilt above; nfds
        // matches its length.
        let n = unsafe {
            posix::poll(
                self.buf.as_mut_ptr(),
                self.buf.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for (entry, pfd) in self.entries.iter().zip(&self.buf) {
            let r = pfd.revents;
            if r == 0 {
                continue;
            }
            let closed = r & (posix::POLLHUP | posix::POLLERR) != 0;
            out.push(Event {
                token: entry.token,
                readable: r & posix::POLLIN != 0 || closed,
                writable: r & posix::POLLOUT != 0,
                closed,
            });
        }
        Ok(())
    }
}

/// Rounds a wait budget up to whole milliseconds (`-1` = block forever),
/// so a sub-millisecond deadline still sleeps instead of spinning.
fn timeout_millis(timeout: Option<Duration>) -> std::os::raw::c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
            ms.min(i32::MAX as u128) as std::os::raw::c_int
        }
    }
}

// ---------------------------------------------------------------------
// The public face.

enum BackendImpl {
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    Poll(PollPoller),
}

/// Level-triggered readiness over a set of registered fds — the one
/// abstraction the reactor event loop is written against.
pub struct Poller {
    backend: BackendImpl,
}

impl Poller {
    /// A poller on the platform default backend (`epoll` on Linux unless
    /// `FIA_FORCE_POLL=1`; `poll` elsewhere).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        if !force_poll() {
            return Poller::with_backend(Backend::Epoll);
        }
        Poller::with_backend(Backend::Poll)
    }

    /// A poller pinned to `backend` (tests exercise both arms directly).
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let backend = match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => BackendImpl::Epoll(EpollPoller::new()?),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "epoll is Linux-only; use Backend::Poll",
                ))
            }
            Backend::Poll => BackendImpl::Poll(PollPoller::new()),
        };
        Ok(Poller { backend })
    }

    /// Which backend this poller drives (test/diagnostic visibility).
    pub fn backend(&self) -> Backend {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(_) => Backend::Epoll,
            BackendImpl::Poll(_) => Backend::Poll,
        }
    }

    /// Starts watching `fd` for `interest`, tagging its events `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(p) => p.register(fd, token, interest),
            BackendImpl::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Updates an existing registration's interest (and token).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(p) => p.modify(fd, token, interest),
            BackendImpl::Poll(p) => p.modify(fd, token, interest),
        }
    }

    /// Stops watching `fd`.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(p) => p.deregister(fd),
            BackendImpl::Poll(p) => p.deregister(fd),
        }
    }

    /// Appends ready events to `out` (which the caller drains), blocking
    /// up to `timeout` (`None` = forever). A signal-interrupted wait
    /// returns cleanly with no events.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(p) => p.wait(out, timeout),
            BackendImpl::Poll(p) => p.wait(out, timeout),
        }
    }
}

// ---------------------------------------------------------------------
// Cross-thread wakeups.

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from another thread by
/// writing one byte into a nonblocking socketpair whose read end the
/// poller watches. Cheap to clone (one `Arc` bump) — every in-flight
/// job's reply guard carries one.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Nudges the poller. A full pipe means a wake is already pending,
    /// which is all a level-triggered loop needs — the error is ignored
    /// by design.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// A connected waker and the read end the reactor registers. Both ends
/// are nonblocking: `wake` never stalls a batcher, and draining never
/// stalls the reactor.
pub fn wake_pair() -> io::Result<(Waker, UnixStream)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, rx))
}

/// Reads and discards everything pending on a wake pipe's read end
/// (`Read` is implemented for `&UnixStream`, so this borrows the pipe).
pub fn drain_wake_pipe(rx: &UnixStream) {
    use std::io::Read;
    let mut buf = [0u8; 64];
    loop {
        match (&mut &*rx).read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
}

/// The raw fd of any `AsRawFd` (a shorthand the reactor uses a lot).
pub fn fd_of(s: &impl AsRawFd) -> RawFd {
    s.as_raw_fd()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    /// Readiness round trip on both backends: a listener becomes
    /// readable when a client connects, the accepted socket becomes
    /// readable when bytes arrive, and interest changes are honored.
    #[test]
    fn readable_and_writable_events_on_both_backends() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            assert_eq!(poller.backend(), backend);

            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.set_nonblocking(true).expect("nonblocking");
            poller
                .register(fd_of(&listener), 1, Interest::READ)
                .expect("register listener");

            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(events.is_empty(), "{backend:?}: no client yet");

            let mut client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
            poller
                .wait(&mut events, Some(Duration::from_millis(500)))
                .expect("wait");
            assert!(
                events.iter().any(|e| e.token == 1 && e.readable),
                "{backend:?}: listener should signal readable on connect"
            );

            let (accepted, _) = listener.accept().expect("accept");
            accepted.set_nonblocking(true).expect("nonblocking");
            poller
                .register(
                    fd_of(&accepted),
                    2,
                    Interest {
                        read: true,
                        write: true,
                    },
                )
                .expect("register conn");

            client.write_all(b"hello").expect("write");
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(500)))
                .expect("wait");
            let ev = events.iter().find(|e| e.token == 2).expect("conn event");
            assert!(ev.readable, "{backend:?}: bytes pending");
            assert!(ev.writable, "{backend:?}: fresh socket is writable");

            // Dropping read interest leaves only writability.
            poller
                .modify(
                    fd_of(&accepted),
                    2,
                    Interest {
                        read: false,
                        write: true,
                    },
                )
                .expect("modify");
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .expect("wait");
            let ev = events.iter().find(|e| e.token == 2).expect("conn event");
            assert!(
                !ev.readable && ev.writable,
                "{backend:?}: write-only interest"
            );

            let mut buf = [0u8; 8];
            let mut accepted_ref = &accepted;
            assert_eq!(accepted_ref.read(&mut buf).expect("read"), 5);

            poller.deregister(fd_of(&accepted)).expect("deregister");
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(
                events.iter().all(|e| e.token != 2),
                "{backend:?}: deregistered fd must not report"
            );
        }
    }

    /// A *dead* peer (connection reset) surfaces as a closed event even
    /// when the registration has no interest bits set — HUP/ERR are
    /// unconditional on both backends, which is what lets the reactor
    /// reap a vanished client it had stopped reading from.
    #[test]
    fn dead_peer_is_reported_without_interest() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
            let (accepted, _) = listener.accept().expect("accept");
            accepted.set_nonblocking(true).expect("nonblocking");
            poller
                .register(fd_of(&accepted), 7, Interest::NONE)
                .expect("register");
            drop(client);
            // Writing into the closed peer provokes an RST; after that
            // the socket is in the error state HUP/ERR report.
            let mut events = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            let mut saw_close = false;
            while std::time::Instant::now() < deadline {
                let mut w = &accepted;
                let _ = w.write(b"x");
                events.clear();
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .expect("wait");
                if events.iter().any(|e| e.token == 7 && e.closed) {
                    saw_close = true;
                    break;
                }
            }
            assert!(saw_close, "{backend:?}: dead peer never surfaced");
        }
    }

    /// A graceful half-close (peer FIN) is readable — the reader sees
    /// EOF — but NOT closed: responses still in flight remain writable.
    #[test]
    fn half_close_is_readable_but_not_closed() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
            let (accepted, _) = listener.accept().expect("accept");
            accepted.set_nonblocking(true).expect("nonblocking");
            poller
                .register(fd_of(&accepted), 5, Interest::READ)
                .expect("register");
            client
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            let mut events = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            let mut saw_eof = false;
            while std::time::Instant::now() < deadline {
                events.clear();
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .expect("wait");
                if let Some(ev) = events.iter().find(|e| e.token == 5) {
                    assert!(ev.readable, "{backend:?}: FIN must surface as readable");
                    assert!(!ev.closed, "{backend:?}: FIN is not a full hangup");
                    let mut r = &accepted;
                    let mut buf = [0u8; 8];
                    assert_eq!(r.read(&mut buf).expect("read"), 0, "EOF");
                    saw_eof = true;
                    break;
                }
            }
            assert!(saw_eof, "{backend:?}: half-close never surfaced");
            // The client can still receive: the server's write succeeds.
            let mut w = &accepted;
            w.write_all(b"reply").expect("write after peer FIN");
            let mut c = &client;
            let mut buf = [0u8; 5];
            c.read_exact(&mut buf).expect("client still reading");
            assert_eq!(&buf, b"reply");
        }
    }

    /// The waker wakes a blocked poller from another thread, and
    /// draining the pipe clears the readiness.
    #[test]
    fn waker_rouses_a_blocked_wait() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (waker, rx) = wake_pair().expect("wake pair");
            poller
                .register(fd_of(&rx), 99, Interest::READ)
                .expect("register");

            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.wake();
                waker
            });
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert!(
                events.iter().any(|e| e.token == 99 && e.readable),
                "{backend:?}: wake never arrived"
            );
            let waker = handle.join().expect("waker thread");

            drain_wake_pipe(&rx);
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(
                events.iter().all(|e| e.token != 99),
                "{backend:?}: drained pipe must go quiet"
            );

            // A second wake still works (the pipe is reusable).
            waker.wake();
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(500)))
                .expect("wait");
            assert!(events.iter().any(|e| e.token == 99));
        }
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_to_zero() {
        assert_eq!(timeout_millis(None), -1);
        assert_eq!(timeout_millis(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_millis(Some(Duration::from_micros(200))), 1);
        assert_eq!(timeout_millis(Some(Duration::from_millis(20))), 20);
    }
}
