//! The readiness-driven connection reactor: one event-loop thread owns
//! the listener and every client socket.
//!
//! The thread-per-connection server capped concurrency at the OS thread
//! budget and hid three failure modes in its accept/shutdown path (an
//! anonymous sleep on every accept error, a read timeout whose failure
//! silently produced an unjoinable thread, and connection bookkeeping
//! reaped only when the *next* client arrived). The reactor replaces
//! all of it structurally:
//!
//! * all sockets are nonblocking and multiplexed through the [`sys`]
//!   shim (`epoll`, or `poll` under `FIA_FORCE_POLL=1`), so 4096 idle
//!   connections cost four thousand fds and zero threads;
//! * inbound bytes are assembled *incrementally* per connection and
//!   complete frames are decoded with the same `wire.rs` codec the
//!   blocking path used;
//! * prediction work still flows to the [`Dispatcher`] → replica-pool
//!   batchers by channel; completed sub-rounds come back on a
//!   completion queue plus a [`Waker`] nudge, and responses are written
//!   through the reactor's writable-readiness machinery — a slow reader
//!   buffers its own responses and never blocks a batcher;
//! * responses are emitted strictly in per-connection request order
//!   (pipelined clients see FIFO answers even though rounds complete
//!   out of order);
//! * accept errors are classified ([`classify_accept_error`]) and
//!   counted per kind (`fia_serve_accept_errors_total{kind=}`); fd
//!   exhaustion backs off exponentially with listener interest
//!   suspended, so the EMFILE regime is a counted, paced retry instead
//!   of a silent hot loop;
//! * shutdown drains: the listener closes immediately, queued jobs are
//!   answered by the batchers, buffered responses are flushed (bounded
//!   by [`DRAIN_DEADLINE`]), and the loop exits with every connection
//!   accounted for.

use crate::audit::{AuditLedger, AuditSummary};
use crate::dispatch::StoredPlan;
use crate::metrics::AcceptErrorKind;
use crate::pool::{Completion, ReactorReply, ReplyTo};
use crate::server::Shared;
use crate::sys::{self, drain_wake_pipe, fd_of, Event, Interest, Poller, Waker};
use crate::wire::{decode_request, encode_response, Request, Response, MAX_FRAME_LEN};
use fia_core::TraceContext;
use fia_linalg::Matrix;
use fia_telemetry::Span;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token for the listening socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token for the wake pipe's read end.
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// Idle tick: the loop re-checks the stop flag at least this often even
/// if the waker is never fired (a safety net, not the signal path).
const TICK: Duration = Duration::from_millis(50);

/// How long a draining server waits for buffered responses to flush
/// before force-closing the stragglers.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Accept-error backoff window under resource exhaustion: starts here,
/// doubles per consecutive exhausted accept, caps at the max.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// In-flight prediction requests per connection before the reactor
/// stops reading from it — backpressure for pipelining clients, so one
/// greedy connection cannot queue unbounded jobs.
const PIPELINE_CAP: usize = 256;

/// Bounded read passes per readable event, so one firehose connection
/// cannot starve the rest of the loop.
const MAX_READ_PASSES: usize = 16;

/// Flushed-prefix length past which the output buffer is compacted.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// One client connection's entire state — a struct, not a thread.
struct Conn {
    stream: TcpStream,
    /// Unparsed inbound bytes (incremental frame assembly).
    buf: Vec<u8>,
    /// Outbound bytes; `out[out_pos..]` is still unwritten.
    out: Vec<u8>,
    out_pos: usize,
    /// Sequence number assigned to the next parsed request.
    next_seq: u64,
    /// Sequence number of the next response to emit into `out`.
    emit_seq: u64,
    /// Completed responses waiting on earlier sequence numbers.
    staged: BTreeMap<u64, Staged>,
    /// Prediction requests handed to the pool and not yet answered.
    inflight: usize,
    /// No more requests will be parsed (peer EOF, framing corruption,
    /// or server drain).
    read_done: bool,
    /// Close once everything staged and buffered has been written.
    close_when_flushed: bool,
    /// Reads suspended at [`PIPELINE_CAP`].
    paused_read: bool,
    /// Interest currently registered with the poller.
    reg: Interest,
    /// Audit-ledger label: `conn-{id}` until the client declares a
    /// session tag (`DeclareSession`), which survives as the stable
    /// identity across reconnects.
    label: String,
}

impl Conn {
    fn new(stream: TcpStream, id: u64) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            emit_seq: 0,
            staged: BTreeMap::new(),
            inflight: 0,
            read_done: false,
            close_when_flushed: false,
            paused_read: false,
            reg: Interest::READ,
            label: format!("conn-{id}"),
        }
    }

    fn out_drained(&self) -> bool {
        self.out_pos >= self.out.len()
    }

    fn removable(&self) -> bool {
        self.close_when_flushed
            && self.inflight == 0
            && self.staged.is_empty()
            && self.out_drained()
    }
}

/// An encoded response waiting for its in-order emission slot.
struct Staged {
    frame: Vec<u8>,
    t0: Instant,
    error: bool,
}

/// One prediction request fanned out as per-shard sub-rounds.
struct PendingRound {
    conn: u64,
    seq: u64,
    t0: Instant,
    /// Request-ordered output; cache hits prefilled, miss rows filled
    /// as sub-rounds complete.
    out: Matrix,
    hits: u64,
    /// `(shard, [(request pos, sample index)])` per part, as planned.
    groups: Vec<(usize, Vec<(usize, usize)>)>,
    remaining: usize,
    /// Ad-hoc requests have a single part whose release *is* the output.
    adhoc: bool,
    failed: Option<String>,
    /// The `serve.request` span (traced requests only); finishes when
    /// the response is staged.
    req_span: Option<Span>,
    /// Per-part `serve.dispatch` spans, finished as parts complete.
    dispatch_spans: Vec<Option<Span>>,
    /// What the audit ledger records if the round succeeds (`None` when
    /// auditing is off).
    audit: Option<AuditKind>,
}

/// Audit-ledger accounting deferred until a round's response stages.
enum AuditKind {
    /// Stored-index query: the queried identities plus cache hits.
    Stored { indices: Vec<u32>, cached: u64 },
    /// Ad-hoc feature query: row count only (no stored identity).
    Features { rows: u64 },
}

/// The event loop. Owns the listener, every client socket, the poller
/// and the in-flight bookkeeping; everything else reaches it through
/// the completion queue + waker.
pub(crate) struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    pending: HashMap<u64, PendingRound>,
    next_pending: u64,
    completion_tx: Sender<Completion>,
    completion_rx: Receiver<Completion>,
    waker: Waker,
    wake_rx: UnixStream,
    scratch: Vec<u8>,
    accept_backoff: Duration,
    accept_paused_until: Option<Instant>,
    /// Drain deadline, set once the stop flag is noticed.
    draining: Option<Instant>,
    /// Per-client leakage audit ledger; `None` when [`crate::ServeConfig`]
    /// disables auditing. Owned by the reactor thread — counters are
    /// plain integers, no locks on the request path.
    ledger: Option<AuditLedger>,
}

impl Reactor {
    /// Builds the reactor around an already-bound nonblocking listener
    /// and returns it with the waker [`crate::ServerHandle`] uses to
    /// nudge the loop on shutdown.
    pub fn new(listener: TcpListener, shared: Arc<Shared>) -> io::Result<(Reactor, Waker)> {
        let mut poller = Poller::new()?;
        let (waker, wake_rx) = sys::wake_pair()?;
        poller.register(fd_of(&listener), LISTENER_TOKEN, Interest::READ)?;
        poller.register(fd_of(&wake_rx), WAKER_TOKEN, Interest::READ)?;
        let (completion_tx, completion_rx) = mpsc::channel();
        let handle_waker = waker.clone();
        let ledger = shared
            .audit
            .then(|| AuditLedger::new(Arc::clone(shared.metrics.registry())));
        Ok((
            Reactor {
                poller,
                listener: Some(listener),
                shared,
                conns: HashMap::new(),
                next_conn: 0,
                pending: HashMap::new(),
                next_pending: 0,
                completion_tx,
                completion_rx,
                waker,
                wake_rx,
                scratch: vec![0u8; 64 * 1024],
                accept_backoff: ACCEPT_BACKOFF_MIN,
                accept_paused_until: None,
                draining: None,
                ledger,
            },
            handle_waker,
        ))
    }

    /// The event loop body; runs until shutdown has drained.
    pub fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if let Some(deadline) = self.draining {
                if self.conns.is_empty() {
                    break;
                }
                if Instant::now() >= deadline {
                    // Slow readers don't get to hold shutdown hostage.
                    let ids: Vec<u64> = self.conns.keys().copied().collect();
                    for id in ids {
                        self.remove_conn(id);
                    }
                    break;
                }
            }
            self.maybe_resume_accept();
            events.clear();
            if self
                .poller
                .wait(&mut events, Some(self.wait_timeout()))
                .is_err()
            {
                // A wait that cannot make progress is fatal: drain out.
                self.shared.stop.store(true, Ordering::SeqCst);
                continue;
            }
            for ev in std::mem::take(&mut events) {
                match ev.token {
                    LISTENER_TOKEN => self.on_accept(),
                    WAKER_TOKEN => drain_wake_pipe(&self.wake_rx),
                    id => {
                        if ev.closed {
                            // Full hangup: nothing is deliverable.
                            self.remove_conn(id);
                            continue;
                        }
                        if ev.readable {
                            self.on_conn_readable(id);
                        }
                        if ev.writable {
                            self.flush_and_update(id);
                        }
                    }
                }
            }
            while let Ok(c) = self.completion_rx.try_recv() {
                self.on_completion(c);
            }
        }
        // Any pending completions past this point belong to connections
        // that no longer exist; the batchers drain and exit on their own
        // stop-flag tick, joined by the server handle.
    }

    fn wait_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut t = TICK;
        if let Some(until) = self.accept_paused_until {
            t = t.min(until.saturating_duration_since(now));
        }
        if let Some(deadline) = self.draining {
            t = t.min(deadline.saturating_duration_since(now));
        }
        t
    }

    // -----------------------------------------------------------------
    // Accepting.

    fn on_accept(&mut self) {
        if self.draining.is_some() || self.accept_paused_until.is_some() {
            return;
        }
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_MIN;
                    // A socket that can't go nonblocking can't be driven
                    // by the event loop: close it rather than proceed
                    // with a mode that would hang the loop (the blocking
                    // server's set_read_timeout bug, fixed structurally).
                    if stream.set_nonblocking(true).is_err() {
                        self.shared
                            .metrics
                            .record_accept_error(AcceptErrorKind::Setup);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_conn;
                    self.next_conn += 1;
                    if self
                        .poller
                        .register(fd_of(&stream), id, Interest::READ)
                        .is_err()
                    {
                        self.shared
                            .metrics
                            .record_accept_error(AcceptErrorKind::Setup);
                        continue;
                    }
                    self.conns.insert(id, Conn::new(stream, id));
                    self.shared
                        .metrics
                        .record_connection_opened(self.conns.len() as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) => {
                    let kind = classify_accept_error(&e);
                    self.shared.metrics.record_accept_error(kind);
                    match kind {
                        // Per-connection failures consume the pending
                        // connection; keep accepting.
                        AcceptErrorKind::Aborted | AcceptErrorKind::Interrupted => continue,
                        // Resource exhaustion: back off exponentially.
                        AcceptErrorKind::Exhausted => {
                            self.pause_accept(true);
                            return;
                        }
                        // Unknown persistent errors: pace retries at the
                        // floor instead of spinning.
                        AcceptErrorKind::Setup | AcceptErrorKind::Other => {
                            self.pause_accept(false);
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Suspends accepting for one backoff window. Listener *interest*
    /// is dropped too: under level-triggered readiness a still-pending
    /// connection would otherwise wake the loop hot for the whole pause.
    fn pause_accept(&mut self, exponential: bool) {
        let pause = if exponential {
            let p = self.accept_backoff;
            self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
            p
        } else {
            ACCEPT_BACKOFF_MIN
        };
        self.accept_paused_until = Some(Instant::now() + pause);
        if let Some(l) = &self.listener {
            let _ = self.poller.modify(fd_of(l), LISTENER_TOKEN, Interest::NONE);
        }
    }

    fn maybe_resume_accept(&mut self) {
        let Some(until) = self.accept_paused_until else {
            return;
        };
        if Instant::now() < until {
            return;
        }
        self.accept_paused_until = None;
        if let Some(l) = &self.listener {
            let _ = self.poller.modify(fd_of(l), LISTENER_TOKEN, Interest::READ);
        }
        self.on_accept();
    }

    // -----------------------------------------------------------------
    // Reading and frame assembly.

    fn on_conn_readable(&mut self, id: u64) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            for _ in 0..MAX_READ_PASSES {
                match conn.stream.read(&mut self.scratch) {
                    Ok(0) => {
                        // Peer half-closed: no more requests, but
                        // everything already queued still gets answered
                        // and flushed before the socket closes.
                        conn.read_done = true;
                        conn.close_when_flushed = true;
                        break;
                    }
                    Ok(n) => {
                        if !conn.read_done {
                            conn.buf.extend_from_slice(&self.scratch[..n]);
                        }
                        if n < self.scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.remove_conn(id);
            return;
        }
        self.parse_frames(id);
        self.flush_and_update(id);
    }

    /// Drains every complete frame out of `buf`, up to the pipeline cap.
    fn parse_frames(&mut self, id: u64) {
        loop {
            let payload = {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                if conn.read_done || conn.buf.len() < 4 {
                    None
                } else if conn.inflight >= PIPELINE_CAP {
                    // Backpressure: stop reading until rounds complete.
                    conn.paused_read = true;
                    None
                } else {
                    let len =
                        u32::from_le_bytes(conn.buf[..4].try_into().expect("4 bytes")) as usize;
                    if len > MAX_FRAME_LEN {
                        // Framing corruption: not a decodable request,
                        // so there is nothing to answer — stop reading
                        // and close once prior responses have flushed.
                        conn.read_done = true;
                        conn.close_when_flushed = true;
                        conn.buf.clear();
                        None
                    } else if conn.buf.len() < 4 + len {
                        None // incomplete frame: wait for more bytes
                    } else {
                        let payload = conn.buf[4..4 + len].to_vec();
                        conn.buf.drain(..4 + len);
                        Some(payload)
                    }
                }
            };
            match payload {
                Some(p) => self.handle_request(id, p),
                None => return,
            }
        }
    }

    // -----------------------------------------------------------------
    // Request handling (validation identical to the blocking server's).

    fn handle_request(&mut self, id: u64, payload: Vec<u8>) {
        let t0 = Instant::now();
        let seq = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let s = conn.next_seq;
            conn.next_seq += 1;
            s
        };
        match decode_request(&payload) {
            Err(e) => {
                self.shared.metrics.record_error();
                self.stage_response(
                    id,
                    seq,
                    t0,
                    &Response::Error(format!("bad request: {e}")),
                    true,
                );
            }
            Ok(Request::Ping) => self.stage_response(id, seq, t0, &Response::Pong, false),
            Ok(Request::Info) => {
                let info = self.shared.info.clone();
                self.stage_response(id, seq, t0, &Response::Info(info), false);
            }
            Ok(Request::Metrics) => {
                let report = self.shared.metrics.report();
                self.stage_response(id, seq, t0, &Response::Metrics(report), false);
            }
            Ok(Request::MetricsText) => {
                let text = self.shared.metrics.exposition();
                self.stage_response(id, seq, t0, &Response::MetricsText(text), false);
            }
            Ok(Request::Shutdown) => {
                self.stage_response(id, seq, t0, &Response::ShuttingDown, false);
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.read_done = true;
                    conn.close_when_flushed = true;
                }
                self.flush_and_update(id);
                self.shared.stop.store(true, Ordering::SeqCst);
                // The drain starts on the next loop turn.
            }
            Ok(Request::PredictByIndex(indices)) => self.start_stored(id, seq, t0, indices, None),
            Ok(Request::PredictFeatures(slices)) => self.start_adhoc(id, seq, t0, slices, None),
            Ok(Request::PredictByIndexTraced(indices, ctx)) => {
                self.start_stored(id, seq, t0, indices, Some(ctx))
            }
            Ok(Request::PredictFeaturesTraced(slices, ctx)) => {
                self.start_adhoc(id, seq, t0, slices, Some(ctx))
            }
            Ok(Request::TraceExport) => {
                let text = self.shared.tracer.to_jsonl();
                self.stage_response(id, seq, t0, &Response::TraceJsonl(text), false);
            }
            Ok(Request::AuditReport) => {
                let n = self.shared.info.n_samples as u64;
                let summary = match &mut self.ledger {
                    Some(ledger) => ledger.summary(n, Instant::now()),
                    // Auditing off: an empty report, not an error — the
                    // op stays probeable either way.
                    None => AuditSummary {
                        n_samples: n,
                        clients: Vec::new(),
                    },
                };
                self.stage_response(id, seq, t0, &Response::Audit(summary), false);
            }
            Ok(
                Request::JobSubmit(_)
                | Request::JobStatus(_)
                | Request::JobList
                | Request::JobCancel(_)
                | Request::JobAttach { .. }
                | Request::JobReport(_),
            ) => {
                // Job ops share the tag space but are a campaign-daemon
                // surface; a prediction server rejects them with a typed
                // error so a misdirected client fails loudly, not oddly.
                self.shared.metrics.record_error();
                self.stage_response(
                    id,
                    seq,
                    t0,
                    &Response::Error(
                        "job ops are served by fia-campaignd, not a prediction server".to_string(),
                    ),
                    true,
                );
            }
            Ok(Request::DeclareSession(tag)) => {
                if let Some(conn) = self.conns.get_mut(&id) {
                    // An empty tag reverts to the per-connection default.
                    conn.label = if tag.is_empty() {
                        format!("conn-{id}")
                    } else {
                        tag
                    };
                }
                self.stage_response(id, seq, t0, &Response::SessionAck, false);
            }
        }
    }

    /// Opens the `serve.request` span for a traced request: a
    /// server-side root *linked* to the client-side span id carried in
    /// the frame, which is what joins the two JSONL streams after a
    /// merge. Untraced requests cost no span at all.
    fn open_request_span(&self, ctx: Option<TraceContext>, op: &str) -> Option<Span> {
        ctx.map(|c| {
            let s = self
                .shared
                .tracer
                .root_with_parent("serve.request", c.parent_span);
            s.record_u64("trace_id", c.trace_id);
            s.record_str("op", op);
            s
        })
    }

    /// Records one successfully answered stored-index query against the
    /// connection's ledger entry. Called exactly where a `Scores`
    /// response stages — the same event the client meters — which is
    /// what the server/client `QueryCost` parity guarantee rests on.
    fn audit_stored(&mut self, id: u64, indices: &[u32], cached_rows: u64) {
        if let (Some(ledger), Some(conn)) = (&mut self.ledger, self.conns.get(&id)) {
            ledger.record_stored(&conn.label, indices, cached_rows, Instant::now());
        }
    }

    /// Ledger entry for one successfully answered ad-hoc feature query.
    fn audit_features(&mut self, id: u64, rows: u64) {
        if let (Some(ledger), Some(conn)) = (&mut self.ledger, self.conns.get(&id)) {
            ledger.record_features(&conn.label, rows, Instant::now());
        }
    }

    fn start_stored(
        &mut self,
        id: u64,
        seq: u64,
        t0: Instant,
        indices: Vec<u32>,
        trace: Option<TraceContext>,
    ) {
        let req_span = self.open_request_span(trace, "predict_by_index");
        if let Some(s) = &req_span {
            s.record_u64("rows", indices.len() as u64);
        }
        let n = self.shared.info.n_samples;
        if let Some(&bad) = indices.iter().find(|&&i| (i as usize) >= n) {
            if let Some(s) = &req_span {
                s.record_str("outcome", "rejected");
            }
            self.shared.metrics.record_error();
            let resp =
                Response::Error(format!("sample index {bad} out of range (n_samples = {n})"));
            self.stage_response(id, seq, t0, &resp, true);
            return;
        }
        // Keep the u32 identities: the audit ledger tracks distinct and
        // repeated stored rows by exactly what the client asked for.
        let raw = indices;
        let indices: Vec<usize> = raw.iter().map(|&i| i as usize).collect();
        if indices.is_empty() {
            // Nothing to compute or defend: answer the empty round
            // directly. It still counts as one query in the ledger,
            // exactly as the client meters it.
            self.audit_stored(id, &raw, 0);
            if let Some(s) = &req_span {
                s.record_str("outcome", "ok");
            }
            let resp = Response::Scores {
                scores: Matrix::zeros(0, self.shared.info.n_classes),
                cached_rows: 0,
            };
            self.stage_response(id, seq, t0, &resp, false);
            return;
        }
        let StoredPlan { out, hits, groups } = {
            let cache_span = req_span.as_ref().map(|s| s.child("serve.cache"));
            let plan = self.shared.dispatcher.plan_stored(&indices);
            if let Some(cs) = &cache_span {
                cs.record_u64("hit_rows", plan.hits);
                cs.record_u64(
                    "miss_rows",
                    (indices.len() as u64).saturating_sub(plan.hits),
                );
            }
            plan
        };
        if groups.is_empty() {
            // Fully cache-served: no round, no protocol cost.
            self.audit_stored(id, &raw, hits);
            if let Some(s) = &req_span {
                s.record_str("outcome", "ok");
                s.record_u64("cached_rows", hits);
            }
            let resp = Response::Scores {
                scores: out,
                cached_rows: hits as u32,
            };
            self.stage_response(id, seq, t0, &resp, false);
            return;
        }
        let pid = self.next_pending;
        self.next_pending += 1;
        let remaining = groups.len();
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.inflight += 1;
        }
        let dispatch_spans: Vec<Option<Span>> = groups
            .iter()
            .map(|(shard, group)| {
                req_span.as_ref().map(|s| {
                    let d = s.child("serve.dispatch");
                    d.record_u64("shard", *shard as u64);
                    d.record_u64("rows", group.len() as u64);
                    d
                })
            })
            .collect();
        let audit = self.ledger.is_some().then_some(AuditKind::Stored {
            indices: raw,
            cached: hits,
        });
        self.pending.insert(
            pid,
            PendingRound {
                conn: id,
                seq,
                t0,
                out,
                hits,
                groups,
                remaining,
                adhoc: false,
                failed: None,
                req_span,
                dispatch_spans,
                audit,
            },
        );
        let round = self.pending.get(&pid).expect("just inserted");
        for (part, (shard, group)) in round.groups.iter().enumerate() {
            let reply = ReplyTo::Reactor(ReactorReply::new(
                self.completion_tx.clone(),
                self.waker.clone(),
                pid,
                part,
            ));
            let parent = round.dispatch_spans[part].as_ref().map(|d| d.id());
            self.shared
                .dispatcher
                .send_stored_part(*shard, group, reply, parent);
        }
    }

    fn start_adhoc(
        &mut self,
        id: u64,
        seq: u64,
        t0: Instant,
        slices: Vec<Matrix>,
        trace: Option<TraceContext>,
    ) {
        let req_span = self.open_request_span(trace, "predict_features");
        let widths = &self.shared.info.party_widths;
        if slices.len() != widths.len() {
            if let Some(s) = &req_span {
                s.record_str("outcome", "rejected");
            }
            self.shared.metrics.record_error();
            let resp = Response::Error(format!(
                "expected {} party feature blocks, got {}",
                widths.len(),
                slices.len()
            ));
            self.stage_response(id, seq, t0, &resp, true);
            return;
        }
        let rows = slices.first().map(|s| s.rows()).unwrap_or_default();
        if let Some(s) = &req_span {
            s.record_u64("rows", rows as u64);
        }
        for (p, (block, &width)) in slices.iter().zip(widths).enumerate() {
            if block.cols() != width {
                if let Some(s) = &req_span {
                    s.record_str("outcome", "rejected");
                }
                self.shared.metrics.record_error();
                let resp = Response::Error(format!(
                    "party {p} block is {} wide, expected {width}",
                    block.cols()
                ));
                self.stage_response(id, seq, t0, &resp, true);
                return;
            }
            if block.rows() != rows {
                if let Some(s) = &req_span {
                    s.record_str("outcome", "rejected");
                }
                self.shared.metrics.record_error();
                let resp = Response::Error("party blocks must be row-aligned".to_string());
                self.stage_response(id, seq, t0, &resp, true);
                return;
            }
        }
        if rows == 0 {
            self.audit_features(id, 0);
            if let Some(s) = &req_span {
                s.record_str("outcome", "ok");
            }
            let resp = Response::Scores {
                scores: Matrix::zeros(0, self.shared.info.n_classes),
                cached_rows: 0,
            };
            self.stage_response(id, seq, t0, &resp, false);
            return;
        }
        let pid = self.next_pending;
        self.next_pending += 1;
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.inflight += 1;
        }
        let dispatch_span = req_span.as_ref().map(|s| {
            let d = s.child("serve.dispatch");
            d.record_u64("rows", rows as u64);
            d
        });
        let parent = dispatch_span.as_ref().map(|d| d.id());
        let audit = self
            .ledger
            .is_some()
            .then_some(AuditKind::Features { rows: rows as u64 });
        self.pending.insert(
            pid,
            PendingRound {
                conn: id,
                seq,
                t0,
                out: Matrix::zeros(0, 0),
                hits: 0,
                groups: Vec::new(),
                remaining: 1,
                adhoc: true,
                failed: None,
                req_span,
                dispatch_spans: vec![dispatch_span],
                audit,
            },
        );
        let reply = ReplyTo::Reactor(ReactorReply::new(
            self.completion_tx.clone(),
            self.waker.clone(),
            pid,
            0,
        ));
        self.shared
            .dispatcher
            .send_adhoc(slices, rows, reply, parent);
    }

    // -----------------------------------------------------------------
    // Completions.

    fn on_completion(&mut self, c: Completion) {
        let finished = {
            let Some(p) = self.pending.get_mut(&c.pending_id) else {
                return; // request's connection is long gone
            };
            p.remaining -= 1;
            // This part's dispatch span ends now, success or not.
            if let Some(slot) = p.dispatch_spans.get_mut(c.part) {
                drop(slot.take());
            }
            match c.result {
                Ok(part) => {
                    if p.adhoc {
                        p.out = part;
                    } else {
                        let group = &p.groups[c.part].1;
                        self.shared
                            .dispatcher
                            .finish_stored_part(group, &part, &mut p.out);
                    }
                }
                Err(why) => {
                    if p.failed.is_none() {
                        p.failed = Some(why);
                    }
                }
            }
            p.remaining == 0
        };
        if !finished {
            return;
        }
        let mut p = self.pending.remove(&c.pending_id).expect("checked above");
        let (resp, is_error) = match p.failed.take() {
            Some(why) => (Response::Error(why), true),
            None => (
                Response::Scores {
                    scores: std::mem::replace(&mut p.out, Matrix::zeros(0, 0)),
                    cached_rows: p.hits as u32,
                },
                false,
            ),
        };
        if let Some(s) = &p.req_span {
            s.record_str("outcome", if is_error { "error" } else { "ok" });
            if p.hits > 0 {
                s.record_u64("cached_rows", p.hits);
            }
        }
        let resume = {
            let Some(conn) = self.conns.get_mut(&p.conn) else {
                return; // connection died while the round ran
            };
            conn.inflight -= 1;
            let resume = conn.paused_read && conn.inflight < PIPELINE_CAP;
            if resume {
                conn.paused_read = false;
            }
            resume
        };
        // Ledger accounting happens only when a `Scores` response really
        // stages to a live connection — the exact event the client's own
        // cost metering counts, so the two stay equal by construction.
        if !is_error {
            match p.audit.take() {
                Some(AuditKind::Stored { indices, cached }) => {
                    self.audit_stored(p.conn, &indices, cached)
                }
                Some(AuditKind::Features { rows }) => self.audit_features(p.conn, rows),
                None => {}
            }
        }
        self.stage_response(p.conn, p.seq, p.t0, &resp, is_error);
        if resume {
            // Frames buffered while the pipeline cap held are parsed now
            // — no new readable event will announce them.
            self.parse_frames(p.conn);
            self.flush_and_update(p.conn);
        }
    }

    // -----------------------------------------------------------------
    // Response emission and writing.

    /// Encodes `resp` into `seq`'s slot and emits every response that is
    /// now next in per-connection order.
    fn stage_response(&mut self, id: u64, seq: u64, t0: Instant, resp: &Response, is_error: bool) {
        let frame = encode_response(resp).unwrap_or_else(|_| {
            encode_response(&Response::Error("response encoding failed".to_string()))
                .expect("error responses always encode")
        });
        {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            conn.staged.insert(
                seq,
                Staged {
                    frame,
                    t0,
                    error: is_error,
                },
            );
            while let Some(s) = conn.staged.remove(&conn.emit_seq) {
                conn.out
                    .extend_from_slice(&(s.frame.len() as u32).to_le_bytes());
                conn.out.extend_from_slice(&s.frame);
                if !s.error {
                    self.shared
                        .metrics
                        .record_request(s.t0.elapsed().as_micros() as u64);
                }
                conn.emit_seq += 1;
            }
        }
        self.flush_and_update(id);
    }

    /// Greedily writes buffered output, then reconciles poller interest
    /// and the close-when-flushed state.
    fn flush_and_update(&mut self, id: u64) {
        let mut dead = false;
        let removable = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if conn.out_drained() {
                conn.out.clear();
                conn.out_pos = 0;
            } else if conn.out_pos > COMPACT_THRESHOLD {
                conn.out.drain(..conn.out_pos);
                conn.out_pos = 0;
            }
            conn.removable()
        };
        if dead || removable {
            self.remove_conn(id);
            return;
        }
        self.update_interest(id);
    }

    fn update_interest(&mut self, id: u64) {
        let mut broken = false;
        {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let desired = Interest {
                read: !conn.read_done && !conn.paused_read,
                write: !conn.out_drained(),
            };
            if desired != conn.reg {
                if self.poller.modify(fd_of(&conn.stream), id, desired).is_ok() {
                    conn.reg = desired;
                } else {
                    broken = true; // unwatchable socket: drop it
                }
            }
        }
        if broken {
            self.remove_conn(id);
        }
    }

    fn remove_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = self.poller.deregister(fd_of(&conn.stream));
            self.shared
                .metrics
                .record_connection_closed(self.conns.len() as u64);
        }
    }

    // -----------------------------------------------------------------
    // Shutdown.

    /// Enters drain mode (idempotent): close the listener now, stop
    /// reading everywhere, let queued rounds finish and flush.
    fn begin_drain(&mut self) {
        if self.draining.is_some() {
            return;
        }
        self.draining = Some(Instant::now() + DRAIN_DEADLINE);
        self.accept_paused_until = None;
        if let Some(l) = self.listener.take() {
            let _ = self.poller.deregister(fd_of(&l));
            // Dropping the listener closes it: new connects are refused
            // from this instant, which is what the shutdown contract
            // promises.
        }
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.read_done = true;
                conn.close_when_flushed = true;
                conn.buf.clear();
            }
            self.flush_and_update(id);
        }
    }
}

/// What went wrong in `accept()`, coarse enough to be a counter label
/// and precise enough to pick a policy: per-connection failures are
/// retried immediately, resource exhaustion backs off.
pub(crate) fn classify_accept_error(e: &io::Error) -> AcceptErrorKind {
    // Raw errno values (Linux; EMFILE/ENFILE/ENOMEM are identical on
    // the other unices this crate compiles for).
    const EMFILE: i32 = 24;
    const ENFILE: i32 = 23;
    const ENOMEM: i32 = 12;
    #[cfg(target_os = "linux")]
    const ENOBUFS: i32 = 105;
    #[cfg(not(target_os = "linux"))]
    const ENOBUFS: i32 = 55;

    if matches!(e.raw_os_error(), Some(EMFILE | ENFILE | ENOMEM | ENOBUFS))
        || e.kind() == io::ErrorKind::OutOfMemory
    {
        return AcceptErrorKind::Exhausted;
    }
    match e.kind() {
        io::ErrorKind::ConnectionAborted | io::ErrorKind::ConnectionReset => {
            AcceptErrorKind::Aborted
        }
        io::ErrorKind::Interrupted => AcceptErrorKind::Interrupted,
        _ => AcceptErrorKind::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_errors_classify_by_errno_and_kind() {
        // EMFILE / ENFILE / ENOMEM / ENOBUFS are the fd-or-memory
        // exhaustion regime thousands of clients actually hit.
        for errno in [24, 23, 12, if cfg!(target_os = "linux") { 105 } else { 55 }] {
            assert_eq!(
                classify_accept_error(&io::Error::from_raw_os_error(errno)),
                AcceptErrorKind::Exhausted,
                "errno {errno}"
            );
        }
        assert_eq!(
            classify_accept_error(&io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "peer gave up in the backlog"
            )),
            AcceptErrorKind::Aborted
        );
        assert_eq!(
            classify_accept_error(&io::Error::new(io::ErrorKind::Interrupted, "signal")),
            AcceptErrorKind::Interrupted
        );
        assert_eq!(
            classify_accept_error(&io::Error::new(io::ErrorKind::PermissionDenied, "firewall")),
            AcceptErrorKind::Other
        );
        // WouldBlock never reaches the classifier in the accept loop,
        // but if it did it must not be misread as exhaustion.
        assert_eq!(
            classify_accept_error(&io::Error::new(io::ErrorKind::WouldBlock, "empty backlog")),
            AcceptErrorKind::Other
        );
    }

    #[test]
    fn exhaustion_backoff_doubles_and_caps() {
        // The policy the reactor applies via pause_accept(true).
        let mut backoff = ACCEPT_BACKOFF_MIN;
        let mut seen = Vec::new();
        for _ in 0..10 {
            seen.push(backoff);
            backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
        }
        assert_eq!(seen[0], Duration::from_millis(10));
        assert_eq!(seen[1], Duration::from_millis(20));
        assert!(seen.windows(2).all(|w| w[1] >= w[0]), "monotone");
        assert_eq!(*seen.last().unwrap(), ACCEPT_BACKOFF_MAX, "capped");
    }
}
