//! Sharded dispatch over the replica pool.
//!
//! Two request families, two routing policies:
//!
//! * **Stored-index queries** route by *shard*: the stored prediction
//!   set is split into consistent contiguous row ranges, one per
//!   replica, so a given sample index always lands on the same backend
//!   (its party slices stay hot there, and repeated adversary queries
//!   for one row serialize onto one queue). A request whose indices span
//!   shards is split into per-shard sub-rounds and reassembled in
//!   request order — the client sees one response either way.
//! * **Ad-hoc feature queries** have no shard affinity (they name no
//!   stored row), so they route to the least-loaded replica by queued
//!   row count.
//!
//! The [`ScoreCache`] sits here, strictly *after* the defense pipeline
//! in dataflow terms: what it stores is what a replica's batcher
//! *released* (post-defense), keyed by stored-sample index. Hits are
//! answered without touching any replica queue — no joint round, no
//! simulated protocol cost — and re-release the first-released bytes
//! bit-identically.

use crate::cache::ScoreCache;
use crate::metrics::ServerMetrics;
use crate::pool::{Job, ReplicaPool, ReplyTo, RoundInput};
use fia_linalg::Matrix;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Consistent contiguous row-range sharding of `n_rows` stored samples
/// across `n_shards` backends: shard `s` owns rows
/// `[s · ⌈n/N⌉, (s+1) · ⌈n/N⌉)` (the last shard takes the remainder).
/// The map is pure arithmetic — no state to rebalance — so every server
/// component and test agrees on row placement by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    n_rows: usize,
    n_shards: usize,
    rows_per_shard: usize,
}

impl ShardMap {
    /// A map of `n_rows` stored samples over `n_shards ≥ 1` shards.
    pub fn new(n_rows: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        ShardMap {
            n_rows,
            n_shards,
            rows_per_shard: n_rows.div_ceil(n_shards).max(1),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard owning stored row `row`.
    ///
    /// # Panics
    /// Panics when `row` is outside the stored prediction set.
    pub fn shard_of(&self, row: usize) -> usize {
        assert!(row < self.n_rows, "row {row} outside the shard map");
        (row / self.rows_per_shard).min(self.n_shards - 1)
    }

    /// The contiguous row range shard `shard` owns (possibly empty for
    /// trailing shards when `n_rows < n_shards`).
    pub fn range_of(&self, shard: usize) -> std::ops::Range<usize> {
        let lo = (shard * self.rows_per_shard).min(self.n_rows);
        let hi = ((shard + 1) * self.rows_per_shard).min(self.n_rows);
        lo..hi
    }
}

/// Routes validated prediction requests to the replica pool, answering
/// stored-index rows from the released-score cache where possible.
pub(crate) struct Dispatcher {
    pool: ReplicaPool,
    shards: ShardMap,
    /// `None` when caching is disabled (`cache_capacity == 0`).
    cache: Option<Mutex<ScoreCache>>,
    metrics: Arc<ServerMetrics>,
    n_classes: usize,
}

impl Dispatcher {
    pub fn new(
        pool: ReplicaPool,
        shards: ShardMap,
        cache: Option<ScoreCache>,
        metrics: Arc<ServerMetrics>,
        n_classes: usize,
    ) -> Self {
        debug_assert_eq!(pool.len(), shards.n_shards(), "one shard per replica");
        Dispatcher {
            pool,
            shards,
            cache: cache.map(Mutex::new),
            metrics,
            n_classes,
        }
    }

    /// Phase 1 of a stored-index request (synchronous, no pool traffic):
    /// fill cache hits directly into the output matrix and group the
    /// misses by owning shard. The reactor registers the plan's groups
    /// as in-flight parts, dispatches each with [`Self::send_stored_part`],
    /// and folds releases back in with [`Self::finish_stored_part`].
    pub fn plan_stored(&self, indices: &[usize]) -> StoredPlan {
        let n = indices.len();
        let mut out = Matrix::zeros(n, self.n_classes);

        let mut misses: Vec<(usize, usize)> = Vec::new(); // (request pos, sample index)
        if let Some(cache) = &self.cache {
            let cache = cache.lock().expect("score cache lock");
            for (pos, &idx) in indices.iter().enumerate() {
                match cache.get(idx) {
                    Some(row) => out.row_mut(pos).copy_from_slice(row),
                    None => misses.push((pos, idx)),
                }
            }
        } else {
            misses.extend(indices.iter().copied().enumerate());
        }
        let hits = (n - misses.len()) as u64;
        if self.cache.is_some() {
            self.metrics.record_cache(hits, misses.len() as u64);
        }

        // Group the misses by owning shard; each group becomes one
        // sub-round, all in flight concurrently.
        let mut by_shard: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        for (pos, idx) in misses {
            by_shard
                .entry(self.shards.shard_of(idx))
                .or_default()
                .push((pos, idx));
        }
        StoredPlan {
            out,
            hits,
            groups: by_shard.into_iter().collect(),
        }
    }

    /// Phase 2: dispatches one planned miss group to its shard,
    /// threading the request's dispatch-span id (if traced) into the
    /// job so the batcher's round span can link back. A send that fails
    /// mid-shutdown drops the job, whose reply guard delivers the error
    /// completion — the caller never has to special-case it.
    pub fn send_stored_part(
        &self,
        shard: usize,
        group: &[(usize, usize)],
        reply: ReplyTo,
        trace_parent: Option<u64>,
    ) {
        let sub_indices: Vec<usize> = group.iter().map(|&(_, idx)| idx).collect();
        let rows = sub_indices.len();
        let _ = self.pool.send(
            shard,
            Job {
                input: RoundInput::Stored(sub_indices),
                rows,
                reply,
                trace_parent,
                enqueued: Instant::now(),
            },
        );
    }

    /// Phase 3: admits one sub-round's released rows into the cache and
    /// scatters the *canonical* bytes back into request order. `admit`
    /// returns the already-resident row when a concurrent request
    /// populated the entry first, so duplicate in-flight queries for one
    /// sample all release identical bytes.
    pub fn finish_stored_part(&self, group: &[(usize, usize)], part: &Matrix, out: &mut Matrix) {
        if let Some(cache) = &self.cache {
            let mut cache = cache.lock().expect("score cache lock");
            for (r, &(pos, idx)) in group.iter().enumerate() {
                let canonical = cache.admit(idx, part.row(r).to_vec());
                out.row_mut(pos).copy_from_slice(&canonical);
            }
        } else {
            for (r, &(pos, _)) in group.iter().enumerate() {
                out.row_mut(pos).copy_from_slice(part.row(r));
            }
        }
    }

    /// Dispatches an ad-hoc feature request to the least-loaded replica.
    /// Never cached: an ad-hoc query names no stored row, so there is no
    /// stable identity to key a re-release on. Failure is delivered via
    /// the reply guard, as in [`Self::send_stored_part`].
    pub fn send_adhoc(
        &self,
        blocks: Vec<Matrix>,
        rows: usize,
        reply: ReplyTo,
        trace_parent: Option<u64>,
    ) {
        let _ = self.pool.send(
            self.pool.least_loaded(),
            Job {
                input: RoundInput::AdHoc(blocks),
                rows,
                reply,
                trace_parent,
                enqueued: Instant::now(),
            },
        );
    }
}

/// A planned stored-index request: cache hits already filled, misses
/// grouped into per-shard sub-rounds awaiting dispatch.
pub(crate) struct StoredPlan {
    /// The released scores, request-ordered; hit rows are final, miss
    /// rows are zeros until their sub-round completes.
    pub out: Matrix,
    /// Rows served from the cache.
    pub hits: u64,
    /// `(shard, [(request pos, sample index)])` miss groups, in shard
    /// order.
    pub groups: Vec<(usize, Vec<(usize, usize)>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_covers_every_row_exactly_once() {
        for (n_rows, n_shards) in [(72, 4), (10, 3), (5, 8), (1, 1), (100, 7)] {
            let map = ShardMap::new(n_rows, n_shards);
            let mut owned = vec![0usize; n_rows];
            for s in 0..map.n_shards() {
                for row in map.range_of(s) {
                    owned[row] += 1;
                    assert_eq!(map.shard_of(row), s, "range/shard_of disagree");
                }
            }
            assert!(
                owned.iter().all(|&c| c == 1),
                "{n_rows} rows over {n_shards} shards not a partition: {owned:?}"
            );
        }
    }

    #[test]
    fn shard_ranges_are_contiguous_and_ordered() {
        let map = ShardMap::new(72, 4);
        assert_eq!(map.range_of(0), 0..18);
        assert_eq!(map.range_of(3), 54..72);
        assert_eq!(map.shard_of(0), 0);
        assert_eq!(map.shard_of(17), 0);
        assert_eq!(map.shard_of(18), 1);
        assert_eq!(map.shard_of(71), 3);
    }

    #[test]
    fn consistent_sharding_is_deterministic() {
        // "Consistent" here means pure arithmetic: two independently
        // constructed maps place every row identically.
        let a = ShardMap::new(1000, 6);
        let b = ShardMap::new(1000, 6);
        for row in 0..1000 {
            assert_eq!(a.shard_of(row), b.shard_of(row));
        }
    }

    #[test]
    #[should_panic(expected = "outside the shard map")]
    fn out_of_range_row_panics() {
        ShardMap::new(10, 2).shard_of(10);
    }

    #[test]
    fn more_shards_than_rows_leaves_trailing_shards_empty() {
        let map = ShardMap::new(3, 8);
        for row in 0..3 {
            assert_eq!(map.shard_of(row), row);
        }
        for shard in 3..8 {
            assert!(map.range_of(shard).is_empty());
        }
    }
}
