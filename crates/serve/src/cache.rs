//! The released-score cache.
//!
//! The paper's adversary accumulates *released* prediction rounds, so
//! what the cache stores is exactly what crossed the release boundary:
//! rows that already passed the [`fia_defense::DefensePipeline`]. The
//! cache therefore sits strictly *after* the defense — it never caches
//! raw model scores — and its contract is the release semantics the
//! serve-layer tests pin:
//!
//! * **First release wins.** The first time a stored row's score leaves
//!   the server, that byte pattern becomes canonical; every later query
//!   for the same row re-releases it bit-identically. In particular a
//!   noise defense is *not* re-sampled on repeat queries, so an
//!   adversary cannot average fresh noise away by asking twice.
//! * **Bounded.** Capacity is fixed at construction; a full cache evicts
//!   a seeded-pseudorandomly chosen resident entry, so long adversary
//!   campaigns stay O(capacity) in memory and eviction is reproducible
//!   under a fixed seed.
//!
//! Keys are stored-sample indices — the identity a `PredictByIndex`
//! query names. Ad-hoc feature queries have no stable identity across
//! requests and are never cached.

use std::collections::HashMap;

/// Bounded, seeded map from stored-sample index to that row's canonical
/// released confidence scores.
#[derive(Debug)]
pub struct ScoreCache {
    capacity: usize,
    /// Sample index → (released row, slot in `keys`).
    rows: HashMap<usize, (Vec<f64>, usize)>,
    /// Resident keys, for O(1) seeded eviction via swap-remove.
    keys: Vec<usize>,
    /// LCG state driving eviction choices.
    rng: u64,
}

impl ScoreCache {
    /// A cache holding at most `capacity` released rows; `seed` fixes
    /// the eviction sequence. `capacity == 0` is a valid always-miss
    /// cache (used to represent "caching disabled").
    pub fn new(capacity: usize, seed: u64) -> Self {
        ScoreCache {
            capacity,
            rows: HashMap::with_capacity(capacity.min(1 << 16)),
            keys: Vec::with_capacity(capacity.min(1 << 16)),
            rng: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The canonical released row for `index`, if one is resident.
    pub fn get(&self, index: usize) -> Option<&[f64]> {
        self.rows.get(&index).map(|(row, _)| row.as_slice())
    }

    /// Registers `released` as the canonical row for `index` and returns
    /// the canonical bytes to release for this query: the *already
    /// resident* row when a concurrent round populated the entry first
    /// (first release wins), otherwise `released` itself. The returned
    /// row is what the caller must send to the client, so duplicate
    /// in-flight queries for one index all release identical bytes.
    pub fn admit(&mut self, index: usize, released: Vec<f64>) -> Vec<f64> {
        if let Some((resident, _)) = self.rows.get(&index) {
            return resident.clone();
        }
        if self.capacity == 0 {
            return released;
        }
        if self.keys.len() >= self.capacity {
            self.evict_one();
        }
        self.keys.push(index);
        self.rows
            .insert(index, (released.clone(), self.keys.len() - 1));
        released
    }

    /// Evicts one seeded-pseudorandomly chosen resident entry.
    fn evict_one(&mut self) {
        debug_assert!(!self.keys.is_empty());
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let slot = ((self.rng >> 33) as usize) % self.keys.len();
        let evicted = self.keys.swap_remove(slot);
        self.rows.remove(&evicted);
        // The key moved into `slot` by swap_remove needs its back-pointer
        // fixed so future evictions stay O(1).
        if let Some(&moved) = self.keys.get(slot) {
            if let Some((_, s)) = self.rows.get_mut(&moved) {
                *s = slot;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f64) -> Vec<f64> {
        vec![v, 1.0 - v]
    }

    #[test]
    fn first_release_wins_and_is_bit_identical() {
        let mut c = ScoreCache::new(8, 1);
        let first = c.admit(3, row(0.25));
        assert_eq!(first, row(0.25));
        // A later round computed a *different* value for the same row
        // (different batch composition → different defense noise); the
        // cache must release the original bytes, not the new ones.
        let again = c.admit(3, row(0.75));
        assert_eq!(again, row(0.25));
        assert_eq!(c.get(3), Some(row(0.25).as_slice()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_bounds_residency() {
        let mut c = ScoreCache::new(4, 9);
        for i in 0..100 {
            c.admit(i, row(i as f64 / 100.0));
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.capacity(), 4);
        // Whatever survived is still bit-identical to its admission.
        let survivors: Vec<usize> = (0..100).filter(|&i| c.get(i).is_some()).collect();
        assert_eq!(survivors.len(), 4);
        for &i in &survivors {
            assert_eq!(c.get(i), Some(row(i as f64 / 100.0).as_slice()));
        }
    }

    #[test]
    fn eviction_is_deterministic_under_a_fixed_seed() {
        let run = |seed: u64| -> Vec<usize> {
            let mut c = ScoreCache::new(3, seed);
            for i in 0..50 {
                c.admit(i, row(0.5));
            }
            let mut alive: Vec<usize> = (0..50).filter(|&i| c.get(i).is_some()).collect();
            alive.sort_unstable();
            alive
        };
        assert_eq!(run(42), run(42), "same seed, same survivors");
        assert_ne!(run(42), run(43), "different seed perturbs eviction");
    }

    #[test]
    fn zero_capacity_cache_never_stores() {
        let mut c = ScoreCache::new(0, 7);
        let out = c.admit(1, row(0.5));
        assert_eq!(out, row(0.5), "admission still releases the input");
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn duplicate_admissions_within_capacity_do_not_grow() {
        let mut c = ScoreCache::new(2, 5);
        for _ in 0..10 {
            c.admit(0, row(0.1));
            c.admit(1, row(0.2));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Some(row(0.1).as_slice()));
        assert_eq!(c.get(1), Some(row(0.2).as_slice()));
    }
}
