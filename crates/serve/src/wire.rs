//! The length-prefixed binary wire codec.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload
//! length followed by the payload; the payload's first byte is a message
//! tag. Matrices are encoded as raw IEEE-754 bit patterns, so a
//! confidence score survives the wire *bit-exactly* — which is what lets
//! an attack replayed over the network reproduce the in-process result
//! to the last ulp.
//!
//! The codec enforces a NaN-free invariant: confidence scores and
//! feature values are finite by construction everywhere in the system,
//! so a NaN on the wire can only mean corruption — both encoder and
//! decoder reject it.

use fia_core::TraceContext;
use fia_linalg::Matrix;
use std::io::{Read, Write};

use crate::audit::{AuditSummary, ClientAudit};
use crate::metrics::MetricsReport;

/// Hard cap on a frame payload (64 MiB). A length prefix above the cap
/// is treated as corruption rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// Request tags (client → server).
mod req_tag {
    pub const PING: u8 = 0x01;
    pub const PREDICT_BY_INDEX: u8 = 0x02;
    pub const PREDICT_FEATURES: u8 = 0x03;
    pub const INFO: u8 = 0x04;
    pub const METRICS: u8 = 0x05;
    pub const SHUTDOWN: u8 = 0x06;
    pub const METRICS_TEXT: u8 = 0x07;
    // Traced prediction ops carry a 16-byte trace context *before* the
    // legacy body. They are new tags rather than optional suffixes on
    // 0x02/0x03 because the decoder rejects trailing bytes — the legacy
    // encodings stay bit-identical for untraced clients.
    pub const PREDICT_BY_INDEX_TRACED: u8 = 0x08;
    pub const PREDICT_FEATURES_TRACED: u8 = 0x09;
    pub const TRACE_EXPORT: u8 = 0x0A;
    pub const AUDIT_REPORT: u8 = 0x0B;
    pub const DECLARE_SESSION: u8 = 0x0C;
    // Campaign-job ops (served by `fia-campaignd`; a prediction server
    // answers them with a typed Error so the tag space stays unified).
    pub const JOB_SUBMIT: u8 = 0x0D;
    pub const JOB_STATUS: u8 = 0x0E;
    pub const JOB_LIST: u8 = 0x0F;
    pub const JOB_CANCEL: u8 = 0x10;
    pub const JOB_ATTACH: u8 = 0x11;
    pub const JOB_REPORT: u8 = 0x12;
}

/// Response tags (server → client).
mod resp_tag {
    pub const PONG: u8 = 0x81;
    pub const SCORES: u8 = 0x82;
    pub const INFO: u8 = 0x83;
    pub const METRICS: u8 = 0x84;
    pub const SHUTTING_DOWN: u8 = 0x85;
    pub const METRICS_TEXT: u8 = 0x86;
    pub const TRACE_JSONL: u8 = 0x87;
    pub const AUDIT: u8 = 0x88;
    pub const SESSION_ACK: u8 = 0x89;
    pub const JOB_ACCEPTED: u8 = 0x8A;
    pub const JOB_INFO: u8 = 0x8B;
    pub const JOB_TABLE: u8 = 0x8C;
    pub const JOB_EVENT: u8 = 0x8D;
    pub const JOB_EVENTS_END: u8 = 0x8E;
    pub const JOB_REPORT_BLOB: u8 = 0x8F;
    pub const ERROR: u8 = 0xEE;
}

/// Cap on a client-declared session tag (bytes) — a label, not a blob.
pub const MAX_SESSION_TAG_LEN: usize = 256;

/// Cap on a job's failure-detail string (bytes) on the wire.
pub const MAX_JOB_DETAIL_LEN: usize = 1024;

/// Lifecycle state of a submitted campaign job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Pending,
    /// A worker is driving the campaign.
    Running,
    /// Finished; a report blob is available.
    Completed,
    /// The campaign errored; see [`JobStatusInfo::detail`].
    Failed,
    /// Canceled before completion.
    Canceled,
}

impl JobState {
    /// Stable single-byte wire encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            JobState::Pending => 0,
            JobState::Running => 1,
            JobState::Completed => 2,
            JobState::Failed => 3,
            JobState::Canceled => 4,
        }
    }

    /// Decodes the wire byte; unknown values are malformed.
    pub fn from_u8(b: u8) -> Result<JobState, WireError> {
        Ok(match b {
            0 => JobState::Pending,
            1 => JobState::Running,
            2 => JobState::Completed,
            3 => JobState::Failed,
            4 => JobState::Canceled,
            _ => return Err(WireError::Malformed("unknown job state byte")),
        })
    }

    /// Short stable identifier (`"pending"`, `"running"`, …).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }

    /// `true` once the job can no longer make progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Canceled
        )
    }
}

/// One row of the campaign daemon's job table: identity, lifecycle
/// state, accumulation progress and the budget meter as last
/// checkpointed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatusInfo {
    /// Daemon-assigned job id (monotonic, stable across restarts).
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The job's scenario fingerprint (shared-deployment key).
    pub fingerprint: String,
    /// Accumulation chunks completed so far.
    pub chunks_done: u64,
    /// Corpus rows accumulated so far.
    pub rows_done: u64,
    /// Rows the full campaign would accumulate.
    pub rows_planned: u64,
    /// Oracle rounds spent so far.
    pub queries: u64,
    /// Confidence rows spent so far.
    pub rows: u64,
    /// Rows answered from the deployment's released-score cache.
    pub cached_rows: u64,
    /// Times the daemon resumed this job from its checkpoint log.
    pub resumes: u64,
    /// Events appended to the job's stream so far (the next attach
    /// sequence number).
    pub events: u64,
    /// Failure reason for [`JobState::Failed`] jobs; empty otherwise.
    pub detail: String,
}

/// Everything that can go wrong while encoding, decoding or transporting
/// a frame.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/stream failure.
    Io(std::io::Error),
    /// The stream ended inside a frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// Unknown message tag.
    BadTag(u8),
    /// Structurally invalid payload (bad counts, trailing bytes, …).
    Malformed(&'static str),
    /// A non-finite value where the protocol requires finite ones.
    NonFinite,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Truncated => write!(f, "frame truncated mid-message"),
            WireError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
            WireError::NonFinite => write!(f, "non-finite value violates the wire invariant"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// Static facts about a deployment, answered to `Info` requests so a
/// remote adversary can size its attack without out-of-band knowledge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Number of aligned samples the deployment can answer by index.
    pub n_samples: usize,
    /// Total feature width `d` of the joint model.
    pub n_features: usize,
    /// Number of classes `c` in each revealed confidence vector.
    pub n_classes: usize,
    /// Per-party feature widths, in party id order.
    pub party_widths: Vec<usize>,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One prediction round over stored sample indices.
    PredictByIndex(Vec<u32>),
    /// One prediction round over ad-hoc inputs: one `n × d_p` feature
    /// block per party, in party id order.
    PredictFeatures(Vec<Matrix>),
    /// Ask for the deployment's static facts.
    Info,
    /// Ask for the server's live metrics snapshot.
    Metrics,
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Ask for the full telemetry surface as Prometheus-style text
    /// exposition (server registry + process-global instruments).
    MetricsText,
    /// [`Request::PredictByIndex`] carrying a distributed-trace context:
    /// the server opens a `serve.request` span parented to the client's
    /// span so merged traces join across the process boundary.
    PredictByIndexTraced(Vec<u32>, TraceContext),
    /// [`Request::PredictFeatures`] carrying a distributed-trace context.
    PredictFeaturesTraced(Vec<Matrix>, TraceContext),
    /// Ask for the server's finished spans as JSONL — the server half of
    /// a merged cross-process trace.
    TraceExport,
    /// Ask for the per-client audit ledger summary.
    AuditReport,
    /// Declare a session tag for this connection: subsequent audit
    /// accounting is keyed by the tag instead of the connection id (and
    /// aggregates across reconnections that declare the same tag).
    DeclareSession(String),
    /// Submit a campaign job to a `fia-campaignd` daemon. The payload is
    /// an opaque versioned job-spec blob (the wire layer does not
    /// interpret it).
    JobSubmit(Vec<u8>),
    /// Ask for one job's status row.
    JobStatus(u64),
    /// Ask for the daemon's full job table.
    JobList,
    /// Ask the daemon to cancel a job (answered with the job's status
    /// row after the cancel request lands).
    JobCancel(u64),
    /// Attach to a job's event stream from a sequence number: the daemon
    /// replays events `from_seq..` and then streams live ones, each as a
    /// [`Response::JobEvent`], ending with [`Response::JobEventsEnd`].
    JobAttach {
        /// The job to attach to.
        id: u64,
        /// First event sequence number to deliver (0 = from the start).
        from_seq: u64,
    },
    /// Ask for a completed job's typed outcome blob.
    JobReport(u64),
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// The revealed `n × c` confidence matrix for a prediction round,
    /// plus how many of its rows were re-released from the server's
    /// score cache (adversary-visible query-cost accounting: a cached
    /// row cost the deployment no joint prediction round).
    Scores {
        /// The released confidence matrix.
        scores: Matrix,
        /// Rows answered from the released-score cache.
        cached_rows: u32,
    },
    /// Deployment facts.
    Info(ServerInfo),
    /// Live metrics snapshot.
    Metrics(MetricsReport),
    /// Acknowledgement that the server is shutting down.
    ShuttingDown,
    /// Prometheus-style text exposition of the server's telemetry.
    MetricsText(String),
    /// The server's finished spans, one JSON object per line.
    TraceJsonl(String),
    /// Per-client audit ledger summary.
    Audit(AuditSummary),
    /// Acknowledgement of a declared session tag.
    SessionAck,
    /// A submitted job was accepted under this id.
    JobAccepted(u64),
    /// One job's status row.
    JobInfo(JobStatusInfo),
    /// The daemon's job table, in id order.
    JobTable(Vec<JobStatusInfo>),
    /// One event from an attached job's stream.
    JobEvent {
        /// The job the event belongs to.
        id: u64,
        /// Gapless per-job sequence number (line number in the job's
        /// event log).
        seq: u64,
        /// The event as one compact JSON object.
        json: String,
    },
    /// The attached stream ended (the job reached a terminal state).
    JobEventsEnd {
        /// The job whose stream ended.
        id: u64,
        /// The sequence number the next attach should resume from.
        next_seq: u64,
    },
    /// A completed job's typed outcome blob (opaque to the wire layer).
    JobReportBlob(Vec<u8>),
    /// Server-side rejection with a human-readable reason.
    Error(String),
}

// ---------------------------------------------------------------------
// Primitive writers/readers over a byte buffer.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Length-prefixed UTF-8 string, capped at `max` bytes.
fn put_str(out: &mut Vec<u8>, s: &str, max: usize) -> Result<(), WireError> {
    if s.len() > max {
        return Err(WireError::Malformed("string exceeds field cap"));
    }
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// A cursor over a received payload.
struct Scan<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Scan<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Scan { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed UTF-8 string, capped at `max` bytes.
    fn str(&mut self, max: usize) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        if n > max {
            return Err(WireError::Malformed("string exceeds field cap"));
        }
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map(|s| s.to_string())
            .map_err(|_| WireError::Malformed("string not utf-8"))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after message"))
        }
    }
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) -> Result<(), WireError> {
    if !m.is_finite() {
        return Err(WireError::NonFinite);
    }
    put_u32(out, m.rows() as u32);
    put_u32(out, m.cols() as u32);
    for &v in m.as_slice() {
        put_f64(out, v);
    }
    Ok(())
}

fn get_matrix(scan: &mut Scan<'_>) -> Result<Matrix, WireError> {
    let rows = scan.u32()? as usize;
    let cols = scan.u32()? as usize;
    let elements = rows.saturating_mul(cols);
    if elements > MAX_FRAME_LEN / 8 {
        return Err(WireError::Malformed("matrix larger than frame cap"));
    }
    // The allocation is sized from an attacker-controlled header: the
    // remaining payload must actually hold that many elements, so a
    // tiny frame cannot request a frame-cap-sized buffer.
    if elements * 8 > scan.buf.len() - scan.pos {
        return Err(WireError::Truncated);
    }
    let mut data = Vec::with_capacity(elements);
    for _ in 0..rows * cols {
        let v = scan.f64()?;
        if !v.is_finite() {
            return Err(WireError::NonFinite);
        }
        data.push(v);
    }
    Matrix::from_vec(rows, cols, data).map_err(|_| WireError::Malformed("bad matrix shape"))
}

/// 16-byte trace context: trace id then parent span id, little-endian.
fn put_trace(out: &mut Vec<u8>, ctx: &TraceContext) {
    put_u64(out, ctx.trace_id);
    put_u64(out, ctx.parent_span);
}

fn get_trace(scan: &mut Scan<'_>) -> Result<TraceContext, WireError> {
    Ok(TraceContext {
        trace_id: scan.u64()?,
        parent_span: scan.u64()?,
    })
}

fn put_audit(out: &mut Vec<u8>, audit: &AuditSummary) -> Result<(), WireError> {
    put_u64(out, audit.n_samples);
    put_u32(out, audit.clients.len() as u32);
    for c in &audit.clients {
        put_str(out, &c.client, MAX_SESSION_TAG_LEN)?;
        put_u64(out, c.queries);
        put_u64(out, c.rows);
        put_u64(out, c.cached_rows);
        put_u64(out, c.distinct_rows);
        put_u64(out, c.repeat_rows);
        put_u64(out, c.feature_queries);
        if !c.window_rate_rps.is_finite() {
            return Err(WireError::NonFinite);
        }
        put_f64(out, c.window_rate_rps);
        put_u32(out, c.flags.len() as u32);
        for f in &c.flags {
            put_str(out, f, 64)?;
        }
    }
    Ok(())
}

fn get_audit(scan: &mut Scan<'_>) -> Result<AuditSummary, WireError> {
    let n_samples = scan.u64()?;
    let n_clients = scan.u32()? as usize;
    if n_clients > 65_536 {
        return Err(WireError::Malformed("implausible audit client count"));
    }
    let mut clients = Vec::with_capacity(n_clients.min(1024));
    for _ in 0..n_clients {
        let client = scan.str(MAX_SESSION_TAG_LEN)?;
        let queries = scan.u64()?;
        let rows = scan.u64()?;
        let cached_rows = scan.u64()?;
        let distinct_rows = scan.u64()?;
        let repeat_rows = scan.u64()?;
        let feature_queries = scan.u64()?;
        let window_rate_rps = scan.f64()?;
        if !window_rate_rps.is_finite() {
            return Err(WireError::NonFinite);
        }
        let n_flags = scan.u32()? as usize;
        if n_flags > 64 {
            return Err(WireError::Malformed("implausible audit flag count"));
        }
        let mut flags = Vec::with_capacity(n_flags);
        for _ in 0..n_flags {
            flags.push(scan.str(64)?);
        }
        clients.push(ClientAudit {
            client,
            queries,
            rows,
            cached_rows,
            distinct_rows,
            repeat_rows,
            feature_queries,
            window_rate_rps,
            flags,
        });
    }
    Ok(AuditSummary { n_samples, clients })
}

/// Length-prefixed opaque byte blob (job specs, outcome blobs).
fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) -> Result<(), WireError> {
    if bytes.len() > MAX_FRAME_LEN {
        return Err(WireError::TooLarge(bytes.len()));
    }
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
    Ok(())
}

fn get_bytes(scan: &mut Scan<'_>) -> Result<Vec<u8>, WireError> {
    let n = scan.u32()? as usize;
    if n > MAX_FRAME_LEN {
        return Err(WireError::Malformed("blob larger than frame cap"));
    }
    Ok(scan.take(n)?.to_vec())
}

fn put_job_info(out: &mut Vec<u8>, info: &JobStatusInfo) -> Result<(), WireError> {
    put_u64(out, info.id);
    out.push(info.state.as_u8());
    put_str(out, &info.fingerprint, 64)?;
    put_u64(out, info.chunks_done);
    put_u64(out, info.rows_done);
    put_u64(out, info.rows_planned);
    put_u64(out, info.queries);
    put_u64(out, info.rows);
    put_u64(out, info.cached_rows);
    put_u64(out, info.resumes);
    put_u64(out, info.events);
    put_str(out, &info.detail, MAX_JOB_DETAIL_LEN)?;
    Ok(())
}

fn get_job_info(scan: &mut Scan<'_>) -> Result<JobStatusInfo, WireError> {
    Ok(JobStatusInfo {
        id: scan.u64()?,
        state: JobState::from_u8(scan.u8()?)?,
        fingerprint: scan.str(64)?,
        chunks_done: scan.u64()?,
        rows_done: scan.u64()?,
        rows_planned: scan.u64()?,
        queries: scan.u64()?,
        rows: scan.u64()?,
        cached_rows: scan.u64()?,
        resumes: scan.u64()?,
        events: scan.u64()?,
        detail: scan.str(MAX_JOB_DETAIL_LEN)?,
    })
}

// ---------------------------------------------------------------------
// Message codecs.

/// Serializes a request into a frame payload (no length prefix).
pub fn encode_request(req: &Request) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    match req {
        Request::Ping => out.push(req_tag::PING),
        Request::PredictByIndex(indices) => {
            out.push(req_tag::PREDICT_BY_INDEX);
            put_u32(&mut out, indices.len() as u32);
            for &i in indices {
                put_u32(&mut out, i);
            }
        }
        Request::PredictFeatures(slices) => {
            out.push(req_tag::PREDICT_FEATURES);
            put_u32(&mut out, slices.len() as u32);
            for m in slices {
                put_matrix(&mut out, m)?;
            }
        }
        Request::Info => out.push(req_tag::INFO),
        Request::Metrics => out.push(req_tag::METRICS),
        Request::Shutdown => out.push(req_tag::SHUTDOWN),
        Request::MetricsText => out.push(req_tag::METRICS_TEXT),
        Request::PredictByIndexTraced(indices, ctx) => {
            out.push(req_tag::PREDICT_BY_INDEX_TRACED);
            put_trace(&mut out, ctx);
            put_u32(&mut out, indices.len() as u32);
            for &i in indices {
                put_u32(&mut out, i);
            }
        }
        Request::PredictFeaturesTraced(slices, ctx) => {
            out.push(req_tag::PREDICT_FEATURES_TRACED);
            put_trace(&mut out, ctx);
            put_u32(&mut out, slices.len() as u32);
            for m in slices {
                put_matrix(&mut out, m)?;
            }
        }
        Request::TraceExport => out.push(req_tag::TRACE_EXPORT),
        Request::AuditReport => out.push(req_tag::AUDIT_REPORT),
        Request::DeclareSession(tag) => {
            out.push(req_tag::DECLARE_SESSION);
            put_str(&mut out, tag, MAX_SESSION_TAG_LEN)?;
        }
        Request::JobSubmit(blob) => {
            out.push(req_tag::JOB_SUBMIT);
            put_bytes(&mut out, blob)?;
        }
        Request::JobStatus(id) => {
            out.push(req_tag::JOB_STATUS);
            put_u64(&mut out, *id);
        }
        Request::JobList => out.push(req_tag::JOB_LIST),
        Request::JobCancel(id) => {
            out.push(req_tag::JOB_CANCEL);
            put_u64(&mut out, *id);
        }
        Request::JobAttach { id, from_seq } => {
            out.push(req_tag::JOB_ATTACH);
            put_u64(&mut out, *id);
            put_u64(&mut out, *from_seq);
        }
        Request::JobReport(id) => {
            out.push(req_tag::JOB_REPORT);
            put_u64(&mut out, *id);
        }
    }
    Ok(out)
}

/// Index-list body shared by the plain and traced predict-by-index ops.
fn get_indices(scan: &mut Scan<'_>) -> Result<Vec<u32>, WireError> {
    let n = scan.u32()? as usize;
    if n > MAX_FRAME_LEN / 4 {
        return Err(WireError::Malformed("index batch larger than frame cap"));
    }
    let mut indices = Vec::with_capacity(n);
    for _ in 0..n {
        indices.push(scan.u32()?);
    }
    Ok(indices)
}

/// Per-party feature-block body shared by the plain and traced
/// predict-features ops.
fn get_feature_blocks(scan: &mut Scan<'_>) -> Result<Vec<Matrix>, WireError> {
    let parties = scan.u32()? as usize;
    if parties > 4096 {
        return Err(WireError::Malformed("implausible party count"));
    }
    let mut slices = Vec::with_capacity(parties);
    for _ in 0..parties {
        slices.push(get_matrix(scan)?);
    }
    Ok(slices)
}

/// Parses a frame payload into a request, rejecting trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut scan = Scan::new(payload);
    let req = match scan.u8()? {
        req_tag::PING => Request::Ping,
        req_tag::PREDICT_BY_INDEX => Request::PredictByIndex(get_indices(&mut scan)?),
        req_tag::PREDICT_FEATURES => Request::PredictFeatures(get_feature_blocks(&mut scan)?),
        req_tag::INFO => Request::Info,
        req_tag::METRICS => Request::Metrics,
        req_tag::SHUTDOWN => Request::Shutdown,
        req_tag::METRICS_TEXT => Request::MetricsText,
        req_tag::PREDICT_BY_INDEX_TRACED => {
            let ctx = get_trace(&mut scan)?;
            Request::PredictByIndexTraced(get_indices(&mut scan)?, ctx)
        }
        req_tag::PREDICT_FEATURES_TRACED => {
            let ctx = get_trace(&mut scan)?;
            Request::PredictFeaturesTraced(get_feature_blocks(&mut scan)?, ctx)
        }
        req_tag::TRACE_EXPORT => Request::TraceExport,
        req_tag::AUDIT_REPORT => Request::AuditReport,
        req_tag::DECLARE_SESSION => Request::DeclareSession(scan.str(MAX_SESSION_TAG_LEN)?),
        req_tag::JOB_SUBMIT => Request::JobSubmit(get_bytes(&mut scan)?),
        req_tag::JOB_STATUS => Request::JobStatus(scan.u64()?),
        req_tag::JOB_LIST => Request::JobList,
        req_tag::JOB_CANCEL => Request::JobCancel(scan.u64()?),
        req_tag::JOB_ATTACH => Request::JobAttach {
            id: scan.u64()?,
            from_seq: scan.u64()?,
        },
        req_tag::JOB_REPORT => Request::JobReport(scan.u64()?),
        t => return Err(WireError::BadTag(t)),
    };
    scan.finish()?;
    Ok(req)
}

/// Serializes a response into a frame payload (no length prefix).
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    match resp {
        Response::Pong => out.push(resp_tag::PONG),
        Response::Scores {
            scores,
            cached_rows,
        } => {
            out.push(resp_tag::SCORES);
            put_u32(&mut out, *cached_rows);
            put_matrix(&mut out, scores)?;
        }
        Response::Info(info) => {
            out.push(resp_tag::INFO);
            put_u32(&mut out, info.n_samples as u32);
            put_u32(&mut out, info.n_features as u32);
            put_u32(&mut out, info.n_classes as u32);
            put_u32(&mut out, info.party_widths.len() as u32);
            for &w in &info.party_widths {
                put_u32(&mut out, w as u32);
            }
        }
        Response::Metrics(m) => {
            out.push(resp_tag::METRICS);
            for v in m.as_wire_values() {
                put_f64(&mut out, v);
            }
            // Per-replica gauges, length-prefixed: (rounds, rows) pairs.
            if m.replica_rounds.len() != m.replica_rows.len() {
                return Err(WireError::Malformed("replica gauge length mismatch"));
            }
            put_u32(&mut out, m.replica_rounds.len() as u32);
            for (&rounds, &rows) in m.replica_rounds.iter().zip(&m.replica_rows) {
                put_f64(&mut out, rounds as f64);
                put_f64(&mut out, rows as f64);
            }
        }
        Response::ShuttingDown => out.push(resp_tag::SHUTTING_DOWN),
        Response::MetricsText(text) => {
            out.push(resp_tag::METRICS_TEXT);
            put_u32(&mut out, text.len() as u32);
            out.extend_from_slice(text.as_bytes());
        }
        Response::TraceJsonl(text) => {
            out.push(resp_tag::TRACE_JSONL);
            put_u32(&mut out, text.len() as u32);
            out.extend_from_slice(text.as_bytes());
        }
        Response::Audit(audit) => {
            out.push(resp_tag::AUDIT);
            put_audit(&mut out, audit)?;
        }
        Response::SessionAck => out.push(resp_tag::SESSION_ACK),
        Response::JobAccepted(id) => {
            out.push(resp_tag::JOB_ACCEPTED);
            put_u64(&mut out, *id);
        }
        Response::JobInfo(info) => {
            out.push(resp_tag::JOB_INFO);
            put_job_info(&mut out, info)?;
        }
        Response::JobTable(rows) => {
            out.push(resp_tag::JOB_TABLE);
            put_u32(&mut out, rows.len() as u32);
            for info in rows {
                put_job_info(&mut out, info)?;
            }
        }
        Response::JobEvent { id, seq, json } => {
            out.push(resp_tag::JOB_EVENT);
            put_u64(&mut out, *id);
            put_u64(&mut out, *seq);
            put_bytes(&mut out, json.as_bytes())?;
        }
        Response::JobEventsEnd { id, next_seq } => {
            out.push(resp_tag::JOB_EVENTS_END);
            put_u64(&mut out, *id);
            put_u64(&mut out, *next_seq);
        }
        Response::JobReportBlob(blob) => {
            out.push(resp_tag::JOB_REPORT_BLOB);
            put_bytes(&mut out, blob)?;
        }
        Response::Error(msg) => {
            out.push(resp_tag::ERROR);
            put_u32(&mut out, msg.len() as u32);
            out.extend_from_slice(msg.as_bytes());
        }
    }
    Ok(out)
}

/// Parses a frame payload into a response, rejecting trailing bytes.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut scan = Scan::new(payload);
    let resp = match scan.u8()? {
        resp_tag::PONG => Response::Pong,
        resp_tag::SCORES => {
            let cached_rows = scan.u32()?;
            let scores = get_matrix(&mut scan)?;
            if (cached_rows as usize) > scores.rows() {
                return Err(WireError::Malformed("cached_rows exceeds row count"));
            }
            Response::Scores {
                scores,
                cached_rows,
            }
        }
        resp_tag::INFO => {
            let n_samples = scan.u32()? as usize;
            let n_features = scan.u32()? as usize;
            let n_classes = scan.u32()? as usize;
            let parties = scan.u32()? as usize;
            if parties > 4096 {
                return Err(WireError::Malformed("implausible party count"));
            }
            let mut party_widths = Vec::with_capacity(parties);
            for _ in 0..parties {
                party_widths.push(scan.u32()? as usize);
            }
            Response::Info(ServerInfo {
                n_samples,
                n_features,
                n_classes,
                party_widths,
            })
        }
        resp_tag::METRICS => {
            let mut vals = [0.0f64; MetricsReport::WIRE_VALUES];
            for v in vals.iter_mut() {
                *v = scan.f64()?;
            }
            let mut report = MetricsReport::from_wire_values(&vals);
            let replicas = scan.u32()? as usize;
            if replicas > 4096 {
                return Err(WireError::Malformed("implausible replica count"));
            }
            for _ in 0..replicas {
                report.replica_rounds.push(scan.f64()? as u64);
                report.replica_rows.push(scan.f64()? as u64);
            }
            Response::Metrics(report)
        }
        resp_tag::SHUTTING_DOWN => Response::ShuttingDown,
        resp_tag::METRICS_TEXT => {
            let n = scan.u32()? as usize;
            if n > MAX_FRAME_LEN {
                return Err(WireError::Malformed("exposition larger than frame"));
            }
            let bytes = scan.take(n)?;
            let text = std::str::from_utf8(bytes)
                .map_err(|_| WireError::Malformed("exposition not utf-8"))?;
            Response::MetricsText(text.to_string())
        }
        resp_tag::TRACE_JSONL => {
            let n = scan.u32()? as usize;
            if n > MAX_FRAME_LEN {
                return Err(WireError::Malformed("trace export larger than frame"));
            }
            let bytes = scan.take(n)?;
            let text = std::str::from_utf8(bytes)
                .map_err(|_| WireError::Malformed("trace export not utf-8"))?;
            Response::TraceJsonl(text.to_string())
        }
        resp_tag::AUDIT => Response::Audit(get_audit(&mut scan)?),
        resp_tag::SESSION_ACK => Response::SessionAck,
        resp_tag::JOB_ACCEPTED => Response::JobAccepted(scan.u64()?),
        resp_tag::JOB_INFO => Response::JobInfo(get_job_info(&mut scan)?),
        resp_tag::JOB_TABLE => {
            let n = scan.u32()? as usize;
            if n > 65_536 {
                return Err(WireError::Malformed("implausible job table size"));
            }
            let mut rows = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                rows.push(get_job_info(&mut scan)?);
            }
            Response::JobTable(rows)
        }
        resp_tag::JOB_EVENT => {
            let id = scan.u64()?;
            let seq = scan.u64()?;
            let bytes = get_bytes(&mut scan)?;
            let json = String::from_utf8(bytes)
                .map_err(|_| WireError::Malformed("job event not utf-8"))?;
            Response::JobEvent { id, seq, json }
        }
        resp_tag::JOB_EVENTS_END => Response::JobEventsEnd {
            id: scan.u64()?,
            next_seq: scan.u64()?,
        },
        resp_tag::JOB_REPORT_BLOB => Response::JobReportBlob(get_bytes(&mut scan)?),
        resp_tag::ERROR => {
            let n = scan.u32()? as usize;
            if n > MAX_FRAME_LEN {
                return Err(WireError::Malformed("error message larger than frame"));
            }
            let bytes = scan.take(n)?;
            let msg = std::str::from_utf8(bytes)
                .map_err(|_| WireError::Malformed("error message not utf-8"))?;
            Response::Error(msg.to_string())
        }
        t => return Err(WireError::BadTag(t)),
    };
    scan.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------
// Framing over a stream.

/// Writes one frame: `u32` length prefix + payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::TooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` means the peer closed the connection
/// cleanly *between* frames; EOF inside a frame is [`WireError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::io::Cursor;

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.gen::<f64>() * 2.0 - 1.0)
    }

    fn random_trace(rng: &mut StdRng) -> fia_core::TraceContext {
        fia_core::TraceContext {
            trace_id: rng.gen(),
            parent_span: rng.gen(),
        }
    }

    fn random_job_info(rng: &mut StdRng) -> JobStatusInfo {
        let state = JobState::from_u8(rng.gen_range(0..5u8)).unwrap();
        JobStatusInfo {
            id: rng.gen(),
            state,
            fingerprint: format!("{:016x}", rng.gen::<u64>()),
            chunks_done: rng.gen_range(0..10_000u64),
            rows_done: rng.gen_range(0..1_000_000u64),
            rows_planned: rng.gen_range(0..1_000_000u64),
            queries: rng.gen_range(0..1_000_000u64),
            rows: rng.gen_range(0..1_000_000u64),
            cached_rows: rng.gen_range(0..1_000_000u64),
            resumes: rng.gen_range(0..16u64),
            events: rng.gen_range(0..100_000u64),
            detail: if state == JobState::Failed {
                "oracle failure: boom".to_string()
            } else {
                String::new()
            },
        }
    }

    fn random_request(rng: &mut StdRng, case: usize) -> Request {
        match case % 18 {
            0 => Request::Ping,
            1 => {
                // Includes the empty batch when n == 0.
                let n = rng.gen_range(0..40usize);
                Request::PredictByIndex((0..n).map(|_| rng.gen_range(0..10_000u32)).collect())
            }
            2 => {
                let parties = rng.gen_range(1..4usize);
                let rows = rng.gen_range(0..8usize);
                let slices = (0..parties)
                    .map(|_| {
                        let cols = rng.gen_range(1..6usize);
                        random_matrix(rng, rows, cols)
                    })
                    .collect();
                Request::PredictFeatures(slices)
            }
            3 => Request::Info,
            4 => Request::Metrics,
            5 => Request::MetricsText,
            6 => Request::Shutdown,
            7 => {
                let n = rng.gen_range(0..40usize);
                Request::PredictByIndexTraced(
                    (0..n).map(|_| rng.gen_range(0..10_000u32)).collect(),
                    random_trace(rng),
                )
            }
            8 => {
                let parties = rng.gen_range(1..4usize);
                let rows = rng.gen_range(0..8usize);
                let slices = (0..parties)
                    .map(|_| {
                        let cols = rng.gen_range(1..6usize);
                        random_matrix(rng, rows, cols)
                    })
                    .collect();
                Request::PredictFeaturesTraced(slices, random_trace(rng))
            }
            9 => Request::TraceExport,
            10 => Request::AuditReport,
            11 => {
                let n = rng.gen_range(0..32usize);
                Request::DeclareSession(
                    (0..n)
                        .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
                        .collect(),
                )
            }
            12 => {
                // Includes the empty blob when n == 0.
                let n = rng.gen_range(0..256usize);
                Request::JobSubmit((0..n).map(|_| rng.gen::<u32>() as u8).collect())
            }
            13 => Request::JobStatus(rng.gen()),
            14 => Request::JobList,
            15 => Request::JobCancel(rng.gen()),
            16 => Request::JobAttach {
                id: rng.gen(),
                from_seq: rng.gen_range(0..100_000u64),
            },
            _ => Request::JobReport(rng.gen()),
        }
    }

    fn random_audit(rng: &mut StdRng) -> AuditSummary {
        let n_clients = rng.gen_range(0..5usize);
        AuditSummary {
            n_samples: rng.gen_range(0..1_000_000u64),
            clients: (0..n_clients)
                .map(|i| {
                    let n_flags = rng.gen_range(0..3usize);
                    ClientAudit {
                        client: format!("client-{i}"),
                        queries: rng.gen_range(0..1_000_000u64),
                        rows: rng.gen_range(0..1_000_000u64),
                        cached_rows: rng.gen_range(0..1_000_000u64),
                        distinct_rows: rng.gen_range(0..1_000_000u64),
                        repeat_rows: rng.gen_range(0..1_000_000u64),
                        feature_queries: rng.gen_range(0..1_000u64),
                        window_rate_rps: rng.gen::<f64>() * 1e4,
                        flags: ["high-coverage", "repeat-heavy", "feature-burst"][..n_flags]
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                    }
                })
                .collect(),
        }
    }

    fn random_response(rng: &mut StdRng, case: usize) -> Response {
        match case % 16 {
            0 => Response::Pong,
            1 => {
                let rows = rng.gen_range(0..16usize);
                let cols = rng.gen_range(1..12usize);
                Response::Scores {
                    cached_rows: rng.gen_range(0..=rows) as u32,
                    scores: random_matrix(rng, rows, cols),
                }
            }
            2 => Response::Info(ServerInfo {
                n_samples: rng.gen_range(0..100_000usize),
                n_features: rng.gen_range(1..500usize),
                n_classes: rng.gen_range(2..12usize),
                party_widths: (0..rng.gen_range(1..5usize))
                    .map(|_| rng.gen_range(1..64usize))
                    .collect(),
            }),
            3 => {
                let replicas = rng.gen_range(0..5usize);
                Response::Metrics(MetricsReport {
                    requests: rng.gen_range(0..1_000_000u64),
                    rows: rng.gen_range(0..1_000_000u64),
                    rounds: rng.gen_range(0..1_000_000u64),
                    errors: rng.gen_range(0..100u64),
                    cache_hits: rng.gen_range(0..1_000_000u64),
                    cache_misses: rng.gen_range(0..1_000_000u64),
                    open_connections: rng.gen_range(0..10_000u64),
                    total_connections: rng.gen_range(0..1_000_000u64),
                    accept_errors: rng.gen_range(0..1_000u64),
                    mean_batch_fill: rng.gen::<f64>() * 64.0,
                    p50_latency_us: rng.gen::<f64>() * 1e4,
                    p99_latency_us: rng.gen::<f64>() * 1e5,
                    uptime_secs: rng.gen::<f64>() * 1e3,
                    throughput_rps: rng.gen::<f64>() * 1e5,
                    replica_rounds: (0..replicas).map(|_| rng.gen_range(0..1_000u64)).collect(),
                    replica_rows: (0..replicas).map(|_| rng.gen_range(0..10_000u64)).collect(),
                })
            }
            4 => Response::ShuttingDown,
            5 => Response::MetricsText(
                "# TYPE fia_serve_requests_total counter\nfia_serve_requests_total 7\n"
                    .repeat(rng.gen_range(0..4usize)),
            ),
            6 => Response::Error("sample index 99 out of range (n_samples = 10)".to_string()),
            7 => Response::TraceJsonl(
                "{\"id\":4294967296,\"parent\":7,\"name\":\"serve.request\"}\n"
                    .repeat(rng.gen_range(0..4usize)),
            ),
            8 => Response::Audit(random_audit(rng)),
            9 => Response::SessionAck,
            10 => Response::JobAccepted(rng.gen()),
            11 => Response::JobInfo(random_job_info(rng)),
            12 => {
                let n = rng.gen_range(0..6usize);
                Response::JobTable((0..n).map(|_| random_job_info(rng)).collect())
            }
            13 => Response::JobEvent {
                id: rng.gen(),
                seq: rng.gen_range(0..100_000u64),
                json: "{\"event\":\"chunk-done\",\"chunk\":3}".to_string(),
            },
            14 => Response::JobEventsEnd {
                id: rng.gen(),
                next_seq: rng.gen_range(0..100_000u64),
            },
            _ => {
                let n = rng.gen_range(0..256usize);
                Response::JobReportBlob((0..n).map(|_| rng.gen::<u32>() as u8).collect())
            }
        }
    }

    /// Seeded property sweep: every random frame round-trips bit-exactly,
    /// including empty batches and zero-row matrices.
    #[test]
    fn request_round_trip_sweep() {
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        for case in 0..300 {
            let req = random_request(&mut rng, case);
            let payload = encode_request(&req).unwrap();
            let back = decode_request(&payload).unwrap();
            assert_eq!(req, back, "case {case}");
        }
    }

    #[test]
    fn response_round_trip_sweep() {
        let mut rng = StdRng::seed_from_u64(0xB0B);
        for case in 0..300 {
            let resp = random_response(&mut rng, case);
            let payload = encode_response(&resp).unwrap();
            let back = decode_response(&payload).unwrap();
            assert_eq!(resp, back, "case {case}");
        }
    }

    /// A maximum-width row (one row, many columns) survives intact and
    /// bit-exactly, including subnormal and extreme-magnitude values.
    #[test]
    fn max_width_row_is_bit_exact() {
        let cols = 4096;
        let m = Matrix::from_fn(1, cols, |_, j| match j % 4 {
            0 => f64::MIN_POSITIVE / 2.0, // subnormal
            1 => -1.0 + (j as f64) * 1e-17,
            2 => 1e308,
            _ => -(j as f64) * 0.001,
        });
        let payload = encode_response(&Response::Scores {
            scores: m.clone(),
            cached_rows: 1,
        })
        .unwrap();
        match decode_response(&payload).unwrap() {
            Response::Scores {
                scores: back,
                cached_rows: 1,
            } => {
                for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    /// NaN-free invariant: both directions refuse non-finite payloads.
    #[test]
    fn nan_rejected_both_ways() {
        let bad = Matrix::from_fn(1, 2, |_, j| if j == 0 { f64::NAN } else { 0.5 });
        assert!(matches!(
            encode_response(&Response::Scores {
                scores: bad.clone(),
                cached_rows: 0
            }),
            Err(WireError::NonFinite)
        ));
        assert!(matches!(
            encode_request(&Request::PredictFeatures(vec![bad])),
            Err(WireError::NonFinite)
        ));
        // Decoder-side: craft a frame with an infinity in the score block.
        let good = Matrix::from_fn(1, 2, |_, j| j as f64);
        let mut payload = encode_response(&Response::Scores {
            scores: good,
            cached_rows: 0,
        })
        .unwrap();
        let inf_bits = f64::INFINITY.to_bits().to_le_bytes();
        let n = payload.len();
        payload[n - 8..].copy_from_slice(&inf_bits);
        assert!(matches!(
            decode_response(&payload),
            Err(WireError::NonFinite)
        ));
    }

    /// Truncated frames fail with a typed error at every cut point — the
    /// decoder must never panic or misread garbage as a message.
    #[test]
    fn truncated_payload_errors_at_every_cut() {
        let mut rng = StdRng::seed_from_u64(7);
        let req = Request::PredictFeatures(vec![
            random_matrix(&mut rng, 3, 4),
            random_matrix(&mut rng, 3, 2),
        ]);
        let payload = encode_request(&req).unwrap();
        for cut in 0..payload.len() {
            match decode_request(&payload[..cut]) {
                Err(_) => {}
                Ok(other) => panic!("cut {cut} decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_stream_frame_errors() {
        let payload = encode_request(&Request::PredictByIndex(vec![1, 2, 3])).unwrap();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        // Cut inside the length prefix and inside the payload.
        for cut in [1usize, 3, 5, framed.len() - 1] {
            let mut cursor = Cursor::new(framed[..cut].to_vec());
            assert!(
                matches!(read_frame(&mut cursor), Err(WireError::Truncated)),
                "cut {cut}"
            );
        }
        // Clean close between frames is not an error.
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Ok(None)));
    }

    #[test]
    fn huge_matrix_header_in_tiny_frame_rejected() {
        // A 17-byte payload whose matrix header claims 2^23 × 1 elements
        // (inside the element cap) must be rejected as truncated before
        // the decoder sizes any buffer from the header.
        let mut payload = vec![resp_tag::SCORES];
        payload.extend_from_slice(&0u32.to_le_bytes()); // cached_rows
        payload.extend_from_slice(&(1u32 << 23).to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_response(&payload),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(decode_request(&[0x7F]), Err(WireError::BadTag(_))));
        assert!(matches!(
            decode_response(&[0x42]),
            Err(WireError::BadTag(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = encode_request(&Request::Ping).unwrap();
        payload.push(0);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    /// Back-compat: the legacy (untraced) encodings are pinned byte for
    /// byte. A client that has never heard of trace contexts keeps
    /// producing — and a server keeps accepting — exactly these frames.
    #[test]
    fn legacy_encodings_are_bit_identical_golden_bytes() {
        assert_eq!(encode_request(&Request::Ping).unwrap(), vec![0x01]);
        assert_eq!(
            encode_request(&Request::PredictByIndex(vec![1, 258])).unwrap(),
            vec![0x02, 2, 0, 0, 0, 1, 0, 0, 0, 2, 1, 0, 0]
        );
        let m = Matrix::from_vec(1, 1, vec![1.5]).unwrap();
        let mut expect = vec![0x03, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0];
        expect.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        assert_eq!(
            encode_request(&Request::PredictFeatures(vec![m.clone()])).unwrap(),
            expect
        );
        assert_eq!(encode_request(&Request::Info).unwrap(), vec![0x04]);
        assert_eq!(encode_request(&Request::Metrics).unwrap(), vec![0x05]);
        assert_eq!(encode_request(&Request::Shutdown).unwrap(), vec![0x06]);
        assert_eq!(encode_request(&Request::MetricsText).unwrap(), vec![0x07]);
    }

    /// The traced predict layout is tag, 16-byte trace context, then the
    /// byte-identical legacy body.
    #[test]
    fn traced_predict_is_trace_context_plus_legacy_body() {
        let ctx = fia_core::TraceContext {
            trace_id: 0x1111_2222_3333_4444,
            parent_span: 0x5555_6666_7777_8888,
        };
        let indices = vec![9u32, 8, 7];
        let legacy = encode_request(&Request::PredictByIndex(indices.clone())).unwrap();
        let traced = encode_request(&Request::PredictByIndexTraced(indices.clone(), ctx)).unwrap();
        assert_eq!(traced[0], 0x08);
        assert_eq!(&traced[1..9], &ctx.trace_id.to_le_bytes());
        assert_eq!(&traced[9..17], &ctx.parent_span.to_le_bytes());
        assert_eq!(&traced[17..], &legacy[1..]);
        assert_eq!(
            decode_request(&traced).unwrap(),
            Request::PredictByIndexTraced(indices, ctx)
        );
    }

    #[test]
    fn session_tag_cap_is_enforced_both_ways() {
        let long = "x".repeat(MAX_SESSION_TAG_LEN + 1);
        assert!(matches!(
            encode_request(&Request::DeclareSession(long)),
            Err(WireError::Malformed(_))
        ));
        let ok = "campaign-abc".to_string();
        let payload = encode_request(&Request::DeclareSession(ok.clone())).unwrap();
        assert_eq!(
            decode_request(&payload).unwrap(),
            Request::DeclareSession(ok)
        );
        // Decoder-side: a crafted over-cap length prefix is rejected.
        let mut crafted = vec![0x0C];
        crafted.extend_from_slice(&((MAX_SESSION_TAG_LEN as u32) + 1).to_le_bytes());
        crafted.extend(std::iter::repeat_n(b'x', MAX_SESSION_TAG_LEN + 1));
        assert!(matches!(
            decode_request(&crafted),
            Err(WireError::Malformed(_))
        ));
    }

    /// Job-op payloads fail with a typed error at every truncation cut,
    /// and an unknown state byte is malformed rather than a panic.
    #[test]
    fn job_table_truncation_and_bad_state_rejected() {
        let mut rng = StdRng::seed_from_u64(0x10B);
        let resp = Response::JobTable(vec![random_job_info(&mut rng), random_job_info(&mut rng)]);
        let payload = encode_response(&resp).unwrap();
        assert_eq!(decode_response(&payload).unwrap(), resp);
        for cut in 0..payload.len() {
            assert!(decode_response(&payload[..cut]).is_err(), "cut {cut}");
        }
        // Corrupt the first row's state byte (tag + count + id = 13).
        let mut bad = payload.clone();
        bad[13] = 9;
        assert!(matches!(
            decode_response(&bad),
            Err(WireError::Malformed(_))
        ));
        // The detail cap is enforced on encode.
        let mut info = random_job_info(&mut rng);
        info.detail = "x".repeat(MAX_JOB_DETAIL_LEN + 1);
        assert!(matches!(
            encode_response(&Response::JobInfo(info)),
            Err(WireError::Malformed(_))
        ));
    }

    /// The job-submit blob is opaque: arbitrary bytes (including ones
    /// that look like frame headers) survive the round trip untouched.
    #[test]
    fn job_submit_blob_is_opaque_and_exact() {
        let blob: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        let payload = encode_request(&Request::JobSubmit(blob.clone())).unwrap();
        assert_eq!(decode_request(&payload).unwrap(), Request::JobSubmit(blob));
        // A crafted length prefix past the frame cap is malformed.
        let mut crafted = vec![req_tag::JOB_SUBMIT];
        crafted.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        assert!(matches!(
            decode_request(&crafted),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn audit_summary_round_trips_and_rejects_non_finite_rate() {
        let audit = AuditSummary {
            n_samples: 512,
            clients: vec![ClientAudit {
                client: "campaign-1".to_string(),
                queries: 8,
                rows: 512,
                cached_rows: 64,
                distinct_rows: 448,
                repeat_rows: 64,
                feature_queries: 0,
                window_rate_rps: 1.25,
                flags: vec!["high-coverage".to_string()],
            }],
        };
        let payload = encode_response(&Response::Audit(audit.clone())).unwrap();
        assert_eq!(decode_response(&payload).unwrap(), Response::Audit(audit));
        let bad = AuditSummary {
            n_samples: 1,
            clients: vec![ClientAudit {
                client: "x".to_string(),
                queries: 0,
                rows: 0,
                cached_rows: 0,
                distinct_rows: 0,
                repeat_rows: 0,
                feature_queries: 0,
                window_rate_rps: f64::NAN,
                flags: vec![],
            }],
        };
        assert!(matches!(
            encode_response(&Response::Audit(bad)),
            Err(WireError::NonFinite)
        ));
    }

    #[test]
    fn frame_round_trip_over_stream() {
        let req = Request::PredictByIndex(vec![9, 8, 7]);
        let payload = encode_request(&req).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = Cursor::new(buf);
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(decode_request(&back).unwrap(), req);
        assert!(matches!(read_frame(&mut cursor), Ok(None)));
    }
}
