//! Minimal, deterministic re-implementation of the subset of the `rand`
//! 0.8 API this workspace consumes.
//!
//! The build environment is fully offline, so the real crates.io `rand`
//! cannot be fetched; this in-tree crate presents the same import paths
//! (`rand::Rng`, `rand::SeedableRng`, `rand::rngs::StdRng`,
//! `rand::seq::SliceRandom`) over a xoshiro256++ generator seeded through
//! SplitMix64. Streams are *not* bit-compatible with upstream `rand` —
//! every consumer in this workspace only relies on determinism under a
//! fixed seed, never on specific values.

/// Low-level generator interface: a source of uniform `u64` words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span ≪ 2^64 in practice,
                // so a simple widening multiply keeps bias below 2^-63.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                let span = (e - s) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                s + hi as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

signed_sample_range!(i64: u64, i32: u32, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

/// User-facing generator extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a half-open (or inclusive integer) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface, mirroring `rand::SeedableRng` (only the
/// `seed_from_u64` entry point is provided — it is the only one used).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. Fast, high-quality, and reproducible.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling and sampling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn usize_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let k = rng.gen_range(0..7usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn f64_range_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_mut_ref_and_unsized() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(8);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
