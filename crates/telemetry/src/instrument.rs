//! The typed instruments a [`crate::Registry`] hands out.
//!
//! All three kinds are lock-free on the recording path: a [`Counter`] or
//! [`Gauge`] is one relaxed atomic op, a [`Histogram`] is two (bucket +
//! sum). Every instrument carries a shared recording flag (its
//! registry's): when the flag is off, recording is a single relaxed load
//! and an early return, which is what lets the serve bench price the
//! instrumentation itself.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 buckets a [`Histogram`] keeps. Bucket `0` holds the
/// value `0`; bucket `i > 0` holds values in `[2^(i-1), 2^i)`; the last
/// bucket additionally absorbs everything larger. With microsecond
/// recordings the top finite bound is ≈ 2^38 µs ≈ 3 days — far beyond
/// any latency this workspace can observe.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonic counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    recording: Arc<AtomicBool>,
}

impl Counter {
    pub(crate) fn new(recording: Arc<AtomicBool>) -> Self {
        Counter {
            value: AtomicU64::new(0),
            recording,
        }
    }

    /// Adds `n` to the counter (no-op while recording is off).
    pub fn add(&self, n: u64) {
        if self.recording.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64` (stored as raw bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
    recording: Arc<AtomicBool>,
}

impl Gauge {
    pub(crate) fn new(recording: Arc<AtomicBool>) -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
            recording,
        }
    }

    /// Sets the gauge (no-op while recording is off).
    pub fn set(&self, v: f64) {
        if self.recording.load(Ordering::Relaxed) {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log2 histogram over `u64` observations (typically
/// microseconds).
///
/// Bucket boundaries are powers of two (see [`HISTOGRAM_BUCKETS`]), so
/// recording needs no search — the bucket index is the observation's bit
/// width — and the memory footprint is fixed. Reads are relaxed and not
/// atomic across buckets; a snapshot taken while writers run may be off
/// by in-flight observations, which is the usual monitoring contract.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    recording: Arc<AtomicBool>,
}

impl Histogram {
    pub(crate) fn new(recording: Arc<AtomicBool>) -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            recording,
        }
    }

    /// The bucket index observation `v` lands in: `0` for `0`, else the
    /// bit width of `v`, clamped into the top bucket.
    pub fn bucket_index(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`2^i − 1`); the top bucket
    /// has no finite bound and reports its nominal one.
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation (no-op while recording is off).
    pub fn record(&self, v: u64) {
        if self.recording.load(Ordering::Relaxed) {
            self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Plain-old-data view of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum(),
        }
    }
}

/// Point-in-time histogram state: per-bucket (non-cumulative) counts,
/// total count and sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per log2 bucket (see [`Histogram::bucket_bound`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observation, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(true))
    }

    #[test]
    fn counter_accumulates() {
        let c = Counter::new(on());
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn recording_flag_gates_all_instruments() {
        let flag = on();
        let c = Counter::new(Arc::clone(&flag));
        let g = Gauge::new(Arc::clone(&flag));
        let h = Histogram::new(Arc::clone(&flag));
        flag.store(false, Ordering::Relaxed);
        c.inc();
        g.set(3.5);
        h.record(7);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        flag.store(true, Ordering::Relaxed);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn bucket_index_is_bit_width() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_partition_the_line() {
        // Every value in bucket i satisfies bound(i-1) < v <= bound(i).
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 20] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_bound(i), "v={v} i={i}");
            if i > 0 && i < HISTOGRAM_BUCKETS - 1 {
                assert!(v > Histogram::bucket_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::new(on());
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1011);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[3], 2); // the fives
        assert_eq!(s.buckets[10], 1); // 1000 ∈ [512, 1024)
        assert!((s.mean() - 1011.0 / 5.0).abs() < 1e-12);
        assert_eq!(
            HistogramSnapshot::mean(&Histogram::new(on()).snapshot()),
            0.0
        );
    }
}
