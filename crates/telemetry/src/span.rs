//! Hierarchical scoped timers with explicit parent handles.
//!
//! There is deliberately no thread-local "current span": the workspace's
//! parallelism is scoped threads (`par_matmul` workers, serve batchers),
//! and implicit context would either not cross those boundaries or
//! require per-thread bookkeeping. Instead a parent [`Span`] is an
//! ordinary value — [`Span::child`] takes `&self`, so handing a span to
//! a scoped worker is just a borrow.

use crate::json::ObjectBuilder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A typed span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field.
    U64(u64),
    /// Float field.
    F64(f64),
    /// String field.
    Str(String),
}

/// A finished span: identity, timing relative to the tracer's epoch, and
/// attached fields.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Tracer-unique span id.
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Span name (e.g. `campaign.chunk`).
    pub name: String,
    /// Start offset from the tracer's epoch, microseconds.
    pub start_us: u64,
    /// Absolute wall-clock start, microseconds since the Unix epoch.
    /// Monotonic offsets (`start_us`) order spans *within* one tracer;
    /// this anchor time-aligns traces merged from different processes.
    pub unix_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Fields attached while the span was open.
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanRecord {
    /// One compact JSON object (a JSONL line, sans newline).
    pub fn to_json(&self) -> String {
        let mut b = ObjectBuilder::new()
            .u64("id", self.id)
            .raw(
                "parent",
                &self
                    .parent
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "null".to_string()),
            )
            .str("name", &self.name)
            .u64("start_us", self.start_us)
            .u64("unix_us", self.unix_us)
            .u64("dur_us", self.dur_us);
        for (k, v) in &self.fields {
            b = match v {
                FieldValue::U64(n) => b.u64(k, *n),
                FieldValue::F64(x) => b.f64(k, *x),
                FieldValue::Str(s) => b.str(k, s),
            };
        }
        b.build()
    }
}

struct TracerInner {
    epoch: Instant,
    /// Wall-clock time of `epoch`, microseconds since the Unix epoch —
    /// captured once so every record's `unix_us` shares one anchor.
    epoch_unix_us: u64,
    next_id: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

/// Creates [`Span`]s and collects their finished [`SpanRecord`]s.
///
/// Cheap to clone (an `Arc`); clones share one record sink and id space.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer whose epoch is now.
    pub fn new() -> Self {
        Self::with_id_base(1)
    }

    /// A tracer whose epoch is now and whose span ids count up from
    /// `base` (clamped to at least 1 — id 0 is reserved).
    ///
    /// Distinct processes that will later *merge* their JSONL traces
    /// should pick disjoint bases (e.g. a server at `1 << 32`, clients
    /// at 1) so span ids stay unique in the merged tree and a
    /// cross-process `parent` reference is unambiguous.
    pub fn with_id_base(base: u64) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                epoch_unix_us: SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_micros() as u64)
                    .unwrap_or(0),
                next_id: AtomicU64::new(base.max(1)),
                records: Mutex::new(Vec::new()),
            }),
        }
    }

    fn open(&self, name: &str, parent: Option<u64>) -> Span {
        Span {
            tracer: self.clone(),
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name: name.to_string(),
            started: Instant::now(),
            fields: Mutex::new(Vec::new()),
            finished: AtomicU64::new(0),
        }
    }

    /// Opens a root span.
    pub fn root(&self, name: &str) -> Span {
        self.open(name, None)
    }

    /// Opens a span whose parent lives in *another* tracer — typically
    /// another process. The span is a root of this tracer's local tree
    /// but records `parent` as the remote span id, so after merging the
    /// two JSONL streams the edge resolves like any in-process link.
    pub fn root_with_parent(&self, name: &str, parent: u64) -> Span {
        self.open(name, Some(parent))
    }

    /// Finished spans so far, in finish order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner
            .records
            .lock()
            .expect("tracer records lock")
            .clone()
    }

    /// Renders every finished span as one JSONL line each (trailing
    /// newline included when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

/// An open span. Timing stops at [`Span::finish`] or on drop, whichever
/// comes first; the record then appears in the owning [`Tracer`].
pub struct Span {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
    name: String,
    started: Instant,
    fields: Mutex<Vec<(String, FieldValue)>>,
    finished: AtomicU64,
}

impl Span {
    /// This span's id (what children store as their parent).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span. Takes `&self`, so a parent can be borrowed
    /// into scoped worker threads and have children opened concurrently.
    pub fn child(&self, name: &str) -> Span {
        self.tracer.open(name, Some(self.id))
    }

    fn push_field(&self, key: &str, value: FieldValue) {
        self.fields
            .lock()
            .expect("span fields lock")
            .push((key.to_string(), value));
    }

    /// Attaches an integer field.
    pub fn record_u64(&self, key: &str, value: u64) {
        self.push_field(key, FieldValue::U64(value));
    }

    /// Attaches a float field.
    pub fn record_f64(&self, key: &str, value: f64) {
        self.push_field(key, FieldValue::F64(value));
    }

    /// Attaches a string field.
    pub fn record_str(&self, key: &str, value: &str) {
        self.push_field(key, FieldValue::Str(value.to_string()));
    }

    /// Stops the clock and files the record (idempotent; drop calls it).
    pub fn finish(&self) {
        if self.finished.swap(1, Ordering::Relaxed) != 0 {
            return;
        }
        let start_us = self
            .started
            .duration_since(self.tracer.inner.epoch)
            .as_micros() as u64;
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name.clone(),
            start_us,
            unix_us: self.tracer.inner.epoch_unix_us.saturating_add(start_us),
            dur_us: self.started.elapsed().as_micros() as u64,
            fields: self.fields.lock().expect("span fields lock").clone(),
        };
        self.tracer
            .inner
            .records
            .lock()
            .expect("tracer records lock")
            .push(record);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_is_recorded_with_parents() {
        let t = Tracer::new();
        let root = t.root("run");
        let child = root.child("chunk");
        child.record_u64("rows", 64);
        child.finish();
        root.finish();
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "chunk");
        assert_eq!(recs[0].parent, Some(recs[1].id));
        assert_eq!(recs[1].parent, None);
        assert_eq!(
            recs[0].fields,
            vec![("rows".to_string(), FieldValue::U64(64))]
        );
    }

    #[test]
    fn finish_is_idempotent_and_drop_finishes() {
        let t = Tracer::new();
        {
            let s = t.root("a");
            s.finish();
            s.finish();
        } // drop after explicit finish must not double-record
        {
            let _s = t.root("b");
        } // drop-only
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn spans_cross_scoped_threads_by_borrow() {
        let t = Tracer::new();
        let root = t.root("par");
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let root = &root;
                scope.spawn(move || {
                    let c = root.child("worker");
                    c.record_u64("idx", i);
                });
            }
        });
        root.finish();
        let recs = t.records();
        assert_eq!(recs.len(), 5);
        let root_id = recs.last().unwrap().id;
        assert!(recs[..4].iter().all(|r| r.parent == Some(root_id)));
    }

    #[test]
    fn jsonl_renders_one_line_per_span() {
        let t = Tracer::new();
        t.root("x\"y").record_str("note", "a\nb");
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"name\":\"x\\\"y\""));
        assert!(jsonl.contains("\"note\":\"a\\nb\""));
        assert!(jsonl.contains("\"parent\":null"));
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn unix_us_anchors_the_monotonic_offsets() {
        let t = Tracer::new();
        t.root("a").finish();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.root("b").finish();
        let recs = t.records();
        // Anchored to a plausible wall clock (after 2020-01-01)…
        assert!(recs[0].unix_us > 1_577_836_800_000_000);
        // …and the wall-clock gap matches the monotonic gap exactly,
        // because both derive from one captured epoch.
        assert_eq!(
            recs[1].unix_us - recs[0].unix_us,
            recs[1].start_us - recs[0].start_us
        );
        assert!(t.to_jsonl().contains("\"unix_us\":"));
    }

    #[test]
    fn id_base_offsets_the_id_space() {
        let t = Tracer::with_id_base(1 << 32);
        let a = t.root("a");
        let b = a.child("b");
        assert_eq!(a.id(), 1 << 32);
        assert_eq!(b.id(), (1 << 32) + 1);
        // Base 0 is clamped: id 0 is reserved for "no span".
        assert_eq!(Tracer::with_id_base(0).root("z").id(), 1);
    }

    #[test]
    fn root_with_parent_links_to_a_foreign_id() {
        let client = Tracer::new();
        let server = Tracer::with_id_base(1 << 32);
        let chunk = client.root("campaign.chunk");
        let req = server.root_with_parent("serve.request", chunk.id());
        req.finish();
        chunk.finish();
        let recs = server.records();
        assert_eq!(recs[0].parent, Some(chunk.id()));
        // The merged stream resolves the edge: every parent id appears.
        let mut merged = client.records();
        merged.extend(server.records());
        for r in &merged {
            if let Some(p) = r.parent {
                assert!(merged.iter().any(|o| o.id == p));
            }
        }
    }

    #[test]
    fn timing_is_monotone() {
        let t = Tracer::new();
        let root = t.root("outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let child = root.child("inner");
        child.finish();
        root.finish();
        let recs = t.records();
        let inner = &recs[0];
        let outer = &recs[1];
        assert!(inner.start_us >= outer.start_us);
        assert!(outer.dur_us >= inner.dur_us);
    }
}
