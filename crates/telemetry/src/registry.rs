//! Instrument registration and the process-global registry.

use crate::instrument::{Counter, Gauge, Histogram};
use crate::snapshot::{InstrumentSnapshot, InstrumentValue, TelemetrySnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One registered instrument.
enum Entry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
        }
    }
}

struct Registered {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    entry: Entry,
}

#[derive(Default)]
struct Inner {
    /// Registration order — snapshots and expositions are stable.
    entries: Vec<Registered>,
    /// `(name, labels)` → index into `entries`.
    index: HashMap<(String, Vec<(String, String)>), usize>,
}

/// A set of typed instruments.
///
/// Registration (`counter`/`gauge`/`histogram` and their `_with` label
/// variants) takes a lock and is idempotent: asking again for the same
/// `(name, labels)` returns the existing instrument, so call sites can
/// re-register on every hot-path entry without coordination — though
/// callers that care cache the returned `Arc` and record lock-free.
///
/// # Panics
/// Re-registering a `(name, labels)` pair as a *different* instrument
/// kind panics: that is a naming bug, not a runtime condition.
pub struct Registry {
    recording: Arc<AtomicBool>,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with recording on.
    pub fn new() -> Self {
        Registry {
            recording: Arc::new(AtomicBool::new(true)),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Turns recording on/off for every instrument this registry handed
    /// out. Off, each record call is one relaxed load and a branch —
    /// the knob the serve bench uses to price the instrumentation.
    pub fn set_recording(&self, on: bool) {
        self.recording.store(on, Ordering::Relaxed);
    }

    /// `true` while instruments record.
    pub fn recording(&self) -> bool {
        self.recording.load(Ordering::Relaxed)
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce(Arc<AtomicBool>) -> Entry,
        get: impl Fn(&Entry) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut inner = self.inner.lock().expect("telemetry registry lock");
        if let Some(&i) = inner.index.get(&(name.to_string(), labels.clone())) {
            let entry = &inner.entries[i].entry;
            return get(entry).unwrap_or_else(|| {
                panic!(
                    "instrument {name:?} already registered as a {}",
                    entry.kind()
                )
            });
        }
        let entry = make(Arc::clone(&self.recording));
        let out = get(&entry).expect("freshly made entry has the requested kind");
        let slot = inner.entries.len();
        inner.index.insert((name.to_string(), labels.clone()), slot);
        inner.entries.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            entry,
        });
        out
    }

    /// A monotonic counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// A monotonic counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            labels,
            |rec| Entry::Counter(Arc::new(Counter::new(rec))),
            |e| match e {
                Entry::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// A gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// A gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            labels,
            |rec| Entry::Gauge(Arc::new(Gauge::new(rec))),
            |e| match e {
                Entry::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// A log2 histogram with no labels.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// A log2 histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            labels,
            |rec| Entry::Histogram(Arc::new(Histogram::new(rec))),
            |e| match e {
                Entry::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Point-in-time plain-old-data view of every registered instrument,
    /// in registration order.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock().expect("telemetry registry lock");
        TelemetrySnapshot {
            entries: inner
                .entries
                .iter()
                .map(|r| InstrumentSnapshot {
                    name: r.name.clone(),
                    help: r.help.clone(),
                    labels: r.labels.clone(),
                    value: match &r.entry {
                        Entry::Counter(c) => InstrumentValue::Counter(c.get()),
                        Entry::Gauge(g) => InstrumentValue::Gauge(g.get()),
                        Entry::Histogram(h) => InstrumentValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// The process-global registry: kernel counters, attack phase timings
/// and campaign instruments live here; each `fia-serve` server keeps its
/// *own* registry (so parallel deployments in one process stay isolated)
/// and concatenates this one into its exposition.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("x_total", "a counter");
        let b = r.counter("x_total", "a counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_distinguish_instruments() {
        let r = Registry::new();
        let a = r.counter_with("rows_total", "rows", &[("replica", "0")]);
        let b = r.counter_with("rows_total", "rows", &[("replica", "1")]);
        a.add(5);
        b.add(7);
        let snap = r.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].value, InstrumentValue::Counter(5));
        assert_eq!(snap.entries[1].value, InstrumentValue::Counter(7));
        assert_eq!(snap.entries[1].labels, vec![("replica".into(), "1".into())]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("thing", "as counter");
        let _ = r.gauge("thing", "as gauge");
    }

    #[test]
    fn recording_toggle_reaches_existing_instruments() {
        let r = Registry::new();
        let c = r.counter("c_total", "");
        let h = r.histogram("h_us", "");
        r.set_recording(false);
        assert!(!r.recording());
        c.inc();
        h.record(9);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        r.set_recording(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let r = Registry::new();
        let _ = r.counter("b_total", "");
        let _ = r.gauge("a_val", "");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["b_total", "a_val"]);
    }

    #[test]
    fn global_is_one_registry() {
        let c = global().counter("fia_telemetry_selftest_total", "self test");
        let before = c.get();
        c.inc();
        assert!(
            global()
                .counter("fia_telemetry_selftest_total", "self test")
                .get()
                > before
        );
    }
}
