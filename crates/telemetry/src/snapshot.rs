//! Plain-old-data snapshots of a [`crate::Registry`].

use crate::instrument::HistogramSnapshot;
use crate::json::{self, ObjectBuilder};

/// The value a single instrument held at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum InstrumentValue {
    /// A monotonic counter's total.
    Counter(u64),
    /// A gauge's last-set value.
    Gauge(f64),
    /// A histogram's buckets, count and sum.
    Histogram(HistogramSnapshot),
}

impl InstrumentValue {
    fn kind(&self) -> &'static str {
        match self {
            InstrumentValue::Counter(_) => "counter",
            InstrumentValue::Gauge(_) => "gauge",
            InstrumentValue::Histogram(_) => "histogram",
        }
    }
}

/// One instrument's identity and value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentSnapshot {
    /// Metric name (Prometheus-style, e.g. `fia_serve_requests_total`).
    pub name: String,
    /// One-line human description.
    pub help: String,
    /// Label key/value pairs distinguishing instruments that share a name.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: InstrumentValue,
}

impl InstrumentSnapshot {
    fn to_json(&self) -> String {
        let labels = json::array(
            &self
                .labels
                .iter()
                .map(|(k, v)| ObjectBuilder::new().str("key", k).str("value", v).build())
                .collect::<Vec<_>>(),
        );
        let b = ObjectBuilder::new()
            .str("name", &self.name)
            .str("kind", self.value.kind())
            .raw("labels", &labels);
        match &self.value {
            InstrumentValue::Counter(v) => b.u64("value", *v).build(),
            InstrumentValue::Gauge(v) => b.f64("value", *v).build(),
            InstrumentValue::Histogram(h) => {
                let buckets =
                    json::array(&h.buckets.iter().map(|c| c.to_string()).collect::<Vec<_>>());
                b.u64("count", h.count)
                    .u64("sum", h.sum)
                    .raw("buckets", &buckets)
                    .build()
            }
        }
    }
}

/// A point-in-time, plain-old-data view of a registry: what campaign
/// reports attach and what the exposition encoder renders.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Instruments in registration order.
    pub entries: Vec<InstrumentSnapshot>,
}

impl TelemetrySnapshot {
    /// `true` when nothing was registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up one instrument by name and label *set* — label order is
    /// irrelevant, as it is in Prometheus: `{a="1",b="2"}` and
    /// `{b="2",a="1"}` name the same series.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&InstrumentSnapshot> {
        self.entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && labels
                    .iter()
                    .all(|(lk, lv)| e.labels.iter().any(|(k, v)| k == lk && v == lv))
        })
    }

    /// Appends another snapshot's entries (e.g. a server registry view
    /// followed by the process-global one).
    pub fn merge(mut self, other: TelemetrySnapshot) -> TelemetrySnapshot {
        self.entries.extend(other.entries);
        self
    }

    /// The change since `earlier`: counters and histogram buckets/counts/
    /// sums subtract (saturating, so a restarted counter degrades to its
    /// current value rather than wrapping); gauges keep their current
    /// reading; instruments absent from `earlier` pass through unchanged.
    pub fn delta_since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let entries = self
            .entries
            .iter()
            .map(|now| {
                let before = earlier.get(
                    &now.name,
                    &now.labels
                        .iter()
                        .map(|(k, v)| (k.as_str(), v.as_str()))
                        .collect::<Vec<_>>(),
                );
                let value = match (&now.value, before.map(|b| &b.value)) {
                    (InstrumentValue::Counter(n), Some(InstrumentValue::Counter(b))) => {
                        InstrumentValue::Counter(n.saturating_sub(*b))
                    }
                    (InstrumentValue::Histogram(n), Some(InstrumentValue::Histogram(b)))
                        if n.buckets.len() == b.buckets.len() =>
                    {
                        let buckets: Vec<u64> = n
                            .buckets
                            .iter()
                            .zip(&b.buckets)
                            .map(|(x, y)| x.saturating_sub(*y))
                            .collect();
                        InstrumentValue::Histogram(HistogramSnapshot {
                            count: buckets.iter().sum(),
                            sum: n.sum.saturating_sub(b.sum),
                            buckets,
                        })
                    }
                    (v, _) => v.clone(),
                };
                InstrumentSnapshot {
                    name: now.name.clone(),
                    help: now.help.clone(),
                    labels: now.labels.clone(),
                    value,
                }
            })
            .collect();
        TelemetrySnapshot { entries }
    }

    /// Canonical `(identity, value)` list of the counters only — the
    /// deterministic subset two identically-seeded runs must agree on
    /// (timings live in histograms/gauges and are excluded).
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .entries
            .iter()
            .filter_map(|e| match e.value {
                InstrumentValue::Counter(v) => {
                    let labels = e
                        .labels
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(",");
                    Some((format!("{}{{{labels}}}", e.name), v))
                }
                _ => None,
            })
            .collect();
        out.sort();
        out
    }

    /// Compact hand-rolled JSON rendering.
    pub fn to_json(&self) -> String {
        let items = self
            .entries
            .iter()
            .map(InstrumentSnapshot::to_json)
            .collect::<Vec<_>>();
        format!("{{\"instruments\":{}}}", json::array(&items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn snap_with(counter: u64, hist: &[u64]) -> TelemetrySnapshot {
        let r = Registry::new();
        let c = r.counter_with("c_total", "c", &[("k", "v")]);
        c.add(counter);
        let h = r.histogram("h_us", "h");
        for &v in hist {
            h.record(v);
        }
        let g = r.gauge("g_val", "g");
        g.set(2.5);
        r.snapshot()
    }

    #[test]
    fn delta_subtracts_counters_and_histograms_keeps_gauges() {
        let before = snap_with(10, &[1, 2]);
        let after = snap_with(25, &[1, 2, 1000]);
        let d = after.delta_since(&before);
        assert_eq!(
            d.get("c_total", &[("k", "v")]).unwrap().value,
            InstrumentValue::Counter(15)
        );
        match &d.get("h_us", &[]).unwrap().value {
            InstrumentValue::Histogram(h) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 1000);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        assert_eq!(
            d.get("g_val", &[]).unwrap().value,
            InstrumentValue::Gauge(2.5)
        );
    }

    #[test]
    fn delta_passes_through_new_instruments() {
        let d = snap_with(7, &[]).delta_since(&TelemetrySnapshot::default());
        assert_eq!(
            d.get("c_total", &[("k", "v")]).unwrap().value,
            InstrumentValue::Counter(7)
        );
    }

    #[test]
    fn counters_is_sorted_and_counters_only() {
        let s = snap_with(3, &[5]);
        let c = s.counters();
        assert_eq!(c, vec![("c_total{k=v}".to_string(), 3)]);
    }

    #[test]
    fn merge_concatenates() {
        let m = snap_with(1, &[]).merge(snap_with(2, &[]));
        assert_eq!(m.entries.len(), 6);
    }

    #[test]
    fn get_and_delta_are_label_order_invariant() {
        let r = Registry::new();
        r.counter_with("m_total", "m", &[("client", "a"), ("op", "idx")])
            .add(9);
        let snap = r.snapshot();
        // Lookup matches regardless of query label order.
        let fwd = snap.get("m_total", &[("client", "a"), ("op", "idx")]);
        let rev = snap.get("m_total", &[("op", "idx"), ("client", "a")]);
        assert_eq!(fwd, rev);
        assert!(fwd.is_some());
        // A baseline whose labels were stored in a different order still
        // subtracts — the series identity is the set, not the sequence.
        let mut earlier = snap.clone();
        earlier.entries[0].labels.reverse();
        if let InstrumentValue::Counter(ref mut v) = earlier.entries[0].value {
            *v = 4;
        }
        let d = snap.delta_since(&earlier);
        assert_eq!(
            d.get("m_total", &[("op", "idx"), ("client", "a")])
                .unwrap()
                .value,
            InstrumentValue::Counter(5)
        );
    }

    #[test]
    fn delta_passes_through_instruments_only_in_the_newer_snapshot() {
        // The baseline has *different* instruments entirely (not just an
        // empty snapshot): nothing matches, everything passes through.
        let r0 = Registry::new();
        r0.counter("old_total", "old").add(99);
        let before = r0.snapshot();
        let after = snap_with(7, &[42]);
        let d = after.delta_since(&before);
        assert_eq!(
            d.get("c_total", &[("k", "v")]).unwrap().value,
            InstrumentValue::Counter(7)
        );
        match &d.get("h_us", &[]).unwrap().value {
            InstrumentValue::Histogram(h) => assert_eq!((h.count, h.sum), (1, 42)),
            other => panic!("expected histogram, got {other:?}"),
        }
        // And the retired instrument does not resurface in the delta.
        assert!(d.get("old_total", &[]).is_none());
    }

    #[test]
    fn delta_after_counter_reset_saturates_to_zero() {
        // A re-registered (restarted) counter reads lower than the
        // baseline; the delta saturates at zero instead of wrapping to
        // an astronomically large u64.
        let before = snap_with(10, &[1, 2, 3]);
        let after = snap_with(4, &[1]); // "restart": fewer events so far
        let d = after.delta_since(&before);
        assert_eq!(
            d.get("c_total", &[("k", "v")]).unwrap().value,
            InstrumentValue::Counter(0)
        );
        match &d.get("h_us", &[]).unwrap().value {
            InstrumentValue::Histogram(h) => {
                assert_eq!(h.count, 0);
                assert_eq!(h.sum, 0);
                assert!(h.buckets.iter().all(|&b| b == 0));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn json_is_well_formed_and_typed() {
        let j = snap_with(3, &[5]).to_json();
        assert!(j.starts_with("{\"instruments\":["));
        assert!(j.contains("\"kind\":\"counter\""));
        assert!(j.contains("\"kind\":\"histogram\""));
        assert!(j.contains("\"kind\":\"gauge\""));
        assert!(j.contains("\"key\":\"k\""));
        assert_eq!(
            TelemetrySnapshot::default().to_json(),
            "{\"instruments\":[]}"
        );
    }
}
