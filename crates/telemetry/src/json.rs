//! Minimal hand-rolled JSON building blocks.
//!
//! The workspace serializes its few wire artifacts (campaign reports,
//! event logs, span traces, telemetry snapshots) by hand rather than
//! pulling a serialization dependency; this module centralizes the two
//! pieces every writer needs — string escaping and an object builder —
//! so each crate stops re-implementing them.

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. JSON has no `NaN`/`Infinity`
/// literals, so those serialize as `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An incremental `{...}` builder producing one compact JSON object.
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    parts: Vec<String>,
}

impl ObjectBuilder {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pre-serialized JSON value under `key`.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.parts.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let v = format!("\"{}\"", escape(value));
        self.raw(key, &v)
    }

    /// Adds an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, &value.to_string())
    }

    /// Adds a float field (`null` for non-finite values).
    pub fn f64(self, key: &str, value: f64) -> Self {
        let v = number(value);
        self.raw(key, &v)
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Closes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// Joins pre-serialized JSON values into an array literal.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn object_builder_round_trip() {
        let s = ObjectBuilder::new()
            .str("name", "x\"y")
            .u64("n", 3)
            .f64("v", 1.5)
            .bool("ok", true)
            .raw("inner", "[1,2]")
            .build();
        assert_eq!(
            s,
            "{\"name\":\"x\\\"y\",\"n\":3,\"v\":1.5,\"ok\":true,\"inner\":[1,2]}"
        );
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(array(&["1".into(), "null".into()]), "[1,null]");
    }
}
