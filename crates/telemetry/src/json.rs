//! Minimal hand-rolled JSON building blocks.
//!
//! The workspace serializes its few wire artifacts (campaign reports,
//! event logs, span traces, telemetry snapshots) by hand rather than
//! pulling a serialization dependency; this module centralizes the
//! pieces every writer needs — string escaping, an object builder, and
//! (for the campaign daemon's event-replay path) a small recursive
//! parser — so each crate stops re-implementing them.
//!
//! The parser keeps numbers as their **raw source token** ([`Value::Num`])
//! instead of eagerly converting to `f64`: the workspace round-trips
//! `u64` counters (span ids, sequence numbers) that do not fit in an
//! `f64` mantissa, so the consumer chooses `as_u64`/`as_f64` per field.

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. JSON has no `NaN`/`Infinity`
/// literals, so those serialize as `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An incremental `{...}` builder producing one compact JSON object.
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    parts: Vec<String>,
}

impl ObjectBuilder {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pre-serialized JSON value under `key`.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.parts.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let v = format!("\"{}\"", escape(value));
        self.raw(key, &v)
    }

    /// Adds an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, &value.to_string())
    }

    /// Adds a float field (`null` for non-finite values).
    pub fn f64(self, key: &str, value: f64) -> Self {
        let v = number(value);
        self.raw(key, &v)
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Closes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// Joins pre-serialized JSON values into an array literal.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

// ---------------------------------------------------------------------
// Parsing.

/// A parsed JSON value. Numbers keep their raw source token (see the
/// module docs); objects keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source token (`"42"`, `"-1.5e-3"`).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object: `(key, value)` pairs in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an exact `u64` when it is an unsigned integer
    /// token (no precision loss through `f64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// This value as `f64` when it is a number (bit-exact for tokens
    /// produced by [`number`], which uses Rust's shortest round-trip
    /// formatting).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse failure: a static reason and the byte offset it was
/// detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was wrong.
    pub reason: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document, rejecting trailing non-whitespace.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after document"));
    }
    Ok(v)
}

/// Hard recursion cap: the workspace's artifacts are a few levels deep,
/// so anything deeper is corruption, not data.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> ParseError {
        ParseError {
            reason,
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, reason: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after key")?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace's writers; reject rather than
                            // silently mangling.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multi-byte UTF-8: copy the whole sequence through.
                _ if b >= 0x80 => {
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8 start byte")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated utf-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid utf-8 sequence"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
                _ if b < 0x20 => return Err(self.err("raw control byte in string")),
                _ => out.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("number has no digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("number has empty fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("number has empty exponent"));
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number token is ascii")
            .to_string();
        Ok(Value::Num(tok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn object_builder_round_trip() {
        let s = ObjectBuilder::new()
            .str("name", "x\"y")
            .u64("n", 3)
            .f64("v", 1.5)
            .bool("ok", true)
            .raw("inner", "[1,2]")
            .build();
        assert_eq!(
            s,
            "{\"name\":\"x\\\"y\",\"n\":3,\"v\":1.5,\"ok\":true,\"inner\":[1,2]}"
        );
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(array(&["1".into(), "null".into()]), "[1,null]");
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let s = ObjectBuilder::new()
            .str("name", "x\"y\n\\z")
            .u64("big", u64::MAX)
            .f64("v", 0.1 + 0.2)
            .bool("ok", true)
            .raw("inner", "[1,-2.5e3,null]")
            .build();
        let v = parse(&s).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("x\"y\n\\z"));
        // u64::MAX does not fit an f64 mantissa; the raw-token design
        // must hand it back exactly.
        assert_eq!(v.get("big").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("v").unwrap().as_f64(), Some(0.1 + 0.2));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let arr = v.get("inner").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5e3));
        assert_eq!(arr[2], Value::Null);
    }

    #[test]
    fn parse_handles_nesting_escapes_and_unicode() {
        let v =
            parse(r#" { "a" : [ { "b" : "\u0041\t/" } , [ ] , { } ], "π" : "héllo" } "#).unwrap();
        let inner = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(inner[0].get("b").unwrap().as_str(), Some("A\t/"));
        assert_eq!(inner[1], Value::Arr(Vec::new()));
        assert_eq!(inner[2], Value::Obj(Vec::new()));
        assert_eq!(v.get("π").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01e",
            "1.",
            "1e",
            "-",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "{\"a\":1} extra",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
        // Raw control byte inside a string.
        assert!(parse("\"a\u{1}b\"").is_err());
        // Depth bomb hits the recursion cap instead of the stack.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert_eq!(parse(&deep).unwrap_err().reason, "nesting too deep");
    }

    #[test]
    fn number_tokens_preserve_source_form() {
        let v = parse("[0, -0, 1e2, 1E+2, 3.14, -0.5e-1]").unwrap();
        let toks: Vec<&str> = v
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| match x {
                Value::Num(t) => t.as_str(),
                _ => panic!("expected number"),
            })
            .collect();
        assert_eq!(toks, ["0", "-0", "1e2", "1E+2", "3.14", "-0.5e-1"]);
    }
}
