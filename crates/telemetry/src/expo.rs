//! Prometheus-style text exposition.
//!
//! Renders a [`TelemetrySnapshot`] in the Prometheus text format
//! (version 0.0.4): `# HELP` / `# TYPE` once per metric name, one sample
//! line per labeled instrument, histograms expanded to cumulative
//! `_bucket{le=...}` series plus `_sum` and `_count`. No exporter crate
//! exists in this offline workspace, so the encoder is hand-rolled
//! against the published format.

use crate::instrument::Histogram;
use crate::snapshot::{InstrumentValue, TelemetrySnapshot};
use std::collections::HashSet;
use std::fmt::Write;

/// Escapes a label value: backslash, double quote and newline, per the
/// exposition format spec.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text: backslash and newline only (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `{k="v",...}` with an optional extra label appended; empty string when
/// there are no labels at all.
fn label_set(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Formats a histogram `le` bound label. Bucket identity lives in this
/// string, so it must be *stable*: plain decimal notation, never
/// scientific (`0.001`, not `1e-3` — a flip would split one bucket's
/// series in two on any downstream scraper). Rust's `Display` for `f64`
/// is shortest-round-trip decimal without exponents, which is exactly
/// the contract; this helper exists to pin it by golden test.
fn format_le(bound: f64) -> String {
    if bound.is_infinite() && bound > 0.0 {
        "+Inf".to_string()
    } else {
        format!("{bound}")
    }
}

/// Encodes a snapshot as Prometheus text exposition. Entries keep their
/// snapshot order; `# HELP`/`# TYPE` headers are emitted once per metric
/// name, at its first occurrence.
pub fn encode_prometheus(snapshot: &TelemetrySnapshot) -> String {
    // An empty registry is a valid scrape target: the exposition is just
    // the end-of-stream marker, not the empty string (which some parsers
    // treat as a failed scrape).
    if snapshot.entries.is_empty() {
        return "# EOF\n".to_string();
    }
    let mut out = String::new();
    let mut seen: HashSet<&str> = HashSet::new();
    for e in &snapshot.entries {
        if seen.insert(e.name.as_str()) {
            let ty = match e.value {
                InstrumentValue::Counter(_) => "counter",
                InstrumentValue::Gauge(_) => "gauge",
                InstrumentValue::Histogram(_) => "histogram",
            };
            if !e.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", e.name, escape_help(&e.help));
            }
            let _ = writeln!(out, "# TYPE {} {ty}", e.name);
        }
        match &e.value {
            InstrumentValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {v}", e.name, label_set(&e.labels, None));
            }
            InstrumentValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    e.name,
                    label_set(&e.labels, None),
                    format_f64(*v)
                );
            }
            InstrumentValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, c) in h.buckets.iter().enumerate() {
                    cumulative += c;
                    // Skip interior empty buckets to keep the exposition
                    // readable; bounds stay cumulative so no information
                    // is lost. Always emit the first bucket as an anchor.
                    if *c == 0 && i != 0 {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        e.name,
                        label_set(
                            &e.labels,
                            Some(("le", &Histogram::bucket_bound(i).to_string()))
                        )
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    e.name,
                    label_set(&e.labels, Some(("le", &format_le(f64::INFINITY)))),
                    h.count
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    e.name,
                    label_set(&e.labels, None),
                    h.sum
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    e.name,
                    label_set(&e.labels, None),
                    h.count
                );
            }
        }
    }
    // Trailing end-of-stream marker (OpenMetrics-style), so a truncated
    // scrape is distinguishable from a complete one.
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn golden_exposition() {
        let r = Registry::new();
        r.counter("fia_requests_total", "Requests answered.").add(3);
        r.gauge("fia_uptime_seconds", "Uptime.").set(1.5);
        let snap = r.snapshot();
        assert_eq!(
            encode_prometheus(&snap),
            "# HELP fia_requests_total Requests answered.\n\
             # TYPE fia_requests_total counter\n\
             fia_requests_total 3\n\
             # HELP fia_uptime_seconds Uptime.\n\
             # TYPE fia_uptime_seconds gauge\n\
             fia_uptime_seconds 1.5\n\
             # EOF\n"
        );
    }

    #[test]
    fn empty_registry_encodes_to_just_the_eof_marker() {
        let r = Registry::new();
        assert_eq!(encode_prometheus(&r.snapshot()), "# EOF\n");
        assert_eq!(
            encode_prometheus(&crate::TelemetrySnapshot::default()),
            "# EOF\n"
        );
    }

    #[test]
    fn every_exposition_ends_with_eof() {
        let r = Registry::new();
        r.counter("c_total", "c").inc();
        r.histogram("h_us", "h").record(5);
        let text = encode_prometheus(&r.snapshot());
        assert!(text.ends_with("# EOF\n"), "{text:?}");
        assert_eq!(text.matches("# EOF").count(), 1);
    }

    #[test]
    fn le_label_float_formatting_is_stable() {
        // Bucket identity lives in the `le` string: a formatter that
        // flips between `0.001` and `1e-3` splits the series. Pin the
        // golden decimal renderings.
        assert_eq!(format_le(0.001), "0.001");
        assert_eq!(format_le(1e-3), "0.001"); // same value, same string
        assert_eq!(format_le(0.0001), "0.0001");
        assert_eq!(format_le(1.0), "1");
        assert_eq!(format_le(1023.0), "1023");
        assert_eq!(format_le(2.5), "2.5");
        assert_eq!(format_le(1e6), "1000000");
        assert_eq!(format_le(f64::INFINITY), "+Inf");
        // No exponent notation may ever appear in a le label.
        for v in [0.001, 0.0001, 1e-6, 1e9, 123456789.125] {
            let s = format_le(v);
            assert!(!s.contains('e') && !s.contains('E'), "{s}");
        }
    }

    #[test]
    fn help_and_type_once_per_name() {
        let r = Registry::new();
        r.counter_with("rows_total", "Rows.", &[("replica", "0")])
            .add(1);
        r.counter_with("rows_total", "Rows.", &[("replica", "1")])
            .add(2);
        let text = encode_prometheus(&r.snapshot());
        assert_eq!(text.matches("# TYPE rows_total counter").count(), 1);
        assert_eq!(text.matches("# HELP rows_total").count(), 1);
        assert!(text.contains("rows_total{replica=\"0\"} 1\n"));
        assert!(text.contains("rows_total{replica=\"1\"} 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("c_total", "back\\slash\nnewline", &[("p", "a\"b\\c\nd")])
            .inc();
        let text = encode_prometheus(&r.snapshot());
        assert!(text.contains("# HELP c_total back\\\\slash\\nnewline\n"));
        assert!(text.contains("c_total{p=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let r = Registry::new();
        let h = r.histogram("lat_us", "Latency.");
        for v in [0u64, 1, 5, 5, 1000, u64::MAX] {
            h.record(v);
        }
        let text = encode_prometheus(&r.snapshot());
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_us_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 6); // +Inf == count
        assert!(text.contains("lat_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("lat_us_count 6\n"));
        assert!(text.lines().any(|l| l == "# TYPE lat_us histogram"));
    }

    #[test]
    fn non_finite_gauges_render_prometheus_style() {
        let r = Registry::new();
        r.gauge("g", "").set(f64::INFINITY);
        assert!(encode_prometheus(&r.snapshot()).contains("g +Inf\n"));
    }
}
