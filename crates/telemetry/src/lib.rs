#![warn(missing_docs)]

//! # fia-telemetry — the workspace's observability layer
//!
//! The paper's threat model is ultimately about what a deployed VFL
//! prediction service *leaks per query*; answering that requires seeing
//! every layer of one query's life — kernel, attack phase, campaign
//! chunk, serving round, cache — in a single correlated surface. This
//! crate is that surface, std-only and dependency-free:
//!
//! * [`Registry`] — a set of typed instruments: monotonic [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket log2 [`Histogram`]s, all lock-free
//!   atomics on the hot path (registration takes a lock once; recording
//!   never does). Each `fia-serve` server owns its own registry so
//!   parallel deployments in one process stay isolated; process-wide
//!   instruments (kernels, campaigns, attack phases) live on
//!   [`global()`].
//! * [`Tracer`] / [`Span`] — hierarchical scoped timers with *explicit*
//!   parent handles: no thread-local magic, so a span crosses
//!   `par_matmul`'s scoped threads and batcher threads by ordinary
//!   borrows. Finished spans collect into [`SpanRecord`]s and render to
//!   JSONL ([`Tracer::to_jsonl`]).
//! * [`TelemetrySnapshot`] — a plain-old-data point-in-time view
//!   ([`Registry::snapshot`]) with counter-exact deltas
//!   ([`TelemetrySnapshot::delta_since`]) and hand-rolled JSON, the
//!   artifact campaign reports attach.
//! * [`encode_prometheus`] — a Prometheus-style text exposition encoder,
//!   what the server's `MetricsText` wire op returns so any scraper can
//!   poll a live deployment.
//!
//! Recording can be switched off per registry
//! ([`Registry::set_recording`]); the serve bench uses that to price the
//! instrumentation itself (`telemetry_overhead_frac`).

mod expo;
mod instrument;
pub mod json;
mod registry;
mod snapshot;
mod span;

pub use expo::encode_prometheus;
pub use instrument::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{global, Registry};
pub use snapshot::{InstrumentSnapshot, InstrumentValue, TelemetrySnapshot};
pub use span::{FieldValue, Span, SpanRecord, Tracer};
