//! Weight initializers and Gaussian sampling helpers.
//!
//! Gaussian variates come from a Box–Muller transform over `rand`'s
//! uniform output, avoiding an extra `rand_distr` dependency.

use fia_linalg::Matrix;
use rand::Rng;

/// Draws one standard-normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] to keep ln(u1) finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A `rows × cols` matrix with i.i.d. `N(mean, std²)` entries.
pub fn normal_matrix<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    mean: f64,
    std: f64,
    rng: &mut R,
) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| mean + std * standard_normal(rng))
}

/// A `rows × cols` matrix with i.i.d. `U(lo, hi)` entries.
pub fn uniform_matrix<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Xavier/Glorot uniform initialization for a `fan_in × fan_out` weight
/// matrix: `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    uniform_matrix(fan_in, fan_out, -limit, limit, rng)
}

/// He/Kaiming normal initialization, suited to ReLU stacks:
/// `N(0, 2/fan_in)`.
pub fn he_normal<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let std = (2.0 / fan_in as f64).sqrt();
    normal_matrix(fan_in, fan_out, 0.0, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn normal_matrix_shape_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = normal_matrix(30, 40, 2.0, 0.5, &mut rng);
        assert_eq!(m.shape(), (30, 40));
        let mean = m.as_slice().iter().sum::<f64>() / 1200.0;
        assert!((mean - 2.0).abs() < 0.1);
    }

    #[test]
    fn uniform_matrix_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = uniform_matrix(10, 10, -0.25, 0.25, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-0.25..0.25).contains(&x)));
    }

    #[test]
    fn xavier_limit_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = xavier_uniform(100, 200, &mut rng);
        let limit = (6.0 / 300.0_f64).sqrt();
        assert!(m.max_abs() <= limit);
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = he_normal(800, 10, &mut rng);
        // std = sqrt(2/800) = 0.05 → sample std should be near that.
        let n = m.as_slice().len() as f64;
        let var = m.as_slice().iter().map(|x| x * x).sum::<f64>() / n;
        assert!((var.sqrt() - 0.05).abs() < 0.01);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            normal_matrix(3, 3, 0.0, 1.0, &mut a),
            normal_matrix(3, 3, 0.0, 1.0, &mut b)
        );
    }
}
