#![warn(missing_docs)]

//! # fia-tensor — tape-based reverse-mode automatic differentiation
//!
//! A deliberately small autograd engine sized for the paper's needs:
//! multilayer perceptrons with ReLU/sigmoid/tanh activations, softmax and
//! fused losses, LayerNorm (the GRN generator applies it after every
//! hidden layer), dropout (the Section VII countermeasure), and the
//! concat/slice plumbing that stitches the adversary's features, the
//! random vector and the generated target features together.
//!
//! Design: a [`Tape`] is a flat vector of nodes appended in topological
//! order. Graph construction *is* the forward pass — every op computes its
//! value eagerly. [`Tape::backward`] walks the tape in reverse and
//! accumulates gradients. Values and gradients are dense
//! [`fia_linalg::Matrix`] buffers shaped `[batch, features]`.
//!
//! Trainable parameters live *outside* the tape in a [`Params`] store and
//! are bound into a fresh tape each step via [`Tape::param`]. Frozen
//! sub-networks (the trained vertical FL model inside the GRN attack loop)
//! enter the tape as plain [`Tape::input`] leaves: gradients still flow
//! *through* them to upstream operands, but no parameter gradient is
//! collected — exactly the semantics Algorithm 2 of the paper requires.
//!
//! ```
//! use fia_tensor::{Tape, Params};
//! use fia_linalg::Matrix;
//!
//! let mut params = Params::new();
//! let w = params.insert(Matrix::from_rows(&[vec![0.5], vec![-0.25]]).unwrap());
//!
//! let mut tape = Tape::new();
//! let x = tape.input(Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap());
//! let wv = tape.param(&params, w);
//! let y = tape.matmul(x, wv);          // 1×1
//! let loss = tape.sum_all(y);
//! tape.backward(loss);
//! let grad = tape.grad(wv).unwrap();   // dL/dW = xᵀ
//! assert_eq!(grad.as_slice(), &[1.0, 2.0]);
//! ```

mod gradcheck;
mod init;
mod optim;
mod params;
mod schedule;
mod tape;

pub use gradcheck::{assert_gradients_ok, check_gradients, GradCheckReport};
pub use init::{he_normal, normal_matrix, standard_normal, uniform_matrix, xavier_uniform};
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{ParamId, Params};
pub use schedule::{clip_grad_norm, Constant, CosineAnnealing, LrSchedule, StepDecay};
pub use tape::{Tape, VarId};

pub use fia_linalg::Precision;
