//! Finite-difference gradient checking.
//!
//! Every backward rule in the engine is validated against central
//! differences. The checker is exported so downstream crates (models,
//! attacks) can verify their composite graphs too.

use crate::params::Params;
use crate::tape::{Tape, VarId};
use fia_linalg::Matrix;

/// Outcome of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest relative error across all checked coordinates.
    pub max_rel_error: f64,
    /// Coordinate `(param_index, row, col)` attaining the maximum.
    pub worst: (usize, usize, usize),
    /// Number of scalar coordinates checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// `true` when the maximum relative error is below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_error < tol
    }
}

/// Compares analytic gradients against central finite differences.
///
/// `build` must construct the scalar loss from the given tape and the
/// bound variables for each parameter (in store order). The same closure
/// is evaluated at perturbed parameter values, so it must be
/// deterministic (no dropout).
///
/// `eps` is the finite-difference step; `1e-5` suits well-scaled graphs.
pub fn check_gradients(
    params: &Params,
    build: impl Fn(&mut Tape, &[VarId]) -> VarId,
    eps: f64,
) -> GradCheckReport {
    // Analytic pass.
    let mut tape = Tape::new();
    let vars: Vec<VarId> = params
        .ids()
        .iter()
        .map(|&id| tape.param(params, id))
        .collect();
    let loss = build(&mut tape, &vars);
    tape.backward(loss);
    let analytic: Vec<Matrix> = vars
        .iter()
        .zip(params.ids().iter())
        .map(|(&v, &id)| {
            tape.grad(v)
                .cloned()
                .unwrap_or_else(|| Matrix::zeros(params.get(id).rows(), params.get(id).cols()))
        })
        .collect();

    let eval = |p: &Params| -> f64 {
        let mut t = Tape::new();
        let vs: Vec<VarId> = p.ids().iter().map(|&id| t.param(p, id)).collect();
        let l = build(&mut t, &vs);
        t.value(l)[(0, 0)]
    };

    let mut max_rel = 0.0;
    let mut worst = (0, 0, 0);
    let mut checked = 0;
    for (pi, id) in params.ids().into_iter().enumerate() {
        let (rows, cols) = params.get(id).shape();
        for i in 0..rows {
            for j in 0..cols {
                let mut plus = params.clone();
                plus.get_mut(id)[(i, j)] += eps;
                let mut minus = params.clone();
                minus.get_mut(id)[(i, j)] -= eps;
                let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
                let a = analytic[pi][(i, j)];
                let denom = a.abs().max(numeric.abs()).max(1.0);
                let rel = (a - numeric).abs() / denom;
                if rel > max_rel {
                    max_rel = rel;
                    worst = (pi, i, j);
                }
                checked += 1;
            }
        }
    }
    GradCheckReport {
        max_rel_error: max_rel,
        worst,
        checked,
    }
}

/// Convenience: asserts the check passes, printing the report on failure.
pub fn assert_gradients_ok(
    params: &Params,
    build: impl Fn(&mut Tape, &[VarId]) -> VarId,
    eps: f64,
    tol: f64,
) {
    let report = check_gradients(params, build, eps);
    assert!(
        report.passes(tol),
        "gradient check failed: {report:?} (tol = {tol})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_params(shapes: &[(usize, usize)], seed: u64) -> Params {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Params::new();
        for &(r, c) in shapes {
            p.insert(init::normal_matrix(r, c, 0.0, 0.7, &mut rng));
        }
        p
    }

    #[test]
    fn linear_layer_gradcheck() {
        let params = tiny_params(&[(3, 4), (1, 4)], 1);
        assert_gradients_ok(
            &params,
            |tape, vars| {
                let x = tape.input(Matrix::from_fn(2, 3, |i, j| {
                    0.3 * (i as f64) - 0.2 * j as f64
                }));
                let z = tape.matmul(x, vars[0]);
                let z = tape.add_row_broadcast(z, vars[1]);
                let t = tape.input(Matrix::filled(2, 4, 0.25));
                tape.mse_loss(z, t)
            },
            1e-5,
            1e-6,
        );
    }

    #[test]
    fn deep_mlp_with_activations_gradcheck() {
        let params = tiny_params(&[(3, 5), (1, 5), (5, 4), (1, 4), (4, 2), (1, 2)], 2);
        assert_gradients_ok(
            &params,
            |tape, vars| {
                let x = tape.input(Matrix::from_fn(3, 3, |i, j| {
                    0.1 + 0.15 * (i as f64) - 0.07 * (j as f64)
                }));
                let h1 = tape.matmul(x, vars[0]);
                let h1 = tape.add_row_broadcast(h1, vars[1]);
                let h1 = tape.tanh(h1);
                let h2 = tape.matmul(h1, vars[2]);
                let h2 = tape.add_row_broadcast(h2, vars[3]);
                let h2 = tape.sigmoid(h2);
                let z = tape.matmul(h2, vars[4]);
                let z = tape.add_row_broadcast(z, vars[5]);
                let t = tape.input(Matrix::from_fn(3, 2, |i, _| if i == 0 { 1.0 } else { 0.0 }));
                tape.cross_entropy_logits(z, t)
            },
            1e-5,
            1e-5,
        );
    }

    #[test]
    fn layer_norm_gradcheck() {
        let params = tiny_params(&[(2, 4), (1, 4), (1, 4)], 3);
        assert_gradients_ok(
            &params,
            |tape, vars| {
                let y = tape.layer_norm(vars[0], vars[1], vars[2], 1e-5);
                let t = tape.input(Matrix::filled(2, 4, 0.1));
                tape.mse_loss(y, t)
            },
            1e-5,
            1e-5,
        );
    }

    #[test]
    fn softmax_log_chain_gradcheck() {
        let params = tiny_params(&[(2, 3)], 4);
        assert_gradients_ok(
            &params,
            |tape, vars| {
                let s = tape.softmax_rows(vars[0]);
                let l = tape.log(s);
                let neg = tape.scale(l, -1.0);
                tape.mean_all(neg)
            },
            1e-5,
            1e-5,
        );
    }

    #[test]
    fn variance_penalty_gradcheck() {
        let params = tiny_params(&[(5, 3)], 5);
        assert_gradients_ok(
            &params,
            // Threshold 0 keeps the hinge active everywhere, avoiding the
            // kink that finite differences cannot cross.
            |tape, vars| tape.variance_penalty(vars[0], 0.0),
            1e-5,
            1e-5,
        );
    }

    #[test]
    fn concat_slice_gradcheck() {
        let params = tiny_params(&[(2, 3), (2, 2)], 6);
        assert_gradients_ok(
            &params,
            |tape, vars| {
                let cat = tape.concat_cols(vars[0], vars[1]);
                let sl = tape.slice_cols(cat, 1, 4);
                let sq = tape.hadamard(sl, sl);
                tape.sum_all(sq)
            },
            1e-5,
            1e-6,
        );
    }

    #[test]
    fn report_counts_coordinates() {
        let params = tiny_params(&[(2, 2)], 7);
        let r = check_gradients(&params, |tape, vars| tape.sum_all(vars[0]), 1e-5);
        assert_eq!(r.checked, 4);
        assert!(r.passes(1e-8));
    }
}
