//! Parameter storage that outlives individual tapes.

use fia_linalg::Matrix;

/// Handle to a parameter inside a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index (stable for the lifetime of the store).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A flat store of trainable parameter matrices.
///
/// Tapes are rebuilt every optimization step; parameters persist here and
/// are bound into each new tape with [`crate::Tape::param`]. Optimizers
/// mutate the store in place via [`Params::get_mut`].
#[derive(Debug, Clone, Default)]
pub struct Params {
    entries: Vec<Matrix>,
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Params {
            entries: Vec::new(),
        }
    }

    /// Inserts a parameter matrix, returning its handle.
    pub fn insert(&mut self, value: Matrix) -> ParamId {
        self.entries.push(value);
        ParamId(self.entries.len() - 1)
    }

    /// Immutable access to a parameter.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0]
    }

    /// Mutable access to a parameter (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0]
    }

    /// Number of parameter matrices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.entries.iter().map(|m| m.as_slice().len()).sum()
    }

    /// Iterates over all `(id, matrix)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, m)| (ParamId(i), m))
    }

    /// All parameter ids in insertion order.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.entries.len()).map(ParamId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Params::new();
        let a = p.insert(Matrix::filled(2, 3, 1.5));
        let b = p.insert(Matrix::identity(2));
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(a).shape(), (2, 3));
        assert_eq!(p.get(b).shape(), (2, 2));
        assert_eq!(p.scalar_count(), 10);
    }

    #[test]
    fn get_mut_updates() {
        let mut p = Params::new();
        let a = p.insert(Matrix::zeros(1, 1));
        p.get_mut(a)[(0, 0)] = 42.0;
        assert_eq!(p.get(a)[(0, 0)], 42.0);
    }

    #[test]
    fn ids_in_insertion_order() {
        let mut p = Params::new();
        let a = p.insert(Matrix::zeros(1, 1));
        let b = p.insert(Matrix::zeros(1, 1));
        assert_eq!(p.ids(), vec![a, b]);
        assert!(!p.is_empty());
    }
}
