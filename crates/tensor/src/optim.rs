//! First-order optimizers over a [`Params`] store.

use crate::params::{ParamId, Params};
use fia_linalg::Matrix;

/// A gradient-based optimizer. `step` consumes one `(id, gradient)` batch
/// produced by a backward pass and updates the parameter store in place.
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]);
}

/// Stochastic gradient descent with optional momentum and L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (`0.0` disables momentum).
    pub momentum: f64,
    /// L2 weight-decay coefficient (`0.0` disables decay).
    pub weight_decay: f64,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }

    fn slot(&mut self, idx: usize) -> &mut Option<Matrix> {
        if self.velocity.len() <= idx {
            self.velocity.resize(idx + 1, None);
        }
        &mut self.velocity[idx]
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]) {
        for (id, grad) in grads {
            let wd = self.weight_decay;
            let lr = self.lr;
            let mom = self.momentum;
            // Effective gradient with weight decay folded in.
            let value_snapshot = params.get(*id).clone();
            let eff = if wd > 0.0 {
                grad.add(&value_snapshot.scale(wd)).expect("shape stable")
            } else {
                grad.clone()
            };
            let update = if mom > 0.0 {
                let slot = self.slot(id.index());
                let v_new = match slot {
                    Some(v) => v.scale(mom).add(&eff).expect("shape stable"),
                    None => eff,
                };
                *slot = Some(v_new.clone());
                v_new
            } else {
                eff
            };
            let p = params.get_mut(*id);
            let stepped = p.sub(&update.scale(lr)).expect("shape stable");
            *p = stepped;
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper default 1e-3).
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical fuzz.
    pub eps: f64,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with standard hyper-parameters `β₁ = 0.9, β₂ = 0.999`.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure(&mut self, idx: usize) {
        if self.m.len() <= idx {
            self.m.resize(idx + 1, None);
            self.v.resize(idx + 1, None);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]) {
        self.t += 1;
        let t = self.t as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (id, grad) in grads {
            let idx = id.index();
            self.ensure(idx);
            let m_new = match &self.m[idx] {
                Some(m) => m
                    .scale(self.beta1)
                    .add(&grad.scale(1.0 - self.beta1))
                    .expect("shape stable"),
                None => grad.scale(1.0 - self.beta1),
            };
            let g2 = grad.hadamard(grad).expect("same shape");
            let v_new = match &self.v[idx] {
                Some(v) => v
                    .scale(self.beta2)
                    .add(&g2.scale(1.0 - self.beta2))
                    .expect("shape stable"),
                None => g2.scale(1.0 - self.beta2),
            };
            let p = params.get_mut(*id);
            let (rows, cols) = p.shape();
            for i in 0..rows {
                for j in 0..cols {
                    let mhat = m_new[(i, j)] / bc1;
                    let vhat = v_new[(i, j)] / bc2;
                    p[(i, j)] -= self.lr * mhat / (vhat.sqrt() + self.eps);
                }
            }
            self.m[idx] = Some(m_new);
            self.v[idx] = Some(v_new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizes f(w) = (w − 3)² with the given optimizer; returns final w.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut params = Params::new();
        let w = params.insert(Matrix::filled(1, 1, 0.0));
        for _ in 0..steps {
            let mut tape = Tape::new();
            let wv = tape.param(&params, w);
            let target = tape.input(Matrix::filled(1, 1, 3.0));
            let loss = tape.mse_loss(wv, target);
            tape.backward(loss);
            let g = tape.grad(wv).unwrap().clone();
            opt.step(&mut params, &[(w, g)]);
        }
        params.get(w)[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.2);
        let w = run_quadratic(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let w = run_quadratic(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-4, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = run_quadratic(&mut opt, 300);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        // With zero gradient and weight decay, weights decay toward 0.
        let mut params = Params::new();
        let w = params.insert(Matrix::filled(1, 1, 1.0));
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        for _ in 0..10 {
            opt.step(&mut params, &[(w, Matrix::zeros(1, 1))]);
        }
        let val = params.get(w)[(0, 0)];
        assert!(val < 1.0 && val > 0.0);
        assert!((val - 0.95f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn adam_is_scale_invariant_early() {
        // Adam's first step is ±lr regardless of gradient magnitude.
        let mut params = Params::new();
        let w = params.insert(Matrix::filled(1, 1, 0.0));
        let mut opt = Adam::new(0.01);
        opt.step(&mut params, &[(w, Matrix::filled(1, 1, 1e6))]);
        let val = params.get(w)[(0, 0)];
        assert!((val + 0.01).abs() < 1e-6, "val = {val}");
    }
}
