//! The autograd tape: forward construction and reverse-mode backward.

use crate::params::{ParamId, Params};
use fia_linalg::{Matrix, Precision};
use rand::Rng;

/// Matrix product at the tape's precision: full f64 by default, the
/// mixed f32 kernel (f64 accumulation at reduction boundaries) when the
/// tape was built with [`Tape::with_precision`]`(Precision::F32)`.
fn mm(precision: Precision, a: &Matrix, b: &Matrix) -> fia_linalg::Result<Matrix> {
    match precision {
        Precision::F64 => a.matmul(b),
        Precision::F32 => a.matmul_mixed(b),
    }
}

/// Handle to a value on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

impl VarId {
    /// Raw node index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Differentiable operations recorded on the tape.
///
/// Variants that need saved state for their backward pass (dropout masks,
/// LayerNorm statistics) carry it inline so backward never recomputes
/// stochastic or expensive quantities.
enum Op {
    /// Constant leaf (no gradient collected, but gradients still flow
    /// through ops that consume it).
    Input,
    /// Trainable leaf bound from a [`Params`] store.
    Param(ParamId),
    MatMul(VarId, VarId),
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Hadamard(VarId, VarId),
    /// `a[m×n] + bias[1×n]` broadcast over rows.
    AddRowBroadcast(VarId, VarId),
    Scale(VarId, f64),
    /// `x + c`; the constant is baked into the forward value and its
    /// gradient is the identity, so only the input id is stored.
    AddScalar(VarId),
    Relu(VarId),
    LeakyRelu(VarId, f64),
    Sigmoid(VarId),
    Tanh(VarId),
    /// Row-wise softmax; backward uses the saved output value.
    SoftmaxRows(VarId),
    /// Natural log (inputs must be positive).
    Log(VarId),
    /// Column means: `[m×n] → [1×n]`.
    ColMean(VarId),
    SumAll(VarId),
    MeanAll(VarId),
    /// Fused mean-squared-error `mean((pred − target)²)`; scalar output.
    MseLoss(VarId, VarId),
    /// Fused softmax + cross-entropy against a one-hot (or soft) target
    /// distribution, averaged over rows; saves the softmax output.
    CrossEntropyLogits {
        logits: VarId,
        target: VarId,
        softmax: Matrix,
    },
    LayerNorm {
        x: VarId,
        gamma: VarId,
        beta: VarId,
        /// Saved normalized activations x̂.
        xhat: Matrix,
        /// Saved per-row 1/σ.
        inv_std: Vec<f64>,
    },
    /// Inverted dropout; `mask` already contains 0 or 1/(1−p).
    Dropout {
        x: VarId,
        mask: Matrix,
    },
    ConcatCols(VarId, VarId),
    SliceCols {
        x: VarId,
        start: usize,
        end: usize,
    },
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    /// `true` when this node is a parameter or (transitively) consumes one;
    /// backward skips gradient propagation into subgraphs that cannot
    /// reach a parameter *unless* the caller asked for input gradients.
    needs_grad: bool,
}

/// A dynamic computation graph. See the crate docs for the usage pattern.
pub struct Tape {
    nodes: Vec<Node>,
    /// When `true`, [`Tape::input`] leaves also receive gradients. The GRN
    /// attack needs this switched on for nothing — inputs it cares about
    /// are generator outputs — but diagnostic tooling (saliency, the
    /// gradient-checker) wants input grads, so it is configurable.
    grad_for_inputs: bool,
    /// Compute precision for the matmul-heavy ops (forward *and* backward
    /// products). Everything else — activations, reductions, LayerNorm,
    /// optimizer state upstream — stays f64 regardless, which is where
    /// the mixed path's "f64 accumulation at reduction boundaries"
    /// contract lives.
    precision: Precision,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            grad_for_inputs: false,
            precision: Precision::F64,
        }
    }

    /// Creates a tape that also accumulates gradients for [`Tape::input`]
    /// leaves (used by the gradient checker and saliency tooling).
    pub fn with_input_grads() -> Self {
        Tape {
            nodes: Vec::new(),
            grad_for_inputs: true,
            precision: Precision::F64,
        }
    }

    /// Creates a tape whose matmul ops (forward and backward) run at the
    /// given [`Precision`]. `Precision::F64` is identical to
    /// [`Tape::new`]; `Precision::F32` is the opt-in mixed-precision path
    /// GRNA generator training uses.
    pub fn with_precision(precision: Precision) -> Self {
        Tape {
            nodes: Vec::new(),
            grad_for_inputs: false,
            precision,
        }
    }

    /// The precision this tape's matmuls run at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> VarId {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            needs_grad,
        });
        VarId(self.nodes.len() - 1)
    }

    fn needs(&self, v: VarId) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tape holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a node.
    pub fn value(&self, v: VarId) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of a node after [`Tape::backward`]; `None` when no
    /// gradient reached it.
    pub fn grad(&self, v: VarId) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// The [`ParamId`] a node was bound from, if it is a parameter leaf.
    pub fn param_id(&self, v: VarId) -> Option<ParamId> {
        match self.nodes[v.0].op {
            Op::Param(id) => Some(id),
            _ => None,
        }
    }

    /// Collects `(ParamId, gradient)` pairs for every parameter leaf that
    /// received a gradient — the exact shape optimizers consume.
    pub fn param_grads(&self) -> Vec<(ParamId, Matrix)> {
        self.nodes
            .iter()
            .filter_map(|n| match (&n.op, &n.grad) {
                (Op::Param(id), Some(g)) => Some((*id, g.clone())),
                _ => None,
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Records a constant input leaf. Gradients flow *through* consumers
    /// of this value but are not accumulated at the leaf itself (unless
    /// the tape was built with [`Tape::with_input_grads`]).
    pub fn input(&mut self, value: Matrix) -> VarId {
        let ng = self.grad_for_inputs;
        self.push(value, Op::Input, ng)
    }

    /// Binds a trainable parameter from `params` onto the tape (copies the
    /// current value). After backward, collect its gradient with
    /// [`Tape::grad`] and feed it to an optimizer.
    pub fn param(&mut self, params: &Params, id: ParamId) -> VarId {
        self.push(params.get(id).clone(), Op::Param(id), true)
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Matrix product `a · b`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch — tapes are built by library
    /// code with statically known layer shapes, so a mismatch is a bug.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = mm(
            self.precision,
            &self.nodes[a.0].value,
            &self.nodes[b.0].value,
        )
        .expect("tape matmul: shape mismatch");
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MatMul(a, b), ng)
    }

    /// Element-wise sum of two same-shape values.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0]
            .value
            .add(&self.nodes[b.0].value)
            .expect("tape add: shape mismatch");
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Add(a, b), ng)
    }

    /// Element-wise difference `a − b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0]
            .value
            .sub(&self.nodes[b.0].value)
            .expect("tape sub: shape mismatch");
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Sub(a, b), ng)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0]
            .value
            .hadamard(&self.nodes[b.0].value)
            .expect("tape hadamard: shape mismatch");
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Hadamard(a, b), ng)
    }

    /// Adds a `1 × n` bias row to every row of an `m × n` value.
    pub fn add_row_broadcast(&mut self, a: VarId, bias: VarId) -> VarId {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[bias.0].value;
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(av.cols(), bv.cols(), "bias width mismatch");
        let mut out = av.clone();
        for i in 0..out.rows() {
            let brow = bv.row(0).to_vec();
            for (o, b) in out.row_mut(i).iter_mut().zip(brow.iter()) {
                *o += b;
            }
        }
        let ng = self.needs(a) || self.needs(bias);
        self.push(out, Op::AddRowBroadcast(a, bias), ng)
    }

    /// Multiplies every element by the constant `c`.
    pub fn scale(&mut self, a: VarId, c: f64) -> VarId {
        let v = self.nodes[a.0].value.scale(c);
        let ng = self.needs(a);
        self.push(v, Op::Scale(a, c), ng)
    }

    /// Adds the constant `c` to every element.
    pub fn add_scalar(&mut self, a: VarId, c: f64) -> VarId {
        let v = self.nodes[a.0].value.map(|x| x + c);
        let ng = self.needs(a);
        self.push(v, Op::AddScalar(a), ng)
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Rectified linear unit `max(0, x)`.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push(v, Op::Relu(a), ng)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: VarId, alpha: f64) -> VarId {
        let v = self.nodes[a.0]
            .value
            .map(|x| if x > 0.0 { x } else { alpha * x });
        let ng = self.needs(a);
        self.push(v, Op::LeakyRelu(a, alpha), ng)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.map(fia_linalg::vecops::sigmoid);
        let ng = self.needs(a);
        self.push(v, Op::Sigmoid(a), ng)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.map(f64::tanh);
        let ng = self.needs(a);
        self.push(v, Op::Tanh(a), ng)
    }

    /// Row-wise softmax (numerically stable).
    pub fn softmax_rows(&mut self, a: VarId) -> VarId {
        let av = &self.nodes[a.0].value;
        let mut out = Matrix::zeros(av.rows(), av.cols());
        for i in 0..av.rows() {
            let s = fia_linalg::vecops::softmax(av.row(i));
            out.row_mut(i).copy_from_slice(&s);
        }
        let ng = self.needs(a);
        self.push(out, Op::SoftmaxRows(a), ng)
    }

    /// Natural logarithm. Values are clamped to `≥ 1e-300` before the log
    /// so a zero confidence score produced by an aggressive rounding
    /// defense degrades gracefully instead of emitting `-inf`.
    pub fn log(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.map(|x| x.max(1e-300).ln());
        let ng = self.needs(a);
        self.push(v, Op::Log(a), ng)
    }

    // ------------------------------------------------------------------
    // Reductions & losses
    // ------------------------------------------------------------------

    /// Column means: `[m×n] → [1×n]`.
    pub fn col_mean(&mut self, a: VarId) -> VarId {
        let av = &self.nodes[a.0].value;
        let (m, n) = av.shape();
        let mut out = Matrix::zeros(1, n);
        for i in 0..m {
            for (j, &x) in av.row(i).iter().enumerate() {
                out[(0, j)] += x;
            }
        }
        for j in 0..n {
            out[(0, j)] /= m as f64;
        }
        let ng = self.needs(a);
        self.push(out, Op::ColMean(a), ng)
    }

    /// Sum of all elements; `1 × 1` output.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let s: f64 = self.nodes[a.0].value.as_slice().iter().sum();
        let ng = self.needs(a);
        self.push(Matrix::filled(1, 1, s), Op::SumAll(a), ng)
    }

    /// Mean of all elements; `1 × 1` output.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let slice = self.nodes[a.0].value.as_slice();
        let s: f64 = slice.iter().sum::<f64>() / slice.len() as f64;
        let ng = self.needs(a);
        self.push(Matrix::filled(1, 1, s), Op::MeanAll(a), ng)
    }

    /// Mean-squared-error loss `mean((pred − target)²)`; `1 × 1` output.
    pub fn mse_loss(&mut self, pred: VarId, target: VarId) -> VarId {
        let p = &self.nodes[pred.0].value;
        let t = &self.nodes[target.0].value;
        assert_eq!(p.shape(), t.shape(), "mse_loss: shape mismatch");
        let n = p.as_slice().len() as f64;
        let s: f64 = p
            .as_slice()
            .iter()
            .zip(t.as_slice().iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            / n;
        let ng = self.needs(pred) || self.needs(target);
        self.push(Matrix::filled(1, 1, s), Op::MseLoss(pred, target), ng)
    }

    /// Fused softmax + cross-entropy against a target distribution
    /// (one-hot or soft labels), averaged over rows; `1 × 1` output.
    pub fn cross_entropy_logits(&mut self, logits: VarId, target: VarId) -> VarId {
        let z = &self.nodes[logits.0].value;
        let t = &self.nodes[target.0].value;
        assert_eq!(z.shape(), t.shape(), "cross_entropy_logits: shape mismatch");
        let (m, n) = z.shape();
        let mut soft = Matrix::zeros(m, n);
        let mut loss = 0.0;
        for i in 0..m {
            let s = fia_linalg::vecops::softmax(z.row(i));
            for (j, &p) in s.iter().enumerate() {
                loss -= t[(i, j)] * p.max(1e-300).ln();
            }
            soft.row_mut(i).copy_from_slice(&s);
        }
        loss /= m as f64;
        let ng = self.needs(logits) || self.needs(target);
        self.push(
            Matrix::filled(1, 1, loss),
            Op::CrossEntropyLogits {
                logits,
                target,
                softmax: soft,
            },
            ng,
        )
    }

    // ------------------------------------------------------------------
    // Normalization & regularization
    // ------------------------------------------------------------------

    /// Layer normalization over each row, with learnable `gamma`/`beta`
    /// (`1 × n` each): `y = gamma ⊙ (x − μ_row)/√(σ²_row + eps) + beta`.
    pub fn layer_norm(&mut self, x: VarId, gamma: VarId, beta: VarId, eps: f64) -> VarId {
        let xv = &self.nodes[x.0].value;
        let (m, n) = xv.shape();
        let gv = &self.nodes[gamma.0].value;
        let bv = &self.nodes[beta.0].value;
        assert_eq!(gv.shape(), (1, n), "layer_norm: gamma must be 1×n");
        assert_eq!(bv.shape(), (1, n), "layer_norm: beta must be 1×n");
        let mut xhat = Matrix::zeros(m, n);
        let mut inv_std = vec![0.0; m];
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let row = xv.row(i);
            let mu = fia_linalg::vecops::mean(row);
            let var = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / n as f64;
            let istd = 1.0 / (var + eps).sqrt();
            inv_std[i] = istd;
            for j in 0..n {
                let h = (row[j] - mu) * istd;
                xhat[(i, j)] = h;
                out[(i, j)] = gv[(0, j)] * h + bv[(0, j)];
            }
        }
        let ng = self.needs(x) || self.needs(gamma) || self.needs(beta);
        self.push(
            out,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            },
            ng,
        )
    }

    /// Inverted dropout: zeroes each element with probability `p` and
    /// scales survivors by `1/(1−p)`. Call only during training; at
    /// inference simply skip the op.
    pub fn dropout<R: Rng + ?Sized>(&mut self, x: VarId, p: f64, rng: &mut R) -> VarId {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        let xv = &self.nodes[x.0].value;
        let keep = 1.0 - p;
        let mask = Matrix::from_fn(xv.rows(), xv.cols(), |_, _| {
            if rng.gen::<f64>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let out = xv.hadamard(&mask).expect("same shape by construction");
        let ng = self.needs(x);
        self.push(out, Op::Dropout { x, mask }, ng)
    }

    // ------------------------------------------------------------------
    // Shape plumbing
    // ------------------------------------------------------------------

    /// Horizontal concatenation `[a | b]` of two values with equal row
    /// counts. This is how the GRN generator input `x_adv ∪ r` and the
    /// generated sample `x_adv ∪ x̂_target` are assembled.
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0]
            .value
            .hstack(&self.nodes[b.0].value)
            .expect("concat_cols: row mismatch");
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::ConcatCols(a, b), ng)
    }

    /// Column slice `a[:, start..end]`.
    pub fn slice_cols(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        let av = &self.nodes[a.0].value;
        assert!(start < end && end <= av.cols(), "slice_cols: bad range");
        let cols: Vec<usize> = (start..end).collect();
        let v = av.select_columns(&cols).expect("validated range");
        let ng = self.needs(a);
        self.push(v, Op::SliceCols { x: a, start, end }, ng)
    }

    // ------------------------------------------------------------------
    // Composite helpers
    // ------------------------------------------------------------------

    /// Column-variance hinge penalty
    /// `Σ_j max(0, Var_rows(x)_j − threshold)`, the GRN regularizer that
    /// keeps generated features from diverging (Section V-A). Built from
    /// primitive ops so it needs no bespoke backward rule.
    pub fn variance_penalty(&mut self, x: VarId, threshold: f64) -> VarId {
        let mu = self.col_mean(x); // 1×n
        let neg_mu = self.scale(mu, -1.0);
        let centered = self.add_row_broadcast(x, neg_mu); // x − μ
        let sq = self.hadamard(centered, centered);
        let var = self.col_mean(sq); // 1×n column variances
        let shifted = self.add_scalar(var, -threshold);
        let hinged = self.relu(shifted);
        self.sum_all(hinged)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation seeding `d loss / d loss = 1`.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1 × 1` scalar node.
    pub fn backward(&mut self, loss: VarId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward: loss must be scalar"
        );
        self.nodes[loss.0].grad = Some(Matrix::filled(1, 1, 1.0));

        for idx in (0..=loss.0).rev() {
            if !self.nodes[idx].needs_grad {
                continue;
            }
            let Some(g) = self.nodes[idx].grad.take() else {
                continue;
            };
            self.propagate(idx, &g);
            // Restore the gradient so callers can read it afterwards.
            self.nodes[idx].grad = Some(g);
        }
    }

    /// Adds `delta` into the gradient buffer of `target` if that node
    /// participates in differentiation. The first contribution moves the
    /// buffer in; later ones accumulate in place — no per-contribution
    /// allocation.
    fn accumulate(&mut self, target: VarId, delta: Matrix) {
        let node = &mut self.nodes[target.0];
        if !node.needs_grad {
            return;
        }
        match &mut node.grad {
            Some(g) => {
                debug_assert_eq!(g.shape(), delta.shape(), "gradient shape stable");
                // Dispatched axpy with α = 1 — exact (1.0·x rounds to x),
                // so gradient accumulation stays backend-independent.
                fia_linalg::vecops::axpy(1.0, delta.as_slice(), g.as_mut_slice());
            }
            None => node.grad = Some(delta),
        }
    }

    /// Like [`Tape::accumulate`] but borrows the upstream gradient,
    /// cloning only when `target` has no buffer yet. This is the fast path
    /// for pass-through ops (`Add`, `Sub`, `AddScalar`,
    /// `AddRowBroadcast`) whose local Jacobian is the identity: fan-out
    /// nodes accumulate in place instead of cloning the gradient per
    /// branch.
    fn accumulate_ref(&mut self, target: VarId, delta: &Matrix) {
        let node = &mut self.nodes[target.0];
        if !node.needs_grad {
            return;
        }
        match &mut node.grad {
            Some(g) => {
                debug_assert_eq!(g.shape(), delta.shape(), "gradient shape stable");
                fia_linalg::vecops::axpy(1.0, delta.as_slice(), g.as_mut_slice());
            }
            None => node.grad = Some(delta.clone()),
        }
    }

    fn propagate(&mut self, idx: usize, g: &Matrix) {
        // Clone the cheap metadata out of the op to avoid aliasing;
        // heavyweight saved matrices are borrowed immutably first.
        match &self.nodes[idx].op {
            Op::Input | Op::Param(_) => {}
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                let prec = self.precision;
                if self.needs(a) {
                    let bt = self.nodes[b.0].value.transpose();
                    let da = mm(prec, g, &bt).expect("shapes consistent");
                    self.accumulate(a, da);
                }
                if self.needs(b) {
                    let at = self.nodes[a.0].value.transpose();
                    let db = mm(prec, &at, g).expect("shapes consistent");
                    self.accumulate(b, db);
                }
            }
            Op::Add(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate_ref(a, g);
                self.accumulate_ref(b, g);
            }
            Op::Sub(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate_ref(a, g);
                if self.needs(b) {
                    self.accumulate(b, g.scale(-1.0));
                }
            }
            Op::Hadamard(a, b) => {
                let (a, b) = (*a, *b);
                if self.needs(a) {
                    let da = g.hadamard(&self.nodes[b.0].value).expect("shape");
                    self.accumulate(a, da);
                }
                if self.needs(b) {
                    let db = g.hadamard(&self.nodes[a.0].value).expect("shape");
                    self.accumulate(b, db);
                }
            }
            Op::AddRowBroadcast(a, bias) => {
                let (a, bias) = (*a, *bias);
                self.accumulate_ref(a, g);
                if self.needs(bias) {
                    let mut db = Matrix::zeros(1, g.cols());
                    for i in 0..g.rows() {
                        for (j, &v) in g.row(i).iter().enumerate() {
                            db[(0, j)] += v;
                        }
                    }
                    self.accumulate(bias, db);
                }
            }
            Op::Scale(a, c) => {
                let (a, c) = (*a, *c);
                self.accumulate(a, g.scale(c));
            }
            Op::AddScalar(a) => {
                let a = *a;
                self.accumulate_ref(a, g);
            }
            Op::Relu(a) => {
                let a = *a;
                let da = Matrix::from_fn(g.rows(), g.cols(), |i, j| {
                    if self.nodes[a.0].value[(i, j)] > 0.0 {
                        g[(i, j)]
                    } else {
                        0.0
                    }
                });
                self.accumulate(a, da);
            }
            Op::LeakyRelu(a, alpha) => {
                let (a, alpha) = (*a, *alpha);
                let da = Matrix::from_fn(g.rows(), g.cols(), |i, j| {
                    if self.nodes[a.0].value[(i, j)] > 0.0 {
                        g[(i, j)]
                    } else {
                        alpha * g[(i, j)]
                    }
                });
                self.accumulate(a, da);
            }
            Op::Sigmoid(a) => {
                let a = *a;
                let y = &self.nodes[idx].value;
                let da = Matrix::from_fn(g.rows(), g.cols(), |i, j| {
                    let s = y[(i, j)];
                    g[(i, j)] * s * (1.0 - s)
                });
                self.accumulate(a, da);
            }
            Op::Tanh(a) => {
                let a = *a;
                let y = &self.nodes[idx].value;
                let da = Matrix::from_fn(g.rows(), g.cols(), |i, j| {
                    let t = y[(i, j)];
                    g[(i, j)] * (1.0 - t * t)
                });
                self.accumulate(a, da);
            }
            Op::SoftmaxRows(a) => {
                let a = *a;
                let s = &self.nodes[idx].value;
                let mut da = Matrix::zeros(g.rows(), g.cols());
                for i in 0..g.rows() {
                    let dot: f64 = g
                        .row(i)
                        .iter()
                        .zip(s.row(i).iter())
                        .map(|(&gv, &sv)| gv * sv)
                        .sum();
                    for j in 0..g.cols() {
                        da[(i, j)] = s[(i, j)] * (g[(i, j)] - dot);
                    }
                }
                self.accumulate(a, da);
            }
            Op::Log(a) => {
                let a = *a;
                let x = &self.nodes[a.0].value;
                let da =
                    Matrix::from_fn(g.rows(), g.cols(), |i, j| g[(i, j)] / x[(i, j)].max(1e-300));
                self.accumulate(a, da);
            }
            Op::ColMean(a) => {
                let a = *a;
                let m = self.nodes[a.0].value.rows();
                let scale = 1.0 / m as f64;
                let da = Matrix::from_fn(m, g.cols(), |_, j| g[(0, j)] * scale);
                self.accumulate(a, da);
            }
            Op::SumAll(a) => {
                let a = *a;
                let (m, n) = self.nodes[a.0].value.shape();
                let da = Matrix::filled(m, n, g[(0, 0)]);
                self.accumulate(a, da);
            }
            Op::MeanAll(a) => {
                let a = *a;
                let (m, n) = self.nodes[a.0].value.shape();
                let da = Matrix::filled(m, n, g[(0, 0)] / (m * n) as f64);
                self.accumulate(a, da);
            }
            Op::MseLoss(p, t) => {
                let (p, t) = (*p, *t);
                let n = self.nodes[p.0].value.as_slice().len() as f64;
                let coeff = 2.0 * g[(0, 0)] / n;
                let diff = {
                    let pv = &self.nodes[p.0].value;
                    let tv = &self.nodes[t.0].value;
                    pv.sub(tv).expect("mse shapes equal").scale(coeff)
                };
                if self.needs(p) {
                    self.accumulate(p, diff.clone());
                }
                if self.needs(t) {
                    self.accumulate(t, diff.scale(-1.0));
                }
            }
            Op::CrossEntropyLogits {
                logits,
                target,
                softmax,
            } => {
                let (logits, target) = (*logits, *target);
                let soft = softmax.clone();
                let tv = self.nodes[target.0].value.clone();
                let m = soft.rows() as f64;
                let coeff = g[(0, 0)] / m;
                if self.needs(logits) {
                    // For soft targets with Σ_j t_ij = s_i,
                    // dL/dz_ij = (s_i · softmax_ij − t_ij) / m.
                    let mut dz = Matrix::zeros(soft.rows(), soft.cols());
                    for i in 0..soft.rows() {
                        let tsum: f64 = tv.row(i).iter().sum();
                        for j in 0..soft.cols() {
                            dz[(i, j)] = coeff * (tsum * soft[(i, j)] - tv[(i, j)]);
                        }
                    }
                    self.accumulate(logits, dz);
                }
                if self.needs(target) {
                    let dt = Matrix::from_fn(soft.rows(), soft.cols(), |i, j| {
                        -coeff * soft[(i, j)].max(1e-300).ln()
                    });
                    self.accumulate(target, dt);
                }
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            } => {
                let (x, gamma, beta) = (*x, *gamma, *beta);
                let xhat = xhat.clone();
                let inv_std = inv_std.clone();
                let gv = self.nodes[gamma.0].value.clone();
                let (m, n) = xhat.shape();
                if self.needs(gamma) {
                    let mut dg = Matrix::zeros(1, n);
                    for i in 0..m {
                        for j in 0..n {
                            dg[(0, j)] += g[(i, j)] * xhat[(i, j)];
                        }
                    }
                    self.accumulate(gamma, dg);
                }
                if self.needs(beta) {
                    let mut db = Matrix::zeros(1, n);
                    for i in 0..m {
                        for j in 0..n {
                            db[(0, j)] += g[(i, j)];
                        }
                    }
                    self.accumulate(beta, db);
                }
                if self.needs(x) {
                    // Standard LayerNorm backward:
                    // dx̂ = g ⊙ γ;
                    // dx = (dx̂ − mean(dx̂) − x̂ ⊙ mean(dx̂ ⊙ x̂)) · invσ
                    let mut dx = Matrix::zeros(m, n);
                    for i in 0..m {
                        let mut sum_dxhat = 0.0;
                        let mut sum_dxhat_xhat = 0.0;
                        for j in 0..n {
                            let dxh = g[(i, j)] * gv[(0, j)];
                            sum_dxhat += dxh;
                            sum_dxhat_xhat += dxh * xhat[(i, j)];
                        }
                        let mean_dxhat = sum_dxhat / n as f64;
                        let mean_dxhat_xhat = sum_dxhat_xhat / n as f64;
                        for j in 0..n {
                            let dxh = g[(i, j)] * gv[(0, j)];
                            dx[(i, j)] =
                                (dxh - mean_dxhat - xhat[(i, j)] * mean_dxhat_xhat) * inv_std[i];
                        }
                    }
                    self.accumulate(x, dx);
                }
            }
            Op::Dropout { x, mask } => {
                let x = *x;
                let da = g.hadamard(mask).expect("mask shape matches");
                self.accumulate(x, da);
            }
            Op::ConcatCols(a, b) => {
                let (a, b) = (*a, *b);
                let ac = self.nodes[a.0].value.cols();
                if self.needs(a) {
                    let cols: Vec<usize> = (0..ac).collect();
                    let da = g.select_columns(&cols).expect("in range");
                    self.accumulate(a, da);
                }
                if self.needs(b) {
                    let cols: Vec<usize> = (ac..g.cols()).collect();
                    let db = g.select_columns(&cols).expect("in range");
                    self.accumulate(b, db);
                }
            }
            Op::SliceCols { x, start, end } => {
                let (x, start, end) = (*x, *start, *end);
                let xv = &self.nodes[x.0].value;
                let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                for i in 0..g.rows() {
                    for (off, j) in (start..end).enumerate() {
                        dx[(i, j)] = g[(i, off)];
                    }
                }
                self.accumulate(x, dx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn scalar(tape: &Tape, v: VarId) -> f64 {
        tape.value(v)[(0, 0)]
    }

    #[test]
    fn matmul_gradients() {
        let mut params = Params::new();
        let w = params.insert(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap());
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[vec![1.0, -1.0]]).unwrap());
        let wv = tape.param(&params, w);
        let y = tape.matmul(x, wv); // [1×2]
        let loss = tape.sum_all(y);
        tape.backward(loss);
        // y = [1·1 + (−1)·3, 1·2 + (−1)·4] = [−2, −2]; dL/dW = xᵀ·1 = [[1,1],[−1,−1]]
        assert_eq!(scalar(&tape, loss), -4.0);
        let gw = tape.grad(wv).unwrap();
        assert_eq!(gw.as_slice(), &[1.0, 1.0, -1.0, -1.0]);
    }

    #[test]
    fn input_gets_no_grad_by_default() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::filled(1, 2, 2.0));
        let s = tape.sum_all(x);
        tape.backward(s);
        assert!(tape.grad(x).is_none());
    }

    #[test]
    fn input_grads_when_enabled() {
        let mut tape = Tape::with_input_grads();
        let x = tape.input(Matrix::filled(2, 2, 3.0));
        let s = tape.mean_all(x);
        tape.backward(s);
        let g = tape.grad(x).unwrap();
        assert!(g.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-15));
    }

    #[test]
    fn sigmoid_grad_matches_closed_form() {
        let mut params = Params::new();
        let w = params.insert(Matrix::filled(1, 1, 0.3));
        let mut tape = Tape::new();
        let wv = tape.param(&params, w);
        let y = tape.sigmoid(wv);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let s = fia_linalg::vecops::sigmoid(0.3);
        let expect = s * (1.0 - s);
        assert!((tape.grad(wv).unwrap()[(0, 0)] - expect).abs() < 1e-12);
    }

    #[test]
    fn mse_loss_value_and_grad() {
        let mut params = Params::new();
        let p = params.insert(Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap());
        let mut tape = Tape::new();
        let pv = tape.param(&params, p);
        let t = tape.input(Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap());
        let loss = tape.mse_loss(pv, t);
        tape.backward(loss);
        assert!((scalar(&tape, loss) - 2.5).abs() < 1e-12); // (1 + 4)/2
        let g = tape.grad(pv).unwrap();
        assert_eq!(g.as_slice(), &[1.0, 2.0]); // 2(p−t)/2
    }

    #[test]
    fn cross_entropy_grad_is_softmax_minus_onehot() {
        let mut params = Params::new();
        let z = params.insert(Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap());
        let mut tape = Tape::new();
        let zv = tape.param(&params, z);
        let t = tape.input(Matrix::from_rows(&[vec![0.0, 1.0, 0.0]]).unwrap());
        let loss = tape.cross_entropy_logits(zv, t);
        tape.backward(loss);
        let s = fia_linalg::vecops::softmax(&[1.0, 2.0, 3.0]);
        let g = tape.grad(zv).unwrap();
        assert!((g[(0, 0)] - s[0]).abs() < 1e-12);
        assert!((g[(0, 1)] - (s[1] - 1.0)).abs() < 1e-12);
        assert!((g[(0, 2)] - s[2]).abs() < 1e-12);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[vec![5.0, 1.0], vec![-2.0, 4.0]]).unwrap());
        let s = tape.softmax_rows(x);
        for i in 0..2 {
            let sum: f64 = tape.value(s).row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn concat_and_slice_roundtrip_grads() {
        let mut params = Params::new();
        let a = params.insert(Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap());
        let b = params.insert(Matrix::from_rows(&[vec![3.0]]).unwrap());
        let mut tape = Tape::new();
        let av = tape.param(&params, a);
        let bv = tape.param(&params, b);
        let cat = tape.concat_cols(av, bv); // [1×3]
        assert_eq!(tape.value(cat).as_slice(), &[1.0, 2.0, 3.0]);
        // Take only the b-slice so a receives zero gradient via slice.
        let sl = tape.slice_cols(cat, 2, 3);
        let loss = tape.sum_all(sl);
        tape.backward(loss);
        assert_eq!(tape.grad(bv).unwrap()[(0, 0)], 1.0);
        let ga = tape.grad(av).unwrap();
        assert_eq!(ga.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn add_row_broadcast_bias_grad_is_column_sum() {
        let mut params = Params::new();
        let b = params.insert(Matrix::from_rows(&[vec![0.5, -0.5]]).unwrap());
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_fn(3, 2, |i, j| (i + j) as f64));
        let bv = tape.param(&params, b);
        let y = tape.add_row_broadcast(x, bv);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let g = tape.grad(bv).unwrap();
        assert_eq!(g.as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn relu_masks_negative_gradient() {
        let mut params = Params::new();
        let w = params.insert(Matrix::from_rows(&[vec![-1.0, 2.0]]).unwrap());
        let mut tape = Tape::new();
        let wv = tape.param(&params, w);
        let y = tape.relu(wv);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.grad(wv).unwrap().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn dropout_scales_survivors() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::filled(50, 50, 1.0));
        let y = tape.dropout(x, 0.5, &mut rng);
        let vals = tape.value(y).as_slice();
        // Survivors are exactly 2.0; dropped are 0.0.
        assert!(vals.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-12));
        let survivors = vals.iter().filter(|&&v| v > 0.0).count();
        let frac = survivors as f64 / vals.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "keep fraction {frac}");
    }

    #[test]
    fn layer_norm_rows_are_standardized() {
        let mut params = Params::new();
        let gamma = params.insert(Matrix::filled(1, 4, 1.0));
        let beta = params.insert(Matrix::zeros(1, 4));
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]).unwrap());
        let gv = tape.param(&params, gamma);
        let bv = tape.param(&params, beta);
        let y = tape.layer_norm(x, gv, bv, 1e-5);
        let row = tape.value(y).row(0);
        let mean: f64 = row.iter().sum::<f64>() / 4.0;
        let var: f64 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-10);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn variance_penalty_zero_below_threshold() {
        let mut tape = Tape::with_input_grads();
        // Constant columns → zero variance → zero penalty.
        let x = tape.input(Matrix::filled(5, 3, 0.7));
        let pen = tape.variance_penalty(x, 0.1);
        assert_eq!(scalar(&tape, pen), 0.0);
    }

    #[test]
    fn variance_penalty_positive_above_threshold() {
        let mut tape = Tape::with_input_grads();
        let x = tape.input(Matrix::from_rows(&[vec![0.0], vec![10.0]]).unwrap());
        // var = 25; threshold 1 → penalty 24.
        let pen = tape.variance_penalty(x, 1.0);
        assert!((scalar(&tape, pen) - 24.0).abs() < 1e-10);
        tape.backward(pen);
        let g = tape.grad(x).unwrap();
        // Gradient pushes the two entries toward each other.
        assert!(g[(0, 0)] < 0.0 && g[(1, 0)] > 0.0);
    }

    #[test]
    fn scale_add_scalar_chain() {
        let mut params = Params::new();
        let w = params.insert(Matrix::filled(1, 1, 4.0));
        let mut tape = Tape::new();
        let wv = tape.param(&params, w);
        let y = tape.scale(wv, 3.0);
        let z = tape.add_scalar(y, 1.0);
        let loss = tape.sum_all(z);
        tape.backward(loss);
        assert_eq!(scalar(&tape, loss), 13.0);
        assert_eq!(tape.grad(wv).unwrap()[(0, 0)], 3.0);
    }

    #[test]
    fn grad_accumulates_over_shared_subexpression() {
        let mut params = Params::new();
        let w = params.insert(Matrix::filled(1, 1, 2.0));
        let mut tape = Tape::new();
        let wv = tape.param(&params, w);
        let y = tape.add(wv, wv); // y = 2w
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.grad(wv).unwrap()[(0, 0)], 2.0);
    }

    #[test]
    fn f32_tape_matches_f64_to_single_precision() {
        use fia_linalg::Precision;
        let mut params = Params::new();
        let w = params.insert(Matrix::from_fn(6, 4, |i, j| {
            ((i * 4 + j) as f64 * 0.137).sin() * 0.5
        }));
        let x_val = Matrix::from_fn(3, 6, |i, j| ((i * 6 + j) as f64 * 0.311).cos());
        let t_val = Matrix::from_fn(3, 4, |i, j| ((i + j) as f64 * 0.21).sin());

        let run = |precision: Precision| {
            let mut tape = Tape::with_precision(precision);
            let x = tape.input(x_val.clone());
            let wv = tape.param(&params, w);
            let y = tape.matmul(x, wv);
            let t = tape.input(t_val.clone());
            let loss = tape.mse_loss(y, t);
            tape.backward(loss);
            (tape.value(loss)[(0, 0)], tape.grad(wv).unwrap().clone())
        };

        let (l64, g64) = run(Precision::F64);
        let (l32, g32) = run(Precision::F32);
        assert!((l64 - l32).abs() < 1e-5, "loss drifted: {l64} vs {l32}");
        assert!(g64.max_abs_diff(&g32).unwrap() < 1e-5);
        assert_eq!(
            Tape::with_precision(Precision::F32).precision(),
            Precision::F32
        );
        assert_eq!(Tape::new().precision(), Precision::F64);
    }

    #[test]
    fn tanh_and_leaky_relu_grads() {
        let mut params = Params::new();
        let w = params.insert(Matrix::from_rows(&[vec![0.5, -0.5]]).unwrap());
        let mut tape = Tape::new();
        let wv = tape.param(&params, w);
        let t = tape.tanh(wv);
        let l = tape.leaky_relu(t, 0.1);
        let loss = tape.sum_all(l);
        tape.backward(loss);
        let g = tape.grad(wv).unwrap();
        let th = 0.5f64.tanh();
        // Positive branch: d/dw tanh(w) = 1 − tanh².
        assert!((g[(0, 0)] - (1.0 - th * th)).abs() < 1e-12);
        // Negative branch picks up the 0.1 slope.
        assert!((g[(0, 1)] - 0.1 * (1.0 - th * th)).abs() < 1e-12);
    }
}
