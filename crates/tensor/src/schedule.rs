//! Learning-rate schedules and gradient clipping.
//!
//! Small utilities that stabilize the GRN generator's training at larger
//! scales: long runs of Adam on the paper-size generator (600/200/100)
//! benefit from a decaying rate, and the free-variable ablation (Table
//! III case 4) can produce huge early gradients worth clipping.

use crate::params::ParamId;
use fia_linalg::Matrix;

/// A learning-rate schedule: maps a 0-based epoch index to a multiplier
/// applied to the optimizer's base rate.
pub trait LrSchedule {
    /// Multiplier for `epoch` (1.0 = base rate).
    fn factor(&self, epoch: usize) -> f64;
}

/// Constant rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct Constant;

impl LrSchedule for Constant {
    fn factor(&self, _epoch: usize) -> f64 {
        1.0
    }
}

/// Multiplies the rate by `gamma` every `step` epochs.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Epochs between decays.
    pub step: usize,
    /// Per-step multiplier (e.g. 0.5).
    pub gamma: f64,
}

impl LrSchedule for StepDecay {
    fn factor(&self, epoch: usize) -> f64 {
        self.gamma.powi((epoch / self.step.max(1)) as i32)
    }
}

/// Cosine annealing from 1.0 down to `floor` over `total_epochs`.
#[derive(Debug, Clone, Copy)]
pub struct CosineAnnealing {
    /// Schedule horizon.
    pub total_epochs: usize,
    /// Final multiplier (≥ 0).
    pub floor: f64,
}

impl LrSchedule for CosineAnnealing {
    fn factor(&self, epoch: usize) -> f64 {
        let t = (epoch as f64 / self.total_epochs.max(1) as f64).min(1.0);
        let cos = 0.5 * (1.0 + (std::f64::consts::PI * t).cos());
        self.floor + (1.0 - self.floor) * cos
    }
}

/// Scales a gradient batch so its global L2 norm is at most `max_norm`;
/// returns the pre-clipping norm.
pub fn clip_grad_norm(grads: &mut [(ParamId, Matrix)], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total: f64 = grads
        .iter()
        .map(|(_, g)| g.as_slice().iter().map(|&x| x * x).sum::<f64>())
        .sum::<f64>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for (_, g) in grads.iter_mut() {
            *g = g.scale(scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    #[test]
    fn constant_is_one() {
        assert_eq!(Constant.factor(0), 1.0);
        assert_eq!(Constant.factor(100), 1.0);
    }

    #[test]
    fn step_decay_halves() {
        let s = StepDecay {
            step: 10,
            gamma: 0.5,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_endpoints() {
        let s = CosineAnnealing {
            total_epochs: 100,
            floor: 0.1,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-12);
        assert!((s.factor(100) - 0.1).abs() < 1e-12);
        // Past the horizon it stays at the floor.
        assert!((s.factor(500) - 0.1).abs() < 1e-12);
        // Midpoint is the average of the endpoints.
        assert!((s.factor(50) - 0.55).abs() < 1e-12);
    }

    #[test]
    fn clipping_preserves_direction() {
        let mut params = Params::new();
        let id = params.insert(Matrix::zeros(1, 2));
        let mut grads = vec![(id, Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap())];
        let norm = clip_grad_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-12);
        let g = &grads[0].1;
        // Same direction, unit norm.
        assert!((g[(0, 0)] - 0.6).abs() < 1e-12);
        assert!((g[(0, 1)] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn clipping_noop_below_threshold() {
        let mut params = Params::new();
        let id = params.insert(Matrix::zeros(1, 1));
        let mut grads = vec![(id, Matrix::filled(1, 1, 0.5))];
        clip_grad_norm(&mut grads, 10.0);
        assert_eq!(grads[0].1[(0, 0)], 0.5);
    }
}
