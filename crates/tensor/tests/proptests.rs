//! Property tests: every randomly assembled network must pass the
//! finite-difference gradient check, and optimizers must make progress on
//! random convex problems.
//!
//! Cases are driven by a seeded [`rand::rngs::StdRng`] sweep (the offline
//! build has no `proptest`); each case is reproducible from its index.

use fia_linalg::Matrix;
use fia_tensor::{check_gradients, Adam, Optimizer, Params, Sgd, Tape};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: u64 = 24;

fn case_rng(test: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test.wrapping_mul(0x9E3779B97F4A7C15) ^ case)
}

/// Deterministic pseudo-random matrix from a seed.
fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        0.6 * (((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
    })
}

/// A random 2-layer network with a random choice of activation and loss
/// always passes the gradient check.
#[test]
fn random_mlp_gradcheck() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let seed: u64 = rng.gen_range(1..100_000u64);
        let batch = rng.gen_range(1..5usize);
        let d_in = rng.gen_range(1..5usize);
        let d_hidden = rng.gen_range(1..6usize);
        let d_out = rng.gen_range(1..4usize);
        let act = rng.gen_range(0..3u32) as u8;
        let use_ln: bool = rng.gen();

        let mut params = Params::new();
        let _w1 = params.insert(lcg_matrix(d_in, d_hidden, seed));
        let _b1 = params.insert(lcg_matrix(1, d_hidden, seed ^ 1));
        let _w2 = params.insert(lcg_matrix(d_hidden, d_out, seed ^ 2));
        let _b2 = params.insert(lcg_matrix(1, d_out, seed ^ 3));
        let use_ln = use_ln && d_hidden > 1;
        if use_ln {
            params.insert(Matrix::filled(1, d_hidden, 1.0));
            params.insert(Matrix::zeros(1, d_hidden));
        }

        let x = lcg_matrix(batch, d_in, seed ^ 4);
        let t = lcg_matrix(batch, d_out, seed ^ 5).map(|v| v.abs());

        let report = check_gradients(
            &params,
            |tape, vars| {
                let xv = tape.input(x.clone());
                let h = tape.matmul(xv, vars[0]);
                let mut h = tape.add_row_broadcast(h, vars[1]);
                // ReLU's kink makes finite differences unreliable at
                // activation boundaries; use smooth activations here and
                // cover ReLU in the dedicated unit tests.
                h = match act {
                    0 => tape.sigmoid(h),
                    1 => tape.tanh(h),
                    _ => tape.leaky_relu(h, 0.7), // mild kink, smooth-ish
                };
                if use_ln {
                    let gv = vars[4];
                    let bv = vars[5];
                    h = tape.layer_norm(h, gv, bv, 1e-4);
                }
                let z = tape.matmul(h, vars[2]);
                let z = tape.add_row_broadcast(z, vars[3]);
                let tv = tape.input(t.clone());
                tape.mse_loss(z, tv)
            },
            1e-5,
        );
        // Leaky-ReLU kinks occasionally sit exactly at a sample point;
        // allow a slightly looser bound there.
        let tol = if act == 2 { 5e-3 } else { 1e-4 };
        assert!(
            report.max_rel_error < tol,
            "gradcheck failed: {report:?} (act = {act}, case = {case})"
        );
    }
}

/// Softmax + cross-entropy against a random one-hot target.
#[test]
fn random_softmax_ce_gradcheck() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let seed: u64 = rng.gen_range(1..100_000u64);
        let batch = rng.gen_range(1..4usize);
        let classes = rng.gen_range(2..6usize);
        let hot = rng.gen_range(0..6usize);

        let mut params = Params::new();
        let _z = params.insert(lcg_matrix(batch, classes, seed));
        let target = Matrix::from_fn(
            batch,
            classes,
            |_, j| {
                if j == hot % classes {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let report = check_gradients(
            &params,
            |tape, vars| {
                let tv = tape.input(target.clone());
                tape.cross_entropy_logits(vars[0], tv)
            },
            1e-5,
        );
        assert!(report.max_rel_error < 1e-5, "{report:?} (case = {case})");
    }
}

/// SGD strictly decreases a positive-definite quadratic at a small
/// enough rate.
#[test]
fn sgd_descends_quadratic() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let seed: u64 = rng.gen_range(1..10_000u64);
        let dim = rng.gen_range(1..6usize);

        let target = lcg_matrix(1, dim, seed);
        let mut params = Params::new();
        let w = params.insert(Matrix::zeros(1, dim));
        let mut opt = Sgd::new(0.1);
        let loss_at = |p: &Params| {
            let mut tape = Tape::new();
            let wv = tape.param(p, w);
            let tv = tape.input(target.clone());
            let l = tape.mse_loss(wv, tv);
            tape.value(l)[(0, 0)]
        };
        let before = loss_at(&params);
        for _ in 0..5 {
            let mut tape = Tape::new();
            let wv = tape.param(&params, w);
            let tv = tape.input(target.clone());
            let l = tape.mse_loss(wv, tv);
            tape.backward(l);
            let grads = tape.param_grads();
            opt.step(&mut params, &grads);
        }
        let after = loss_at(&params);
        assert!(after <= before + 1e-12, "loss rose: {before} → {after}");
    }
}

/// Adam drives a separable quadratic near its optimum.
#[test]
fn adam_reaches_optimum() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let seed: u64 = rng.gen_range(1..10_000u64);
        let target = lcg_matrix(1, 3, seed);
        let mut params = Params::new();
        let w = params.insert(Matrix::zeros(1, 3));
        let mut opt = Adam::new(0.05);
        for _ in 0..400 {
            let mut tape = Tape::new();
            let wv = tape.param(&params, w);
            let tv = tape.input(target.clone());
            let l = tape.mse_loss(wv, tv);
            tape.backward(l);
            let grads = tape.param_grads();
            opt.step(&mut params, &grads);
        }
        let dist = params.get(w).max_abs_diff(&target).unwrap();
        assert!(dist < 1e-2, "distance to optimum {dist} (case = {case})");
    }
}

/// Concat/slice round-trips values for arbitrary widths.
#[test]
fn concat_slice_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let seed: u64 = rng.gen_range(1..10_000u64);
        let rows = rng.gen_range(1..5usize);
        let c1 = rng.gen_range(1..5usize);
        let c2 = rng.gen_range(1..5usize);

        let a = lcg_matrix(rows, c1, seed);
        let b = lcg_matrix(rows, c2, seed ^ 9);
        let mut tape = Tape::new();
        let av = tape.input(a.clone());
        let bv = tape.input(b.clone());
        let cat = tape.concat_cols(av, bv);
        let left = tape.slice_cols(cat, 0, c1);
        let right = tape.slice_cols(cat, c1, c1 + c2);
        assert!(tape.value(left).max_abs_diff(&a).unwrap() < 1e-15);
        assert!(tape.value(right).max_abs_diff(&b).unwrap() < 1e-15);
    }
}

/// Backward on a mini-batch equals the average of per-sample backwards:
/// the linearity that lets GRNA train on batched tape passes instead of
/// per-sample loops.
#[test]
fn batch_gradient_is_mean_of_per_sample_gradients() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let seed: u64 = rng.gen_range(1..10_000u64);
        let batch = rng.gen_range(2..6usize);
        let d_in = rng.gen_range(1..4usize);
        let d_out = rng.gen_range(1..4usize);

        let mut params = Params::new();
        let w = params.insert(lcg_matrix(d_in, d_out, seed));
        let x = lcg_matrix(batch, d_in, seed ^ 21);
        let t = lcg_matrix(batch, d_out, seed ^ 22);

        let grad_for = |rows: &[usize]| -> Matrix {
            let sel: Vec<usize> = rows.to_vec();
            let xb = x.select_rows(&sel).unwrap();
            let tb = t.select_rows(&sel).unwrap();
            let mut tape = Tape::new();
            let wv = tape.param(&params, w);
            let xv = tape.input(xb);
            let z = tape.matmul(xv, wv);
            let tv = tape.input(tb);
            let l = tape.mse_loss(z, tv);
            tape.backward(l);
            tape.grad(wv).unwrap().clone()
        };

        let all: Vec<usize> = (0..batch).collect();
        let batched = grad_for(&all);
        let mut mean = Matrix::zeros(d_in, d_out);
        for i in 0..batch {
            mean = mean.add(&grad_for(&[i])).unwrap();
        }
        let mean = mean.scale(1.0 / batch as f64);
        assert!(
            batched.max_abs_diff(&mean).unwrap() < 1e-12,
            "batched grad ≠ mean of per-sample grads (case = {case})"
        );
    }
}
