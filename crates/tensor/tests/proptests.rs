//! Property tests: every randomly assembled network must pass the
//! finite-difference gradient check, and optimizers must make progress on
//! random convex problems.

use fia_linalg::Matrix;
use fia_tensor::{check_gradients, Adam, Optimizer, Params, Sgd, Tape};
use proptest::prelude::*;

/// Deterministic pseudo-random matrix from a seed (keeps the proptest
/// input space small while varying the values).
fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        0.6 * (((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random 2-layer network with a random choice of activation and
    /// loss always passes the gradient check.
    #[test]
    fn random_mlp_gradcheck(
        seed in 1u64..100_000,
        batch in 1usize..5,
        d_in in 1usize..5,
        d_hidden in 1usize..6,
        d_out in 1usize..4,
        act in 0u8..3,
        use_ln in any::<bool>(),
    ) {
        let mut params = Params::new();
        let _w1 = params.insert(lcg_matrix(d_in, d_hidden, seed));
        let _b1 = params.insert(lcg_matrix(1, d_hidden, seed ^ 1));
        let _w2 = params.insert(lcg_matrix(d_hidden, d_out, seed ^ 2));
        let _b2 = params.insert(lcg_matrix(1, d_out, seed ^ 3));
        let (gamma, beta) = if use_ln && d_hidden > 1 {
            (
                Some(params.insert(Matrix::filled(1, d_hidden, 1.0))),
                Some(params.insert(Matrix::zeros(1, d_hidden))),
            )
        } else {
            (None, None)
        };

        let x = lcg_matrix(batch, d_in, seed ^ 4);
        let t = lcg_matrix(batch, d_out, seed ^ 5).map(|v| v.abs());

        let report = check_gradients(
            &params,
            |tape, vars| {
                let xv = tape.input(x.clone());
                let h = tape.matmul(xv, vars[0]);
                let mut h = tape.add_row_broadcast(h, vars[1]);
                // ReLU's kink makes finite differences unreliable at
                // activation boundaries; use smooth activations here and
                // cover ReLU in the dedicated unit tests.
                h = match act {
                    0 => tape.sigmoid(h),
                    1 => tape.tanh(h),
                    _ => tape.leaky_relu(h, 0.7), // mild kink, smooth-ish
                };
                if let (Some(g), Some(b)) = (gamma, beta) {
                    let gv = vars[4];
                    let bv = vars[5];
                    let _ = (g, b);
                    h = tape.layer_norm(h, gv, bv, 1e-4);
                }
                let z = tape.matmul(h, vars[2]);
                let z = tape.add_row_broadcast(z, vars[3]);
                let tv = tape.input(t.clone());
                tape.mse_loss(z, tv)
            },
            1e-5,
        );
        // Leaky-ReLU kinks occasionally sit exactly at a sample point;
        // allow a slightly looser bound there.
        let tol = if act == 2 { 5e-3 } else { 1e-4 };
        prop_assert!(
            report.max_rel_error < tol,
            "gradcheck failed: {report:?} (act = {act})"
        );
    }

    /// Softmax + cross-entropy against a random one-hot target.
    #[test]
    fn random_softmax_ce_gradcheck(
        seed in 1u64..100_000,
        batch in 1usize..4,
        classes in 2usize..6,
        hot in 0usize..6,
    ) {
        let mut params = Params::new();
        let _z = params.insert(lcg_matrix(batch, classes, seed));
        let target = Matrix::from_fn(batch, classes, |_, j| {
            if j == hot % classes { 1.0 } else { 0.0 }
        });
        let report = check_gradients(
            &params,
            |tape, vars| {
                let tv = tape.input(target.clone());
                tape.cross_entropy_logits(vars[0], tv)
            },
            1e-5,
        );
        prop_assert!(report.max_rel_error < 1e-5, "{report:?}");
    }

    /// SGD strictly decreases a positive-definite quadratic at a small
    /// enough rate.
    #[test]
    fn sgd_descends_quadratic(seed in 1u64..10_000, dim in 1usize..6) {
        let target = lcg_matrix(1, dim, seed);
        let mut params = Params::new();
        let w = params.insert(Matrix::zeros(1, dim));
        let mut opt = Sgd::new(0.1);
        let loss_at = |p: &Params| {
            let mut tape = Tape::new();
            let wv = tape.param(p, w);
            let tv = tape.input(target.clone());
            let l = tape.mse_loss(wv, tv);
            tape.value(l)[(0, 0)]
        };
        let before = loss_at(&params);
        for _ in 0..5 {
            let mut tape = Tape::new();
            let wv = tape.param(&params, w);
            let tv = tape.input(target.clone());
            let l = tape.mse_loss(wv, tv);
            tape.backward(l);
            let grads = tape.param_grads();
            opt.step(&mut params, &grads);
        }
        let after = loss_at(&params);
        prop_assert!(after <= before + 1e-12, "loss rose: {before} → {after}");
    }

    /// Adam drives a separable quadratic near its optimum.
    #[test]
    fn adam_reaches_optimum(seed in 1u64..10_000) {
        let target = lcg_matrix(1, 3, seed);
        let mut params = Params::new();
        let w = params.insert(Matrix::zeros(1, 3));
        let mut opt = Adam::new(0.05);
        for _ in 0..400 {
            let mut tape = Tape::new();
            let wv = tape.param(&params, w);
            let tv = tape.input(target.clone());
            let l = tape.mse_loss(wv, tv);
            tape.backward(l);
            let grads = tape.param_grads();
            opt.step(&mut params, &grads);
        }
        let dist = params.get(w).max_abs_diff(&target).unwrap();
        prop_assert!(dist < 1e-2, "distance to optimum {dist}");
    }

    /// Concat/slice round-trips values for arbitrary widths.
    #[test]
    fn concat_slice_roundtrip(
        seed in 1u64..10_000,
        rows in 1usize..5,
        c1 in 1usize..5,
        c2 in 1usize..5,
    ) {
        let a = lcg_matrix(rows, c1, seed);
        let b = lcg_matrix(rows, c2, seed ^ 9);
        let mut tape = Tape::new();
        let av = tape.input(a.clone());
        let bv = tape.input(b.clone());
        let cat = tape.concat_cols(av, bv);
        let left = tape.slice_cols(cat, 0, c1);
        let right = tape.slice_cols(cat, c1, c1 + c2);
        prop_assert!(tape.value(left).max_abs_diff(&a).unwrap() < 1e-15);
        prop_assert!(tape.value(right).max_abs_diff(&b).unwrap() < 1e-15);
    }
}
