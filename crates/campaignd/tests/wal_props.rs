//! Property pin for the write-ahead job log: truncating the log at
//! *any* byte — the disk state a crash mid-append can leave — yields
//! either a previous intact checkpoint or a clean "no checkpoint", and
//! whatever `recover` returns always decodes as a valid
//! [`CampaignCheckpoint`]. Random corruption never panics either: it
//! yields an older record, nothing, or a typed decode error.

use fia_campaign::{Campaign, CampaignCheckpoint, NullObserver, StepOutcome};
use fia_campaignd::wal::JobLog;
use fia_campaignd::{JobAttack, JobDefense, JobModel, JobOracle, JobSpec};
use fia_data::PaperDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fia-wal-props-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Steps a real campaign and logs every per-chunk checkpoint, exactly
/// as a daemon worker would.
fn checkpoint_log(dir: &Path) -> (PathBuf, Vec<Vec<u8>>) {
    let spec = JobSpec {
        dataset: PaperDataset::CreditCard,
        scale: 0.005,
        target_fraction: 0.3,
        seed: 23,
        model: JobModel::Logistic,
        defense: JobDefense::None,
        attacks: vec![JobAttack::Esa],
        max_queries: None,
        max_rows: None,
        chunk: 8,
        oracle: JobOracle::InProcess,
        throttle_ms: 0,
    };
    let mut campaign = Campaign::new(spec.to_scenario().build())
        .with_attacks(spec.attack_specs())
        .with_chunk(spec.chunk as usize);
    let path = dir.join("job.log");
    let mut log = JobLog::open(&path).unwrap();
    let mut blobs = Vec::new();
    campaign.begin(&mut NullObserver).unwrap();
    loop {
        let outcome = campaign.step(&mut NullObserver).unwrap();
        let blob = campaign.checkpoint().to_blob();
        log.append(&blob).unwrap();
        blobs.push(blob);
        if outcome != StepOutcome::Chunk {
            break;
        }
    }
    assert!(blobs.len() >= 3, "want several checkpoints to truncate");
    (path, blobs)
}

#[test]
fn truncation_at_every_byte_yields_prior_checkpoint_or_none() {
    let dir = tmp("trunc");
    let (path, blobs) = checkpoint_log(&dir);
    let full = std::fs::read(&path).unwrap();

    // Frame sizes are payload + 16 bytes of header/checksum; compute
    // each record's end offset to know which checkpoint a cut exposes.
    let mut ends = Vec::new();
    let mut pos = 0usize;
    for blob in &blobs {
        pos += blob.len() + 16;
        ends.push(pos);
    }
    assert_eq!(pos, full.len());

    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let recovered = JobLog::recover(&path).unwrap();
        let intact = ends.iter().filter(|&&e| e <= cut).count();
        match recovered {
            None => assert_eq!(intact, 0, "cut {cut}: lost intact records"),
            Some(payload) => {
                assert!(intact >= 1, "cut {cut}: invented a record");
                assert_eq!(
                    payload,
                    blobs[intact - 1],
                    "cut {cut}: wrong record surfaced"
                );
                // Whatever recover returns must decode cleanly.
                let cp = CampaignCheckpoint::from_blob(&payload).unwrap();
                assert_eq!(cp.rows_done, cp.confidences.rows());
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn random_corruption_never_panics() {
    let dir = tmp("corrupt");
    let (path, blobs) = checkpoint_log(&dir);
    let full = std::fs::read(&path).unwrap();
    let mut rng = StdRng::seed_from_u64(0xBAD_CAFE);
    for _ in 0..400 {
        let mut bytes = full.clone();
        let flips = 1 + rng.gen::<usize>() % 4;
        for _ in 0..flips {
            let at = rng.gen::<usize>() % bytes.len();
            bytes[at] ^= 1 << (rng.gen::<u32>() % 8);
        }
        std::fs::write(&path, &bytes).unwrap();
        // Recover either finds some prefix record or nothing. A frame
        // that passes the log's checksum is *usually* one of the blobs
        // written — but not always: the checkpoint blob ends in its own
        // FNV-1a trailer (the same function the frame uses), so a flip
        // that shrinks a length field by exactly 8 makes the payload's
        // embedded trailer verify as the frame checksum. The log layer
        // cannot tell; the checkpoint decoder must — with a typed
        // error, never a panic.
        if let Some(payload) = JobLog::recover(&path).unwrap() {
            match CampaignCheckpoint::from_blob(&payload) {
                Ok(_) => assert!(
                    blobs.contains(&payload),
                    "a decodable checkpoint must be one the campaign wrote"
                ),
                Err(_) => assert!(!blobs.contains(&payload), "a written blob must decode"),
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
