//! In-process daemon integration: submit/status/attach/cancel/report
//! over real sockets, concurrent jobs over shared deployments, and
//! graceful suspend/resume.

use fia_campaign::{Campaign, NullObserver};
use fia_campaignd::{
    start, CampaignClient, DaemonConfig, JobAttack, JobDefense, JobModel, JobOracle, JobOutcome,
    JobSpec,
};
use fia_data::PaperDataset;
use fia_serve::JobState;
use std::time::Duration;

fn state_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fia-campaignd-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_spec(seed: u64) -> JobSpec {
    JobSpec {
        dataset: PaperDataset::CreditCard,
        scale: 0.005,
        target_fraction: 0.3,
        seed,
        model: JobModel::Logistic,
        defense: JobDefense::None,
        attacks: vec![JobAttack::Esa],
        max_queries: None,
        max_rows: None,
        chunk: 8,
        oracle: JobOracle::InProcess,
        throttle_ms: 0,
    }
}

/// The daemon's answer for a job must equal an uninterrupted in-process
/// campaign run of the same spec, bit for bit.
fn reference_outcome(spec: &JobSpec) -> JobOutcome {
    let mut campaign = Campaign::new(spec.to_scenario().build())
        .with_attacks(spec.attack_specs())
        .with_budget(spec.budget())
        .with_chunk(spec.chunk as usize);
    let report = campaign.run(&mut NullObserver).unwrap();
    JobOutcome::from_report(&report)
}

#[test]
fn submitted_job_completes_and_matches_in_process_run() {
    let dir = state_dir("single");
    let daemon = start(DaemonConfig::new(&dir)).unwrap();
    let mut client = CampaignClient::connect(daemon.addr()).unwrap();
    client.ping().unwrap();

    let spec = small_spec(3);
    let id = client.submit(&spec).unwrap();
    let row = client.wait_terminal(id, Duration::from_secs(60)).unwrap();
    assert_eq!(row.state, JobState::Completed, "detail: {}", row.detail);
    assert_eq!(row.rows_done, row.rows_planned);
    assert!(row.events >= 2, "expected started + finished events");

    let outcome = client.report(id).unwrap();
    assert_eq!(outcome.to_blob(), reference_outcome(&spec).to_blob());

    // The job table carries the row, and metrics count the job.
    let table = client.list().unwrap();
    assert_eq!(table.len(), 1);
    assert_eq!(table[0].id, id);
    let metrics = client.metrics_text().unwrap();
    assert!(metrics.contains("fia_campaignd_jobs_total"));

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn eight_concurrent_jobs_share_two_deployments_with_gapless_streams() {
    let dir = state_dir("fleet");
    let mut config = DaemonConfig::new(&dir);
    config.workers = 4;
    let daemon = start(config).unwrap();
    let mut client = CampaignClient::connect(daemon.addr()).unwrap();

    // Two scenario groups (two fingerprints, two shared deployments),
    // four jobs each. Shared-oracle jobs all query one spawned server
    // per group.
    let group_spec = |seed: u64| {
        let mut s = small_spec(seed);
        s.oracle = JobOracle::Shared {
            replicas: 1,
            cache_capacity: 0,
        };
        s.throttle_ms = 10;
        s
    };
    let spec_a = group_spec(11);
    let spec_b = group_spec(22);
    let mut ids = Vec::new();
    for i in 0..8 {
        let spec = if i % 2 == 0 { &spec_a } else { &spec_b };
        ids.push(client.submit(spec).unwrap());
    }

    // Attach mid-run from sequence 0 on a second connection: the replay
    // plus the live tail must be gapless.
    let attach_id = ids[0];
    let addr = daemon.addr();
    let streamer = std::thread::spawn(move || {
        let mut c = CampaignClient::connect(addr).unwrap();
        let mut seqs = Vec::new();
        let next = c
            .attach(attach_id, 0, |seq, json| {
                assert!(json.contains("\"event\""));
                seqs.push(seq);
            })
            .unwrap();
        (seqs, next)
    });

    let mut rows = Vec::new();
    for &id in &ids {
        let row = client.wait_terminal(id, Duration::from_secs(120)).unwrap();
        assert_eq!(row.state, JobState::Completed, "detail: {}", row.detail);
        rows.push(row);
    }

    let (seqs, next) = streamer.join().unwrap();
    let expected: Vec<u64> = (0..next).collect();
    assert_eq!(seqs, expected, "attached stream must be gapless from 0");
    assert_eq!(
        next,
        client.status(attach_id).unwrap().events,
        "stream end must agree with the job row's event count"
    );

    // Same fingerprint within a group; different across groups.
    let fp_a = &rows[0].fingerprint;
    let fp_b = &rows[1].fingerprint;
    assert_ne!(fp_a, fp_b);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(&row.fingerprint, if i % 2 == 0 { fp_a } else { fp_b });
    }

    // Determinism across tenants: every job in a group produced the
    // bit-identical outcome blob.
    let blob_a = client.report(ids[0]).unwrap().to_blob();
    let blob_b = client.report(ids[1]).unwrap().to_blob();
    assert_ne!(blob_a, blob_b);
    for (i, &id) in ids.iter().enumerate() {
        let blob = client.report(id).unwrap().to_blob();
        assert_eq!(&blob, if i % 2 == 0 { &blob_a } else { &blob_b });
    }

    // A later attach with from_seq resumes exactly where it left off.
    let total = client.status(attach_id).unwrap().events;
    let mut tail = Vec::new();
    let next = client
        .attach(attach_id, total - 2, |seq, _| tail.push(seq))
        .unwrap();
    assert_eq!(tail, vec![total - 2, total - 1]);
    assert_eq!(next, total);

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cancel_and_budget_exhaustion_are_typed_ends() {
    let dir = state_dir("ends");
    let daemon = start(DaemonConfig::new(&dir)).unwrap();
    let mut client = CampaignClient::connect(daemon.addr()).unwrap();

    // A slow job canceled mid-run turns Canceled, and its report op is
    // a typed rejection.
    let mut slow = small_spec(5);
    slow.throttle_ms = 200;
    let id = client.submit(&slow).unwrap();
    loop {
        let row = client.status(id).unwrap();
        if row.chunks_done >= 1 || row.state.is_terminal() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    client.cancel(id).unwrap();
    let row = client.wait_terminal(id, Duration::from_secs(60)).unwrap();
    assert_eq!(row.state, JobState::Canceled);
    assert!(client.report(id).is_err());

    // A budget-capped job still completes, with a partial outcome.
    let mut capped = small_spec(6);
    capped.max_rows = Some(12);
    let id = client.submit(&capped).unwrap();
    let row = client.wait_terminal(id, Duration::from_secs(60)).unwrap();
    assert_eq!(row.state, JobState::Completed, "detail: {}", row.detail);
    let outcome = client.report(id).unwrap();
    assert!(!outcome.complete);
    assert_eq!(outcome.rows_done, 12);
    assert_eq!(outcome.to_blob(), reference_outcome(&capped).to_blob());

    // Unknown ids and malformed specs are typed rejections.
    assert!(client.status(999).is_err());
    let mut bad = small_spec(7);
    bad.chunk = 0;
    assert!(client.submit(&bad).is_err());

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn graceful_shutdown_suspends_and_restart_resumes() {
    let dir = state_dir("suspend");
    let daemon = start(DaemonConfig::new(&dir)).unwrap();
    let mut client = CampaignClient::connect(daemon.addr()).unwrap();

    let mut spec = small_spec(9);
    spec.throttle_ms = 100;
    let id = client.submit(&spec).unwrap();
    loop {
        let row = client.status(id).unwrap();
        if row.chunks_done >= 1 {
            break;
        }
        assert!(!row.state.is_terminal(), "job ended before suspend");
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.shutdown();

    // Restart over the same state directory: the job resumes from its
    // checkpoint and finishes with the uninterrupted answer.
    let daemon = start(DaemonConfig::new(&dir)).unwrap();
    let mut client = CampaignClient::connect(daemon.addr()).unwrap();
    let row = client.wait_terminal(id, Duration::from_secs(60)).unwrap();
    assert_eq!(row.state, JobState::Completed, "detail: {}", row.detail);
    assert!(row.resumes >= 1, "expected a checkpoint resume");
    let outcome = client.report(id).unwrap();
    assert_eq!(outcome.to_blob(), reference_outcome(&spec).to_blob());

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
