//! The durability pin: a `fia-campaignd` process killed with `SIGKILL`
//! mid-campaign restarts over the same state directory, resumes every
//! in-flight job from its write-ahead checkpoint log, and finishes with
//! outcomes bit-identical to an uninterrupted run — on both poller
//! backends.

use fia_campaignd::{CampaignClient, JobAttack, JobDefense, JobModel, JobOracle, JobSpec};
use fia_data::PaperDataset;
use fia_serve::JobState;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// `FIA_CAMPAIGND_SMOKE_DIR` redirects state directories to a fixed
/// location and keeps them after the test, so CI can upload the
/// surviving job logs / event streams / outcome blobs as an artifact.
fn state_dir(tag: &str) -> PathBuf {
    let dir = match std::env::var_os("FIA_CAMPAIGND_SMOKE_DIR") {
        Some(base) => {
            let dir = PathBuf::from(base).join(tag);
            let _ = std::fs::remove_dir_all(&dir);
            dir
        }
        None => std::env::temp_dir().join(format!(
            "fia-campaignd-kill-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        )),
    };
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cleanup(dir: &Path) {
    if std::env::var_os("FIA_CAMPAIGND_SMOKE_DIR").is_none() {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// A spawned daemon that dies with the test: if an assertion unwinds
/// before the explicit kill/shutdown, the drop still reaps the child so
/// the harness never hangs on an inherited pipe.
struct DaemonProc(Child);

impl DaemonProc {
    fn kill(&mut self) {
        let _ = self.0.kill(); // SIGKILL on unix
        let _ = self.0.wait();
    }

    fn wait(&mut self) {
        let _ = self.0.wait();
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn spawn_daemon(dir: &Path, force_poll: bool) -> DaemonProc {
    // A fresh spawn must discover a fresh endpoint, not a stale one.
    let _ = std::fs::remove_file(dir.join("endpoint"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fia-campaignd"));
    cmd.arg("--state-dir")
        .arg(dir)
        .arg("--workers")
        .arg("2")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if force_poll {
        cmd.env("FIA_FORCE_POLL", "1");
    }
    DaemonProc(cmd.spawn().expect("daemon spawns"))
}

fn connect(dir: &Path) -> CampaignClient {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(addr) = std::fs::read_to_string(dir.join("endpoint")) {
            if let Ok(client) = CampaignClient::connect(addr.trim()) {
                return client;
            }
        }
        assert!(Instant::now() < deadline, "daemon never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn specs() -> Vec<JobSpec> {
    // One in-process LR/ESA job, one shared-deployment DT/PRA job over
    // real TCP; both throttled so the kill reliably lands mid-campaign.
    // Deterministic defenses only: resume must be bit-identical.
    let base = JobSpec {
        dataset: PaperDataset::CreditCard,
        scale: 0.005,
        target_fraction: 0.3,
        seed: 17,
        model: JobModel::Logistic,
        defense: JobDefense::RoundingFine,
        attacks: vec![JobAttack::Esa],
        max_queries: None,
        max_rows: None,
        chunk: 4,
        oracle: JobOracle::InProcess,
        throttle_ms: 60,
    };
    let mut served = base.clone();
    served.seed = 18;
    served.model = JobModel::DecisionTree;
    served.attacks = vec![JobAttack::Pra];
    served.defense = JobDefense::None;
    served.oracle = JobOracle::Shared {
        replicas: 2,
        cache_capacity: 0,
    };
    vec![base, served]
}

/// Runs the two jobs on a fresh daemon without interruption and returns
/// their outcome blobs — the reference the killed run must reproduce.
fn uninterrupted_reference(force_poll: bool) -> Vec<Vec<u8>> {
    let dir = state_dir(if force_poll { "ref-poll" } else { "ref" });
    let mut daemon = spawn_daemon(&dir, force_poll);
    let mut client = connect(&dir);
    let mut specs = specs();
    for spec in &mut specs {
        spec.throttle_ms = 0;
    }
    let ids: Vec<u64> = specs.iter().map(|s| client.submit(s).unwrap()).collect();
    let blobs = ids
        .iter()
        .map(|&id| {
            let row = client.wait_terminal(id, Duration::from_secs(120)).unwrap();
            assert_eq!(row.state, JobState::Completed, "detail: {}", row.detail);
            client.report(id).unwrap().to_blob()
        })
        .collect();
    client.shutdown_daemon().unwrap();
    daemon.wait();
    cleanup(&dir);
    blobs
}

fn kill_restart_round_trip(force_poll: bool) {
    let reference = uninterrupted_reference(force_poll);
    let dir = state_dir(if force_poll { "poll" } else { "epoll" });

    let mut daemon = spawn_daemon(&dir, force_poll);
    let mut client = connect(&dir);
    let ids: Vec<u64> = specs().iter().map(|s| client.submit(s).unwrap()).collect();

    // Wait until every job has at least one durable checkpoint, then
    // SIGKILL the daemon mid-campaign.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let rows: Vec<_> = ids.iter().map(|&id| client.status(id).unwrap()).collect();
        if rows.iter().all(|r| r.chunks_done >= 1) {
            assert!(
                rows.iter().all(|r| !r.state.is_terminal()),
                "kill window closed: a job already finished; raise throttle_ms"
            );
            break;
        }
        assert!(Instant::now() < deadline, "jobs never reached a checkpoint");
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.kill(); // SIGKILL on unix

    // Restart over the same state directory: both jobs must resume from
    // their logs and finish bit-identically to the uninterrupted run.
    let mut daemon = spawn_daemon(&dir, force_poll);
    let mut client = connect(&dir);
    for (&id, expected) in ids.iter().zip(&reference) {
        let row = client.wait_terminal(id, Duration::from_secs(120)).unwrap();
        assert_eq!(row.state, JobState::Completed, "detail: {}", row.detail);
        assert!(row.resumes >= 1, "job {id} did not resume from its log");
        let blob = client.report(id).unwrap().to_blob();
        assert_eq!(
            &blob, expected,
            "job {id} outcome diverged after kill+resume"
        );

        // The event stream replays gaplessly across the restart.
        let mut seqs = Vec::new();
        let next = client.attach(id, 0, |seq, _| seqs.push(seq)).unwrap();
        assert_eq!(seqs, (0..next).collect::<Vec<u64>>());
        assert_eq!(next, row.events);
    }
    client.shutdown_daemon().unwrap();
    daemon.wait();
    cleanup(&dir);
}

#[test]
fn sigkill_resume_is_bit_identical_epoll() {
    kill_restart_round_trip(false);
}

#[test]
fn sigkill_resume_is_bit_identical_forced_poll() {
    kill_restart_round_trip(true);
}
