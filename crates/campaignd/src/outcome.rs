//! The durable result of a finished job.
//!
//! A [`JobOutcome`] is the bit-exact essence of a
//! [`fia_campaign::CampaignReport`]: scenario fingerprint, budget
//! outcome, the metered [`QueryCost`], and each attack's error figures
//! with `f64` payloads carried as raw bits. It is what the daemon
//! writes to `outcome.bin` (atomically, before the job turns terminal)
//! and what `JOB_REPORT` returns over the wire — and because the
//! encoding is bit-exact, two runs of the same job can be compared for
//! identity by comparing blobs, which is exactly what the
//! kill-and-restart tests do.

use crate::codec::{get_str, put_str, BlobError, Cursor};
use fia_campaign::CampaignReport;
use fia_core::QueryCost;

/// Outcome blob format version.
pub const OUTCOME_VERSION: u8 = 1;

const MAX_ATTACKS: usize = 16;
const MAX_FEATURES: usize = 1 << 16;

/// One attack's durable result.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Attack identifier (`"esa"`, `"pra"`, `"grna"`).
    pub attack: String,
    /// Rows the attack reconstructed.
    pub rows: u64,
    /// Rows on which the equation system degraded.
    pub degraded_rows: u64,
    /// Mean squared error over target features.
    pub mse: f64,
    /// Per-feature MSE, one entry per target feature.
    pub per_feature_mse: Vec<f64>,
}

/// The durable result of one finished campaign job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Scenario fingerprint the campaign ran under.
    pub fingerprint: String,
    /// Master scenario seed.
    pub seed: u64,
    /// Whether the corpus plan completed (vs. budget exhaustion).
    pub complete: bool,
    /// Corpus rows actually released.
    pub rows_done: u64,
    /// Corpus rows the plan called for.
    pub rows_planned: u64,
    /// The session's query cost as the deployment metered it.
    pub cost: QueryCost,
    /// Per-attack results, in mount order.
    pub attacks: Vec<AttackOutcome>,
}

impl JobOutcome {
    /// Extracts the durable outcome from a finished campaign report.
    pub fn from_report(report: &CampaignReport) -> JobOutcome {
        JobOutcome {
            fingerprint: report.fingerprint.clone(),
            seed: report.seed,
            complete: report.outcome.is_complete(),
            rows_done: report.rows_done as u64,
            rows_planned: report.rows_planned as u64,
            cost: report.cost,
            attacks: report
                .attacks
                .iter()
                .map(|a| AttackOutcome {
                    attack: a.attack.to_string(),
                    rows: a.rows as u64,
                    degraded_rows: a.degraded_rows as u64,
                    mse: a.mse,
                    per_feature_mse: a.per_feature_mse.clone(),
                })
                .collect(),
        }
    }

    /// Serializes the outcome as a versioned blob with bit-exact `f64`
    /// payloads.
    pub fn to_blob(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.push(OUTCOME_VERSION);
        put_str(&mut out, &self.fingerprint);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.push(u8::from(self.complete));
        out.extend_from_slice(&self.rows_done.to_le_bytes());
        out.extend_from_slice(&self.rows_planned.to_le_bytes());
        out.extend_from_slice(&self.cost.queries.to_le_bytes());
        out.extend_from_slice(&self.cost.rows.to_le_bytes());
        out.extend_from_slice(&self.cost.cached_rows.to_le_bytes());
        out.push(self.attacks.len() as u8);
        for a in &self.attacks {
            put_str(&mut out, &a.attack);
            out.extend_from_slice(&a.rows.to_le_bytes());
            out.extend_from_slice(&a.degraded_rows.to_le_bytes());
            out.extend_from_slice(&a.mse.to_bits().to_le_bytes());
            out.extend_from_slice(&(a.per_feature_mse.len() as u32).to_le_bytes());
            for &m in &a.per_feature_mse {
                out.extend_from_slice(&m.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Decodes an outcome blob; every failure is a typed [`BlobError`].
    pub fn from_blob(blob: &[u8]) -> Result<JobOutcome, BlobError> {
        let mut c = Cursor::new(blob);
        let version = c.u8()?;
        if version != OUTCOME_VERSION {
            return Err(BlobError::UnsupportedVersion(version));
        }
        let fingerprint = get_str(&mut c, 128)?;
        let seed = c.u64()?;
        let complete = match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(BlobError::Invalid("bad completion flag")),
        };
        let rows_done = c.u64()?;
        let rows_planned = c.u64()?;
        let cost = QueryCost {
            queries: c.u64()?,
            rows: c.u64()?,
            cached_rows: c.u64()?,
        };
        let n_attacks = c.u8()? as usize;
        if n_attacks > MAX_ATTACKS {
            return Err(BlobError::Invalid("too many attacks"));
        }
        let mut attacks = Vec::with_capacity(n_attacks);
        for _ in 0..n_attacks {
            let attack = get_str(&mut c, 32)?;
            let rows = c.u64()?;
            let degraded_rows = c.u64()?;
            let mse = c.f64()?;
            let n_feats = c.u32()? as usize;
            if n_feats > MAX_FEATURES {
                return Err(BlobError::Invalid("too many features"));
            }
            let mut per_feature_mse = Vec::with_capacity(n_feats);
            for _ in 0..n_feats {
                per_feature_mse.push(c.f64()?);
            }
            attacks.push(AttackOutcome {
                attack,
                rows,
                degraded_rows,
                mse,
                per_feature_mse,
            });
        }
        c.finish()?;
        Ok(JobOutcome {
            fingerprint,
            seed,
            complete,
            rows_done,
            rows_planned,
            cost,
            attacks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobOutcome {
        JobOutcome {
            fingerprint: "00deadbeef00".into(),
            seed: 29,
            complete: false,
            rows_done: 96,
            rows_planned: 128,
            cost: QueryCost {
                queries: 3,
                rows: 96,
                cached_rows: 0,
            },
            attacks: vec![
                AttackOutcome {
                    attack: "esa".into(),
                    rows: 96,
                    degraded_rows: 2,
                    mse: 0.012345678901234567,
                    per_feature_mse: vec![0.1, f64::MIN_POSITIVE, 3.5e300],
                },
                AttackOutcome {
                    attack: "pra".into(),
                    rows: 96,
                    degraded_rows: 0,
                    mse: 0.25,
                    per_feature_mse: vec![],
                },
            ],
        }
    }

    #[test]
    fn outcome_round_trips_bit_exactly() {
        let o = sample();
        let blob = o.to_blob();
        let back = JobOutcome::from_blob(&blob).unwrap();
        assert_eq!(back, o);
        // Bit-exactness: re-encoding is byte-identical.
        assert_eq!(back.to_blob(), blob);
    }

    #[test]
    fn every_truncation_is_typed() {
        let blob = sample().to_blob();
        for cut in 0..blob.len() {
            assert!(JobOutcome::from_blob(&blob[..cut]).is_err(), "cut {cut}");
        }
        let mut blob = sample().to_blob();
        blob.push(7);
        assert_eq!(
            JobOutcome::from_blob(&blob),
            Err(BlobError::Invalid("trailing bytes"))
        );
        let mut blob = sample().to_blob();
        blob[0] = 3;
        assert_eq!(
            JobOutcome::from_blob(&blob),
            Err(BlobError::UnsupportedVersion(3))
        );
    }
}
