//! The daemon's client library: typed calls over the job wire ops.

use crate::codec::BlobError;
use crate::outcome::JobOutcome;
use crate::spec::JobSpec;
use fia_serve::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, WireError,
};
use fia_serve::{JobState, JobStatusInfo};
use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Everything that can go wrong talking to a campaign daemon.
#[derive(Debug)]
pub enum DaemonClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The daemon answered with a typed rejection.
    Rejected(String),
    /// The daemon answered with a response the call did not expect.
    Protocol(&'static str),
    /// A returned blob failed to decode.
    Blob(BlobError),
    /// A wait deadline elapsed before the job turned terminal.
    Timeout,
}

impl fmt::Display for DaemonClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonClientError::Wire(e) => write!(f, "daemon transport failure: {e}"),
            DaemonClientError::Rejected(why) => write!(f, "daemon rejected the request: {why}"),
            DaemonClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            DaemonClientError::Blob(e) => write!(f, "daemon blob failed to decode: {e}"),
            DaemonClientError::Timeout => write!(f, "timed out waiting for the job"),
        }
    }
}

impl std::error::Error for DaemonClientError {}

impl From<WireError> for DaemonClientError {
    fn from(e: WireError) -> Self {
        DaemonClientError::Wire(e)
    }
}

/// A blocking client connection to a `fia-campaignd` daemon.
pub struct CampaignClient {
    stream: TcpStream,
}

impl CampaignClient {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<CampaignClient, DaemonClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| DaemonClientError::Wire(e.into()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| DaemonClientError::Wire(e.into()))?;
        Ok(CampaignClient { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Response, DaemonClientError> {
        let payload = encode_request(req)?;
        write_frame(&mut self.stream, &payload)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, DaemonClientError> {
        let frame = read_frame(&mut self.stream)?
            .ok_or(DaemonClientError::Protocol("daemon closed the connection"))?;
        let resp = decode_response(&frame)?;
        if let Response::Error(why) = resp {
            return Err(DaemonClientError::Rejected(why));
        }
        Ok(resp)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), DaemonClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(DaemonClientError::Protocol("expected Pong")),
        }
    }

    /// Submits a job; returns the daemon-assigned job id. The spec is
    /// durable on the daemon's disk before this returns.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, DaemonClientError> {
        spec.validate().map_err(DaemonClientError::Blob)?;
        match self.call(&Request::JobSubmit(spec.to_blob()))? {
            Response::JobAccepted(id) => Ok(id),
            _ => Err(DaemonClientError::Protocol("expected JobAccepted")),
        }
    }

    /// One job's status row.
    pub fn status(&mut self, id: u64) -> Result<JobStatusInfo, DaemonClientError> {
        match self.call(&Request::JobStatus(id))? {
            Response::JobInfo(row) => Ok(row),
            _ => Err(DaemonClientError::Protocol("expected JobInfo")),
        }
    }

    /// The daemon's full job table, in id order.
    pub fn list(&mut self) -> Result<Vec<JobStatusInfo>, DaemonClientError> {
        match self.call(&Request::JobList)? {
            Response::JobTable(rows) => Ok(rows),
            _ => Err(DaemonClientError::Protocol("expected JobTable")),
        }
    }

    /// Requests cancellation; returns the job's row after the request.
    pub fn cancel(&mut self, id: u64) -> Result<JobStatusInfo, DaemonClientError> {
        match self.call(&Request::JobCancel(id))? {
            Response::JobInfo(row) => Ok(row),
            _ => Err(DaemonClientError::Protocol("expected JobInfo")),
        }
    }

    /// Fetches a completed job's durable outcome.
    pub fn report(&mut self, id: u64) -> Result<JobOutcome, DaemonClientError> {
        match self.call(&Request::JobReport(id))? {
            Response::JobReportBlob(blob) => {
                JobOutcome::from_blob(&blob).map_err(DaemonClientError::Blob)
            }
            _ => Err(DaemonClientError::Protocol("expected JobReportBlob")),
        }
    }

    /// The daemon's telemetry surface as Prometheus-style text.
    pub fn metrics_text(&mut self) -> Result<String, DaemonClientError> {
        match self.call(&Request::MetricsText)? {
            Response::MetricsText(text) => Ok(text),
            _ => Err(DaemonClientError::Protocol("expected MetricsText")),
        }
    }

    /// Attaches to a job's event stream from `from_seq`: already-buffered
    /// events are replayed first, then live events stream as the job
    /// runs, gaplessly. `on_event` receives `(seq, json_line)` for each;
    /// the call returns the next sequence number once the job ends (use
    /// it to resume a later attach without re-reading anything).
    pub fn attach(
        &mut self,
        id: u64,
        from_seq: u64,
        mut on_event: impl FnMut(u64, &str),
    ) -> Result<u64, DaemonClientError> {
        let payload = encode_request(&Request::JobAttach { id, from_seq })?;
        write_frame(&mut self.stream, &payload)?;
        loop {
            match self.read_response()? {
                Response::JobEvent { id: eid, seq, json } if eid == id => on_event(seq, &json),
                Response::JobEventsEnd { id: eid, next_seq } if eid == id => return Ok(next_seq),
                _ => return Err(DaemonClientError::Protocol("unexpected attach response")),
            }
        }
    }

    /// Polls until the job reaches a terminal state (or the deadline
    /// elapses) and returns its final row.
    pub fn wait_terminal(
        &mut self,
        id: u64,
        deadline: Duration,
    ) -> Result<JobStatusInfo, DaemonClientError> {
        let start = Instant::now();
        loop {
            let row = self.status(id)?;
            if row.state.is_terminal() {
                return Ok(row);
            }
            if start.elapsed() > deadline {
                return Err(DaemonClientError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Asks the daemon to shut down gracefully (running jobs suspend to
    /// their checkpoints and resume on the next start).
    pub fn shutdown_daemon(&mut self) -> Result<(), DaemonClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(DaemonClientError::Protocol("expected ShuttingDown")),
        }
    }

    /// The wait state [`JobState`] helper tests use; re-exported here so
    /// callers need not depend on `fia-serve` directly.
    pub fn is_terminal(state: JobState) -> bool {
        state.is_terminal()
    }
}
