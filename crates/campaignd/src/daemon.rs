//! The campaign daemon: a durable, multi-tenant scheduler for attack
//! campaigns.
//!
//! One daemon process runs many campaigns concurrently on a bounded
//! worker pool, multiplexes all client traffic through a single
//! [`fia_serve::sys::Poller`] reactor thread (the same epoll/poll
//! abstraction the prediction server uses), and survives `SIGKILL`:
//!
//! - **Accept/submit**: clients speak the `fia-serve` wire protocol's
//!   job ops (`JOB_SUBMIT` … `JOB_REPORT`). A submitted [`JobSpec`] is
//!   persisted (atomically) before the daemon acknowledges it.
//! - **Shared deployments**: jobs are keyed by scenario fingerprint.
//!   Jobs with the same fingerprint share one resolved scenario — and,
//!   for [`JobOracle::Shared`] jobs, one spawned
//!   [`fia_serve::PredictionServer`] that all of them query over TCP.
//! - **Durability**: each worker appends a campaign checkpoint to the
//!   job's write-ahead log (fsync'd) after every corpus chunk, *before*
//!   publishing that chunk's events. A killed daemon restarts, replays
//!   each job log to its last intact checkpoint, validates the scenario
//!   fingerprint, and resumes — bit-identically for the deterministic
//!   defenses the job spec admits.
//! - **Event streams**: every campaign event is appended to the job's
//!   `events.jsonl` under a gapless per-job sequence number; `JOB_ATTACH`
//!   replays from any sequence and then streams live, so a client that
//!   attaches mid-run (or re-attaches after a daemon restart) sees every
//!   event exactly once, in order.

use crate::outcome::JobOutcome;
use crate::spec::{JobOracle, JobSpec};
use crate::wal::{self, JobLog};
use fia_campaign::{
    Campaign, CampaignCheckpoint, CampaignEvent, OracleSpec, ResolvedScenario, StepOutcome,
};
use fia_serve::sys::{drain_wake_pipe, fd_of, wake_pair, Event, Interest, Poller, Waker};
use fia_serve::wire::{decode_request, encode_response, Request, Response, MAX_FRAME_LEN};
use fia_serve::{
    JobState, JobStatusInfo, PredictionServer, RemoteOracle, ServeConfig, ServerHandle,
};
use fia_telemetry::{encode_prometheus, global, Counter, Tracer};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fs::OpenOptions;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the daemon is stood up.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to bind; use port `0` for an ephemeral port.
    pub bind: String,
    /// State directory: job specs, write-ahead logs, event streams and
    /// outcomes all live here, and a restart with the same directory
    /// resumes whatever was in flight.
    pub state_dir: PathBuf,
    /// Campaign worker threads (concurrent jobs).
    pub workers: usize,
}

impl DaemonConfig {
    /// Ephemeral-port daemon over `state_dir` with two workers.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            bind: "127.0.0.1:0".to_string(),
            state_dir: state_dir.into(),
            workers: 2,
        }
    }
}

/// A running daemon: bound address plus the shutdown switch.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon stops (a client sent `Shutdown`).
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Stops the daemon and joins its threads. Running jobs checkpoint
    /// at their current chunk and return to `Pending`; a restart over
    /// the same state directory resumes them.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// One job's in-memory row.
struct JobEntry {
    spec: JobSpec,
    fingerprint: String,
    state: JobState,
    chunks_done: u64,
    rows_done: u64,
    rows_planned: u64,
    queries: u64,
    rows: u64,
    cached_rows: u64,
    resumes: u64,
    events: u64,
    detail: String,
    cancel: bool,
    subscribers: Vec<u64>,
    events_file: Option<std::fs::File>,
}

impl JobEntry {
    fn row(&self, id: u64) -> JobStatusInfo {
        JobStatusInfo {
            id,
            state: self.state,
            fingerprint: self.fingerprint.clone(),
            chunks_done: self.chunks_done,
            rows_done: self.rows_done,
            rows_planned: self.rows_planned,
            queries: self.queries,
            rows: self.rows,
            cached_rows: self.cached_rows,
            resumes: self.resumes,
            events: self.events,
            detail: self.detail.clone(),
        }
    }
}

/// A resolved scenario shared by every job with its fingerprint, plus
/// the one prediction server `Shared`-oracle jobs query.
struct Deployment {
    scenario: ResolvedScenario,
    server: Option<ServerHandle>,
}

struct Shared {
    state_dir: PathBuf,
    jobs: Mutex<BTreeMap<u64, JobEntry>>,
    next_id: Mutex<u64>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    deployments: Mutex<HashMap<String, Arc<Deployment>>>,
    outbox: Mutex<Vec<(u64, Vec<u8>)>>,
    waker: Waker,
    shutdown: AtomicBool,
    jobs_total: Arc<Counter>,
    resumes_total: Arc<Counter>,
    replays_total: Arc<Counter>,
    tracer: Tracer,
}

impl Shared {
    fn job_dir(&self, id: u64) -> PathBuf {
        self.state_dir.join("jobs").join(id.to_string())
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        self.waker.wake();
    }

    /// Appends one event to the job's durable stream and fans it out to
    /// attached connections. The jobs lock serializes this against
    /// attach replay, which is what keeps every subscriber's view
    /// gapless.
    fn emit_event(&self, id: u64, event: &CampaignEvent) {
        let line = event.to_json();
        let mut jobs = self.jobs.lock().unwrap();
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        let seq = entry.events;
        if let Some(f) = entry.events_file.as_mut() {
            let _ = f.write_all(line.as_bytes());
            let _ = f.write_all(b"\n");
        }
        entry.events += 1;
        if entry.subscribers.is_empty() {
            return;
        }
        let payload = encode_response(&Response::JobEvent {
            id,
            seq,
            json: line,
        })
        .expect("job event encodes");
        let subs = entry.subscribers.clone();
        drop(jobs);
        let mut outbox = self.outbox.lock().unwrap();
        for tok in subs {
            outbox.push((tok, payload.clone()));
        }
        drop(outbox);
        self.waker.wake();
    }

    /// Moves a job to a terminal state: durable marker first, then the
    /// table row, then `JobEventsEnd` to every subscriber.
    fn finish_job(&self, id: u64, state: JobState, detail: &str) {
        let marker = match state {
            JobState::Completed => "completed".to_string(),
            JobState::Canceled => "canceled".to_string(),
            _ => format!("failed:{detail}"),
        };
        let _ = wal::write_atomic(&self.job_dir(id).join("state"), marker.as_bytes());
        self.close_job(id, state, detail);
    }

    /// Updates the row and notifies subscribers without writing a
    /// terminal marker — shared by finish and suspend paths.
    fn close_job(&self, id: u64, state: JobState, detail: &str) {
        let mut jobs = self.jobs.lock().unwrap();
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        entry.state = state;
        entry.detail = detail.to_string();
        entry.events_file = None;
        let subs = std::mem::take(&mut entry.subscribers);
        let next_seq = entry.events;
        drop(jobs);
        if subs.is_empty() {
            return;
        }
        let payload =
            encode_response(&Response::JobEventsEnd { id, next_seq }).expect("end encodes");
        let mut outbox = self.outbox.lock().unwrap();
        for tok in subs {
            outbox.push((tok, payload.clone()));
        }
        drop(outbox);
        self.waker.wake();
    }
}

/// Starts a daemon: recovers the state directory, binds the listener,
/// spawns the reactor and worker threads, and records the bound address
/// in `state_dir/endpoint`.
pub fn start(config: DaemonConfig) -> io::Result<DaemonHandle> {
    std::fs::create_dir_all(config.state_dir.join("jobs"))?;
    let listener = TcpListener::bind(&config.bind)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let (waker, wake_rx) = wake_pair()?;

    let shared = Arc::new(Shared {
        state_dir: config.state_dir.clone(),
        jobs: Mutex::new(BTreeMap::new()),
        next_id: Mutex::new(1),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        deployments: Mutex::new(HashMap::new()),
        outbox: Mutex::new(Vec::new()),
        waker,
        shutdown: AtomicBool::new(false),
        jobs_total: global().counter(
            "fia_campaignd_jobs_total",
            "Campaign jobs accepted by the daemon",
        ),
        resumes_total: global().counter(
            "fia_campaignd_resumes_total",
            "Jobs resumed from a write-ahead checkpoint after a restart",
        ),
        replays_total: global().counter(
            "fia_campaignd_replays_total",
            "Attach requests that replayed buffered events to a client",
        ),
        tracer: Tracer::new(),
    });

    recover_state(&shared)?;
    wal::write_atomic(
        &config.state_dir.join("endpoint"),
        addr.to_string().as_bytes(),
    )?;

    let mut threads = Vec::new();
    let reactor_shared = Arc::clone(&shared);
    threads.push(
        std::thread::Builder::new()
            .name("fia-campaignd-reactor".to_string())
            .spawn(move || {
                let mut r = match Reactor::new(reactor_shared, listener, wake_rx) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("fia-campaignd: reactor init failed: {e}");
                        return;
                    }
                };
                r.run();
            })?,
    );
    for i in 0..config.workers.max(1) {
        let worker_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("fia-campaignd-worker-{i}"))
                .spawn(move || worker_loop(worker_shared))?,
        );
    }

    Ok(DaemonHandle {
        addr,
        shared,
        threads,
    })
}

/// Scans `state_dir/jobs` and rebuilds the job table: terminal jobs
/// load their durable facts, everything else is re-enqueued to resume.
/// Torn tails on event streams (a crash mid-append) are truncated to
/// the last complete line so sequence numbers stay consistent.
fn recover_state(shared: &Shared) -> io::Result<()> {
    let jobs_dir = shared.state_dir.join("jobs");
    let mut max_id = 0u64;
    let mut recovered: Vec<(u64, JobEntry)> = Vec::new();
    for dir_entry in std::fs::read_dir(&jobs_dir)? {
        let dir_entry = dir_entry?;
        let Ok(id) = dir_entry.file_name().to_string_lossy().parse::<u64>() else {
            continue;
        };
        let dir = dir_entry.path();
        let Ok(spec_blob) = std::fs::read(dir.join("spec.bin")) else {
            continue;
        };
        let Ok(spec) = JobSpec::from_blob(&spec_blob) else {
            continue;
        };
        max_id = max_id.max(id);
        let events = repair_event_stream(&dir.join("events.jsonl"))?;
        let mut entry = JobEntry {
            fingerprint: spec.fingerprint(),
            spec,
            state: JobState::Pending,
            chunks_done: 0,
            rows_done: 0,
            rows_planned: 0,
            queries: 0,
            rows: 0,
            cached_rows: 0,
            resumes: 0,
            events,
            detail: String::new(),
            cancel: false,
            subscribers: Vec::new(),
            events_file: None,
        };
        match std::fs::read_to_string(dir.join("state")) {
            Ok(marker) => {
                if marker == "completed" {
                    entry.state = JobState::Completed;
                    if let Ok(blob) = std::fs::read(dir.join("outcome.bin")) {
                        if let Ok(outcome) = JobOutcome::from_blob(&blob) {
                            entry.rows_done = outcome.rows_done;
                            entry.rows_planned = outcome.rows_planned;
                            entry.queries = outcome.cost.queries;
                            entry.rows = outcome.cost.rows;
                            entry.cached_rows = outcome.cost.cached_rows;
                        }
                    }
                } else if marker == "canceled" {
                    entry.state = JobState::Canceled;
                    entry.detail = "canceled".to_string();
                } else {
                    entry.state = JobState::Failed;
                    entry.detail = marker
                        .strip_prefix("failed:")
                        .unwrap_or(marker.as_str())
                        .to_string();
                }
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        recovered.push((id, entry));
    }
    recovered.sort_by_key(|(id, _)| *id);
    let mut jobs = shared.jobs.lock().unwrap();
    let mut queue = shared.queue.lock().unwrap();
    for (id, entry) in recovered {
        if !entry.state.is_terminal() {
            queue.push_back(id);
        }
        jobs.insert(id, entry);
    }
    *shared.next_id.lock().unwrap() = max_id + 1;
    Ok(())
}

/// Truncates a torn trailing line (no `\n`) and returns the stream's
/// line count — the next event sequence number.
fn repair_event_stream(path: &Path) -> io::Result<u64> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let keep = match bytes.iter().rposition(|&b| b == b'\n') {
        Some(last_nl) => last_nl + 1,
        None => 0,
    };
    if keep != bytes.len() {
        std::fs::write(path, &bytes[..keep])?;
    }
    Ok(bytes[..keep].iter().filter(|&&b| b == b'\n').count() as u64)
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

enum JobEnd {
    Completed,
    Canceled,
    Suspended,
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let id = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(200))
                    .unwrap();
                queue = guard;
            }
        };
        run_job(&shared, id);
    }
}

fn run_job(shared: &Arc<Shared>, id: u64) {
    let spec = {
        let mut jobs = shared.jobs.lock().unwrap();
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        if entry.state != JobState::Pending {
            return;
        }
        if entry.cancel {
            drop(jobs);
            shared.finish_job(id, JobState::Canceled, "canceled before start");
            return;
        }
        entry.state = JobState::Running;
        entry.spec.clone()
    };
    let span = shared.tracer.root("campaignd.job");
    span.record_u64("job.id", id);
    match drive_job(shared, id, &spec) {
        Ok(JobEnd::Completed) => {
            span.record_str("job.end", "completed");
            shared.finish_job(id, JobState::Completed, "");
        }
        Ok(JobEnd::Canceled) => {
            span.record_str("job.end", "canceled");
            shared.finish_job(id, JobState::Canceled, "canceled");
        }
        Ok(JobEnd::Suspended) => {
            // Daemon is shutting down: the job goes back to Pending with
            // no terminal marker, so a restart resumes it from its log.
            span.record_str("job.end", "suspended");
            shared.close_job(id, JobState::Pending, "");
        }
        Err(detail) => {
            span.record_str("job.end", "failed");
            span.record_str("job.error", &detail);
            shared.finish_job(id, JobState::Failed, &detail);
        }
    }
    span.finish();
}

fn spawn_deployment_server(scenario: &ResolvedScenario) -> Result<ServerHandle, String> {
    // Mirror the campaign layer's served-oracle tuning so a daemon-run
    // job observes the same deployment the in-process path would spawn.
    let OracleSpec::Served(cfg) = scenario.oracle_spec() else {
        return Err("shared oracle requires a served scenario".to_string());
    };
    let serve_cfg = ServeConfig {
        bind: "127.0.0.1:0".to_string(),
        replicas: cfg.replicas,
        batch_cap: cfg.batch_cap,
        batch_deadline: cfg.batch_deadline,
        coalesce: true,
        cache_capacity: cfg.cache_capacity,
        cache_seed: scenario.seed() ^ 0x5C0_7E5,
        round_cost: cfg.round_cost,
        audit: true,
    };
    PredictionServer::spawn(
        Arc::clone(scenario.system()),
        Arc::clone(scenario.defense()),
        serve_cfg,
    )
    .map_err(|e| format!("could not spawn shared deployment: {e}"))
}

fn drive_job(shared: &Arc<Shared>, id: u64, spec: &JobSpec) -> Result<JobEnd, String> {
    let dir = shared.job_dir(id);
    let scenario_spec = spec.to_scenario();
    let fingerprint = scenario_spec.fingerprint();

    // Resolve (or reuse) the deployment for this fingerprint. The lock
    // is held across the build so two jobs racing on the same scenario
    // share one model and one server rather than each paying the build.
    let deployment = {
        let mut deployments = shared.deployments.lock().unwrap();
        match deployments.get(&fingerprint) {
            Some(d) => Arc::clone(d),
            None => {
                let scenario = scenario_spec.build();
                let server = match spec.oracle {
                    JobOracle::Shared { .. } => Some(spawn_deployment_server(&scenario)?),
                    JobOracle::InProcess => None,
                };
                let d = Arc::new(Deployment { scenario, server });
                deployments.insert(fingerprint.clone(), Arc::clone(&d));
                d
            }
        }
    };

    // Resume from the write-ahead log when it holds a checkpoint.
    let log_path = dir.join("job.log");
    let recovered = JobLog::recover(&log_path).map_err(|e| format!("job log: {e}"))?;
    let mut campaign = match recovered {
        Some(blob) => {
            let cp = CampaignCheckpoint::from_blob(&blob)
                .map_err(|e| format!("checkpoint decode: {e}"))?;
            let c = Campaign::restore(deployment.scenario.clone(), &cp)
                .map_err(|e| format!("checkpoint restore: {e}"))?;
            shared.resumes_total.inc();
            if let Some(entry) = shared.jobs.lock().unwrap().get_mut(&id) {
                entry.resumes += 1;
            }
            c
        }
        None => Campaign::new(deployment.scenario.clone()),
    };
    campaign = campaign
        .with_attacks(spec.attack_specs())
        .with_budget(spec.budget())
        .with_chunk(spec.chunk as usize);

    // Shared-oracle jobs query the deployment's one server over TCP,
    // each under its own audit session tag.
    if let Some(server) = deployment.server.as_ref() {
        let mut client =
            RemoteOracle::connect(server.addr()).map_err(|e| format!("deployment connect: {e}"))?;
        client
            .declare_session(&format!("job-{id}"))
            .map_err(|e| format!("deployment session: {e}"))?;
        campaign.attach_oracle(Box::new(client));
    }

    let events_file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("events.jsonl"))
        .map_err(|e| format!("event stream: {e}"))?;
    update_row(shared, id, &campaign, Some(events_file));

    let mut log = JobLog::open(&log_path).map_err(|e| format!("job log: {e}"))?;
    let mut pending: Vec<CampaignEvent> = Vec::new();
    campaign
        .begin(&mut |e: &CampaignEvent| pending.push(e.clone()))
        .map_err(|e| e.to_string())?;
    flush_events(shared, id, &mut pending);

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(JobEnd::Suspended);
        }
        let canceled = shared
            .jobs
            .lock()
            .unwrap()
            .get(&id)
            .is_some_and(|e| e.cancel);
        if canceled {
            return Ok(JobEnd::Canceled);
        }
        let outcome = campaign
            .step(&mut |e: &CampaignEvent| pending.push(e.clone()))
            .map_err(|e| e.to_string())?;
        // Durability order: the checkpoint hits the log (fsync) before
        // the chunk's events become visible anywhere. A kill between the
        // two loses at most the event line, never accumulated state.
        log.append(&campaign.checkpoint().to_blob())
            .map_err(|e| format!("checkpoint append: {e}"))?;
        update_row(shared, id, &campaign, None);
        flush_events(shared, id, &mut pending);
        match outcome {
            StepOutcome::Chunk => {
                if spec.throttle_ms > 0 {
                    std::thread::sleep(Duration::from_millis(u64::from(spec.throttle_ms)));
                }
            }
            StepOutcome::Exhausted | StepOutcome::Done => break,
        }
    }

    let report = campaign
        .finalize(&mut |e: &CampaignEvent| pending.push(e.clone()))
        .map_err(|e| e.to_string())?;
    let outcome = JobOutcome::from_report(&report);
    wal::write_atomic(&dir.join("outcome.bin"), &outcome.to_blob())
        .map_err(|e| format!("outcome write: {e}"))?;
    update_row(shared, id, &campaign, None);
    flush_events(shared, id, &mut pending);
    Ok(JobEnd::Completed)
}

fn update_row(shared: &Shared, id: u64, campaign: &Campaign, events_file: Option<std::fs::File>) {
    let spent = campaign.spent();
    let mut jobs = shared.jobs.lock().unwrap();
    if let Some(entry) = jobs.get_mut(&id) {
        entry.chunks_done = campaign.chunks_issued() as u64;
        entry.rows_done = campaign.rows_done() as u64;
        entry.rows_planned = campaign.rows_planned() as u64;
        entry.queries = spent.queries;
        entry.rows = spent.rows;
        entry.cached_rows = spent.cached_rows;
        if let Some(f) = events_file {
            entry.events_file = Some(f);
        }
    }
}

fn flush_events(shared: &Shared, id: u64, pending: &mut Vec<CampaignEvent>) {
    for event in pending.drain(..) {
        shared.emit_event(id, &event);
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKE_TOKEN: u64 = u64::MAX - 1;

struct Conn {
    stream: TcpStream,
    inbox: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    write_interest: bool,
}

struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl Reactor {
    fn new(shared: Arc<Shared>, listener: TcpListener, wake_rx: UnixStream) -> io::Result<Self> {
        let mut poller = Poller::new()?;
        poller.register(fd_of(&listener), LISTENER_TOKEN, Interest::READ)?;
        poller.register(fd_of(&wake_rx), WAKE_TOKEN, Interest::READ)?;
        Ok(Reactor {
            shared,
            poller,
            listener,
            wake_rx,
            conns: HashMap::new(),
            next_token: 0,
        })
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.drain_outbox();
                self.flush_all();
                return;
            }
            events.clear();
            if let Err(e) = self
                .poller
                .wait(&mut events, Some(Duration::from_millis(250)))
            {
                if e.kind() == ErrorKind::Interrupted {
                    continue;
                }
                eprintln!("fia-campaignd: poll failed: {e}");
                return;
            }
            let mut dead: Vec<u64> = Vec::new();
            for ev in &events {
                match ev.token {
                    WAKE_TOKEN => drain_wake_pipe(&self.wake_rx),
                    LISTENER_TOKEN => self.accept_ready(),
                    token => {
                        if self.conn_ready(token, ev).is_err() {
                            dead.push(token);
                        }
                    }
                }
            }
            self.drain_outbox();
            let mut flush_dead: Vec<u64> = Vec::new();
            for (&token, conn) in self.conns.iter_mut() {
                if flush_conn(&mut self.poller, token, conn).is_err() {
                    flush_dead.push(token);
                }
            }
            dead.extend(flush_dead);
            for token in dead {
                self.drop_conn(token);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(fd_of(&stream), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            inbox: Vec::new(),
                            out: Vec::new(),
                            out_pos: 0,
                            write_interest: false,
                        },
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: &Event) -> Result<(), ()> {
        let Some(mut conn) = self.conns.remove(&token) else {
            return Ok(());
        };
        let mut result = Ok(());
        if ev.readable || ev.closed {
            result = self.read_conn(token, &mut conn);
        }
        if result.is_ok() && ev.writable {
            result = flush_conn(&mut self.poller, token, &mut conn);
        }
        if result.is_ok() && ev.closed && conn.out_pos >= conn.out.len() {
            result = Err(());
        }
        match result {
            Ok(()) => {
                self.conns.insert(token, conn);
                Ok(())
            }
            Err(()) => {
                self.conns.insert(token, conn);
                Err(())
            }
        }
    }

    fn read_conn(&mut self, token: u64, conn: &mut Conn) -> Result<(), ()> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // Peer closed; serve whatever complete frames arrived.
                    self.dispatch_frames(token, conn)?;
                    return Err(());
                }
                Ok(n) => conn.inbox.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        self.dispatch_frames(token, conn)
    }

    fn dispatch_frames(&mut self, token: u64, conn: &mut Conn) -> Result<(), ()> {
        loop {
            if conn.inbox.len() < 4 {
                return Ok(());
            }
            let len = u32::from_le_bytes(conn.inbox[0..4].try_into().unwrap()) as usize;
            if len > MAX_FRAME_LEN {
                return Err(());
            }
            if conn.inbox.len() < 4 + len {
                return Ok(());
            }
            let payload: Vec<u8> = conn.inbox[4..4 + len].to_vec();
            conn.inbox.drain(..4 + len);
            let response = match decode_request(&payload) {
                Ok(request) => self.handle_request(token, conn, request),
                Err(e) => Some(Response::Error(format!("bad request: {e}"))),
            };
            if let Some(resp) = response {
                stage(conn, &resp);
            }
        }
    }

    /// Serves one request. Returns the response to stage, or `None`
    /// when the handler staged its output itself (attach replay).
    fn handle_request(&mut self, token: u64, conn: &mut Conn, req: Request) -> Option<Response> {
        match req {
            Request::Ping => Some(Response::Pong),
            Request::MetricsText => Some(Response::MetricsText(encode_prometheus(
                &global().snapshot(),
            ))),
            Request::Shutdown => {
                self.shared.begin_shutdown();
                Some(Response::ShuttingDown)
            }
            Request::JobSubmit(blob) => Some(self.submit(&blob)),
            Request::JobStatus(id) => {
                let jobs = self.shared.jobs.lock().unwrap();
                Some(match jobs.get(&id) {
                    Some(entry) => Response::JobInfo(entry.row(id)),
                    None => Response::Error(format!("no such job: {id}")),
                })
            }
            Request::JobList => {
                let jobs = self.shared.jobs.lock().unwrap();
                Some(Response::JobTable(
                    jobs.iter().map(|(&id, e)| e.row(id)).collect(),
                ))
            }
            Request::JobCancel(id) => Some(self.cancel(id)),
            Request::JobAttach { id, from_seq } => {
                self.attach(token, conn, id, from_seq);
                None
            }
            Request::JobReport(id) => Some(self.report(id)),
            _ => Some(Response::Error(
                "fia-campaignd serves job ops; prediction ops are served by fia-serve deployments"
                    .to_string(),
            )),
        }
    }

    fn submit(&mut self, blob: &[u8]) -> Response {
        let spec = match JobSpec::from_blob(blob) {
            Ok(spec) => spec,
            Err(e) => return Response::Error(format!("bad job spec: {e}")),
        };
        let id = {
            let mut next = self.shared.next_id.lock().unwrap();
            let id = *next;
            *next += 1;
            id
        };
        let dir = self.shared.job_dir(id);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            return Response::Error(format!("job dir: {e}"));
        }
        // The spec is durable before the id is acknowledged: a daemon
        // killed right after replying still knows the job on restart.
        if let Err(e) = wal::write_atomic(&dir.join("spec.bin"), &spec.to_blob()) {
            return Response::Error(format!("job spec write: {e}"));
        }
        let entry = JobEntry {
            fingerprint: spec.fingerprint(),
            spec,
            state: JobState::Pending,
            chunks_done: 0,
            rows_done: 0,
            rows_planned: 0,
            queries: 0,
            rows: 0,
            cached_rows: 0,
            resumes: 0,
            events: 0,
            detail: String::new(),
            cancel: false,
            subscribers: Vec::new(),
            events_file: None,
        };
        self.shared.jobs.lock().unwrap().insert(id, entry);
        self.shared.queue.lock().unwrap().push_back(id);
        self.shared.queue_cv.notify_one();
        self.shared.jobs_total.inc();
        Response::JobAccepted(id)
    }

    fn cancel(&mut self, id: u64) -> Response {
        let pending_cancel = {
            let mut jobs = self.shared.jobs.lock().unwrap();
            let Some(entry) = jobs.get_mut(&id) else {
                return Response::Error(format!("no such job: {id}"));
            };
            if !entry.state.is_terminal() {
                entry.cancel = true;
            }
            entry.state == JobState::Pending
        };
        if pending_cancel {
            // Never started: terminal immediately, no worker involved.
            self.shared
                .finish_job(id, JobState::Canceled, "canceled before start");
        }
        let jobs = self.shared.jobs.lock().unwrap();
        match jobs.get(&id) {
            Some(entry) => Response::JobInfo(entry.row(id)),
            None => Response::Error(format!("no such job: {id}")),
        }
    }

    fn report(&self, id: u64) -> Response {
        let state = {
            let jobs = self.shared.jobs.lock().unwrap();
            match jobs.get(&id) {
                Some(entry) => entry.state,
                None => return Response::Error(format!("no such job: {id}")),
            }
        };
        if state != JobState::Completed {
            return Response::Error(format!("job {id} has no report (state: {})", state.name()));
        }
        match std::fs::read(self.shared.job_dir(id).join("outcome.bin")) {
            Ok(blob) => Response::JobReportBlob(blob),
            Err(e) => Response::Error(format!("outcome read: {e}")),
        }
    }

    /// Replays the job's buffered events from `from_seq` and, for live
    /// jobs, subscribes the connection for everything after. Both happen
    /// under the jobs lock — the same lock every `emit_event` takes — so
    /// the replayed prefix and the live tail meet with no gap and no
    /// duplicate.
    fn attach(&mut self, token: u64, conn: &mut Conn, id: u64, from_seq: u64) {
        let mut jobs = self.shared.jobs.lock().unwrap();
        let Some(entry) = jobs.get_mut(&id) else {
            drop(jobs);
            stage(conn, &Response::Error(format!("no such job: {id}")));
            return;
        };
        let mut replayed = 0u64;
        if from_seq < entry.events {
            let text = std::fs::read_to_string(self.shared.job_dir(id).join("events.jsonl"))
                .unwrap_or_default();
            for (seq, line) in text.lines().enumerate().skip(from_seq as usize) {
                stage(
                    conn,
                    &Response::JobEvent {
                        id,
                        seq: seq as u64,
                        json: line.to_string(),
                    },
                );
                replayed += 1;
            }
        }
        if entry.state.is_terminal() {
            let next_seq = entry.events;
            drop(jobs);
            stage(conn, &Response::JobEventsEnd { id, next_seq });
        } else {
            entry.subscribers.push(token);
        }
        if replayed > 0 {
            self.shared.replays_total.inc();
        }
    }

    fn drain_outbox(&mut self) {
        let staged: Vec<(u64, Vec<u8>)> = std::mem::take(&mut *self.shared.outbox.lock().unwrap());
        for (token, payload) in staged {
            if let Some(conn) = self.conns.get_mut(&token) {
                push_frame(conn, &payload);
            }
        }
    }

    fn flush_all(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                let _ = flush_conn(&mut self.poller, token, conn);
            }
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(fd_of(&conn.stream));
        }
        let mut jobs = self.shared.jobs.lock().unwrap();
        for entry in jobs.values_mut() {
            entry.subscribers.retain(|&t| t != token);
        }
    }
}

fn stage(conn: &mut Conn, resp: &Response) {
    let payload = encode_response(resp).expect("response encodes");
    push_frame(conn, &payload);
}

fn push_frame(conn: &mut Conn, payload: &[u8]) {
    conn.out
        .extend_from_slice(&(payload.len() as u32).to_le_bytes());
    conn.out.extend_from_slice(payload);
}

/// Writes as much buffered output as the socket accepts; registers
/// write interest only while bytes remain.
fn flush_conn(poller: &mut Poller, token: u64, conn: &mut Conn) -> Result<(), ()> {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Err(()),
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    if conn.out_pos >= conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
        if conn.write_interest {
            conn.write_interest = false;
            let _ = poller.modify(fd_of(&conn.stream), token, Interest::READ);
        }
    } else if !conn.write_interest {
        conn.write_interest = true;
        let _ = poller.modify(
            fd_of(&conn.stream),
            token,
            Interest {
                read: true,
                write: true,
            },
        );
    }
    Ok(())
}
