#![warn(missing_docs)]

//! # fia-campaignd — a durable campaign service over the serving wire
//!
//! `fia-campaign` gives one process one adversary session.
//! `fia-campaignd` turns that into a *service*: a daemon that accepts
//! submitted campaign jobs over the `fia-serve` wire protocol, runs
//! many of them concurrently on a bounded worker pool, shares one
//! resolved scenario (and, for served oracles, one spawned
//! [`fia_serve::PredictionServer`]) between jobs whose scenario
//! fingerprints match, and streams each job's
//! [`fia_campaign::CampaignEvent`]s to any number of attached clients
//! with resume-from-sequence semantics.
//!
//! The load-bearing property is durability. Every corpus chunk a
//! campaign completes is checkpointed to the job's write-ahead log —
//! fsync'd, checksummed, appended *before* the chunk's events are
//! published ([`wal`]). A daemon killed with `SIGKILL` restarts over
//! the same state directory, replays each log to its last intact
//! checkpoint, validates the scenario fingerprint, and resumes every
//! in-flight job — bit-identically, because the job spec only admits
//! deterministic release boundaries ([`spec`]).
//!
//! ```text
//!  client ──JOB_SUBMIT──▶ ┌────────────────────────────────┐
//!  client ──JOB_ATTACH──▶ │ reactor (epoll/poll, 1 thread) │
//!                         └──────┬─────────────────────────┘
//!                          queue │           ▲ events
//!                         ┌──────▼──────┐    │
//!                         │ worker pool │────┘  checkpoint per chunk
//!                         └──────┬──────┘       └▶ jobs/<id>/job.log
//!                     fingerprint│
//!                         ┌──────▼──────────────────┐
//!                         │ shared deployments      │
//!                         │ (one PredictionServer   │
//!                         │  per scenario)          │
//!                         └─────────────────────────┘
//! ```
//!
//! The daemon binary is `fia-campaignd`; [`CampaignClient`] is the
//! typed client. See `tests/` for the kill-and-restart pin.

pub mod client;
mod codec;
pub mod daemon;
pub mod outcome;
pub mod spec;
pub mod wal;

pub use client::{CampaignClient, DaemonClientError};
pub use codec::BlobError;
pub use daemon::{start, DaemonConfig, DaemonHandle};
pub use outcome::{AttackOutcome, JobOutcome};
pub use spec::{JobAttack, JobDefense, JobModel, JobOracle, JobSpec};
