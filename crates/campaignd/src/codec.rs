//! Tiny byte-blob codec shared by the job spec and outcome formats.
//!
//! Job specs travel over the wire (inside `JOB_SUBMIT` frames) and rest
//! on disk; outcomes rest on disk and travel back in `JOB_REPORT_BLOB`
//! frames. Both are versioned little-endian blobs decoded through this
//! bounds-checked cursor so a malformed byte yields a typed
//! [`BlobError`], never a panic or a silent mis-read.

use std::fmt;

/// A typed decode failure for campaignd blobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobError {
    /// The blob ended before the field being read.
    Truncated,
    /// The version byte names a format this build does not speak.
    UnsupportedVersion(u8),
    /// A field held a value the format forbids.
    Invalid(&'static str),
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::Truncated => write!(f, "blob is truncated"),
            BlobError::UnsupportedVersion(v) => {
                write!(f, "unsupported blob version {v}")
            }
            BlobError::Invalid(why) => write!(f, "invalid blob field: {why}"),
        }
    }
}

impl std::error::Error for BlobError {}

/// Bounds-checked reader over a blob.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], BlobError> {
        let end = self.pos.checked_add(n).ok_or(BlobError::Truncated)?;
        let s = self.bytes.get(self.pos..end).ok_or(BlobError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, BlobError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, BlobError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, BlobError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, BlobError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Decode must consume every byte; trailing garbage is an error.
    pub(crate) fn finish(self) -> Result<(), BlobError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(BlobError::Invalid("trailing bytes"))
        }
    }
}

/// Appends `len ∥ bytes` with a u16 length prefix.
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("string field fits u16");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Reads a u16-length-prefixed UTF-8 string, capped at `max` bytes.
pub(crate) fn get_str(c: &mut Cursor<'_>, max: usize) -> Result<String, BlobError> {
    let len = u16::from_le_bytes(c.take(2)?.try_into().unwrap()) as usize;
    if len > max {
        return Err(BlobError::Invalid("string field too long"));
    }
    String::from_utf8(c.take(len)?.to_vec()).map_err(|_| BlobError::Invalid("string not utf-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_reads_are_bounds_checked() {
        let mut c = Cursor::new(&[1, 2, 3]);
        assert_eq!(c.u8().unwrap(), 1);
        assert_eq!(c.u32(), Err(BlobError::Truncated));
        let mut c = Cursor::new(&[1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(c.u64().unwrap(), 1);
        c.finish().unwrap();
    }

    #[test]
    fn strings_round_trip_and_reject_abuse() {
        let mut out = Vec::new();
        put_str(&mut out, "hello");
        let mut c = Cursor::new(&out);
        assert_eq!(get_str(&mut c, 16).unwrap(), "hello");
        let mut c = Cursor::new(&out);
        assert_eq!(
            get_str(&mut c, 3),
            Err(BlobError::Invalid("string field too long"))
        );
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u16.to_le_bytes());
        bad.extend_from_slice(&[0xFF, 0xFE]);
        let mut c = Cursor::new(&bad);
        assert_eq!(
            get_str(&mut c, 16),
            Err(BlobError::Invalid("string not utf-8"))
        );
    }
}
