//! The daemon's job description: what a submitted campaign should run.
//!
//! A [`JobSpec`] is the payload of a `JOB_SUBMIT` wire frame and the
//! `spec.bin` file in a job's state directory. It is deliberately a
//! *restriction* of the full [`ScenarioSpec`] surface: every knob it
//! exposes keeps the campaign deterministic under kill-and-restart
//! resume (so no noise defenses, whose released scores depend on chunk
//! boundaries), and everything in it is covered by the scenario
//! fingerprint, which is what lets the daemon share one deployment
//! between jobs that describe the same scenario.

use crate::codec::{BlobError, Cursor};
use fia_campaign::{
    AttackSpec, ModelSpec, OracleSpec, PartitionSpec, QueryBudget, ScenarioSpec, ServedConfig,
};
use fia_data::PaperDataset;
use fia_defense::{DefensePipeline, RoundingDefense};

/// Job-spec blob format version.
pub const SPEC_VERSION: u8 = 1;

/// Model family a job trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobModel {
    /// Multinomial logistic regression.
    Logistic,
    /// CART decision tree.
    DecisionTree,
}

/// Score-release defense a job deploys. Only defenses whose released
/// scores are a pure per-row function are offered: resume correctness
/// requires the corpus prefix to be independent of chunk boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobDefense {
    /// Release raw confidences.
    None,
    /// Round released confidences to 1e-3.
    RoundingFine,
    /// Round released confidences to 1e-1.
    RoundingCoarse,
}

/// Attack a job mounts over its corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobAttack {
    /// Equality-solving attack.
    Esa,
    /// Path-restriction attack.
    Pra,
}

/// The oracle the job's campaign queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOracle {
    /// Query the deployment in-process inside the daemon.
    InProcess,
    /// Query a real `fia-serve` prediction server the daemon spawns —
    /// and shares with every other job whose fingerprint matches.
    Shared {
        /// Backend replicas behind the shared server.
        replicas: u32,
        /// Released-score cache capacity in rows (`0` disables; keep it
        /// `0` when bit-identical resume across restarts matters, since
        /// cache hits depend on query arrival order across jobs).
        cache_capacity: u32,
    },
}

/// A submitted campaign: scenario knobs, budget, and pacing.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Paper dataset the scenario generates.
    pub dataset: PaperDataset,
    /// Fraction of the paper-scale sample count to generate.
    pub scale: f64,
    /// Fraction of features held by the target (passive) party.
    pub target_fraction: f64,
    /// Master scenario seed.
    pub seed: u64,
    /// Model family.
    pub model: JobModel,
    /// Score-release defense.
    pub defense: JobDefense,
    /// Attacks to mount, in order.
    pub attacks: Vec<JobAttack>,
    /// Query-budget cap on oracle rounds, if any.
    pub max_queries: Option<u64>,
    /// Query-budget cap on confidence rows, if any.
    pub max_rows: Option<u64>,
    /// Corpus chunk size in rows (checkpoint granularity).
    pub chunk: u32,
    /// Oracle kind.
    pub oracle: JobOracle,
    /// Artificial pause after each chunk, in milliseconds. A test knob:
    /// it widens the window in which a `SIGKILL` lands mid-campaign.
    pub throttle_ms: u32,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            dataset: PaperDataset::CreditCard,
            scale: 0.02,
            target_fraction: 0.3,
            seed: 7,
            model: JobModel::Logistic,
            defense: JobDefense::None,
            attacks: vec![JobAttack::Esa],
            max_queries: None,
            max_rows: None,
            chunk: 32,
            oracle: JobOracle::InProcess,
            throttle_ms: 0,
        }
    }
}

fn dataset_code(d: PaperDataset) -> u8 {
    match d {
        PaperDataset::BankMarketing => 0,
        PaperDataset::CreditCard => 1,
        PaperDataset::DriveDiagnosis => 2,
        PaperDataset::NewsPopularity => 3,
        PaperDataset::Synthetic1 => 4,
        PaperDataset::Synthetic2 => 5,
    }
}

fn dataset_from_code(code: u8) -> Result<PaperDataset, BlobError> {
    Ok(match code {
        0 => PaperDataset::BankMarketing,
        1 => PaperDataset::CreditCard,
        2 => PaperDataset::DriveDiagnosis,
        3 => PaperDataset::NewsPopularity,
        4 => PaperDataset::Synthetic1,
        5 => PaperDataset::Synthetic2,
        _ => return Err(BlobError::Invalid("unknown dataset code")),
    })
}

impl JobSpec {
    /// Checks the spec's invariants; every decoded blob passes through
    /// this, so a daemon never runs a structurally bad job.
    pub fn validate(&self) -> Result<(), BlobError> {
        if !self.scale.is_finite() || self.scale <= 0.0 || self.scale > 1.0 {
            return Err(BlobError::Invalid("scale must be in (0, 1]"));
        }
        if !self.target_fraction.is_finite()
            || self.target_fraction <= 0.0
            || self.target_fraction >= 1.0
        {
            return Err(BlobError::Invalid("target_fraction must be in (0, 1)"));
        }
        if self.chunk == 0 {
            return Err(BlobError::Invalid("chunk must be at least 1"));
        }
        if self.attacks.is_empty() {
            return Err(BlobError::Invalid("at least one attack is required"));
        }
        if let JobOracle::Shared { replicas, .. } = self.oracle {
            if replicas == 0 {
                return Err(BlobError::Invalid("shared oracle needs a replica"));
            }
        }
        Ok(())
    }

    /// Serializes the spec as a versioned blob.
    pub fn to_blob(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(SPEC_VERSION);
        out.push(dataset_code(self.dataset));
        out.extend_from_slice(&self.scale.to_bits().to_le_bytes());
        out.extend_from_slice(&self.target_fraction.to_bits().to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.push(match self.model {
            JobModel::Logistic => 0,
            JobModel::DecisionTree => 1,
        });
        out.push(match self.defense {
            JobDefense::None => 0,
            JobDefense::RoundingFine => 1,
            JobDefense::RoundingCoarse => 2,
        });
        out.push(self.attacks.len() as u8);
        for a in &self.attacks {
            out.push(match a {
                JobAttack::Esa => 0,
                JobAttack::Pra => 1,
            });
        }
        let flags = u8::from(self.max_queries.is_some()) | (u8::from(self.max_rows.is_some()) << 1);
        out.push(flags);
        if let Some(q) = self.max_queries {
            out.extend_from_slice(&q.to_le_bytes());
        }
        if let Some(r) = self.max_rows {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&self.chunk.to_le_bytes());
        match self.oracle {
            JobOracle::InProcess => out.push(0),
            JobOracle::Shared {
                replicas,
                cache_capacity,
            } => {
                out.push(1);
                out.extend_from_slice(&replicas.to_le_bytes());
                out.extend_from_slice(&cache_capacity.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.throttle_ms.to_le_bytes());
        out
    }

    /// Decodes and validates a spec blob.
    pub fn from_blob(blob: &[u8]) -> Result<JobSpec, BlobError> {
        let mut c = Cursor::new(blob);
        let version = c.u8()?;
        if version != SPEC_VERSION {
            return Err(BlobError::UnsupportedVersion(version));
        }
        let dataset = dataset_from_code(c.u8()?)?;
        let scale = c.f64()?;
        let target_fraction = c.f64()?;
        let seed = c.u64()?;
        let model = match c.u8()? {
            0 => JobModel::Logistic,
            1 => JobModel::DecisionTree,
            _ => return Err(BlobError::Invalid("unknown model code")),
        };
        let defense = match c.u8()? {
            0 => JobDefense::None,
            1 => JobDefense::RoundingFine,
            2 => JobDefense::RoundingCoarse,
            _ => return Err(BlobError::Invalid("unknown defense code")),
        };
        let n_attacks = c.u8()? as usize;
        if n_attacks > 8 {
            return Err(BlobError::Invalid("too many attacks"));
        }
        let mut attacks = Vec::with_capacity(n_attacks);
        for _ in 0..n_attacks {
            attacks.push(match c.u8()? {
                0 => JobAttack::Esa,
                1 => JobAttack::Pra,
                _ => return Err(BlobError::Invalid("unknown attack code")),
            });
        }
        let flags = c.u8()?;
        if flags > 3 {
            return Err(BlobError::Invalid("unknown budget flags"));
        }
        let max_queries = if flags & 1 != 0 { Some(c.u64()?) } else { None };
        let max_rows = if flags & 2 != 0 { Some(c.u64()?) } else { None };
        let chunk = c.u32()?;
        let oracle = match c.u8()? {
            0 => JobOracle::InProcess,
            1 => JobOracle::Shared {
                replicas: c.u32()?,
                cache_capacity: c.u32()?,
            },
            _ => return Err(BlobError::Invalid("unknown oracle code")),
        };
        let throttle_ms = c.u32()?;
        c.finish()?;
        let spec = JobSpec {
            dataset,
            scale,
            target_fraction,
            seed,
            model,
            defense,
            attacks,
            max_queries,
            max_rows,
            chunk,
            oracle,
            throttle_ms,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Lowers the job to the campaign layer's scenario builder.
    pub fn to_scenario(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::paper(self.dataset)
            .with_scale(self.scale)
            .with_partition(PartitionSpec::two_block_random(self.target_fraction))
            .with_seed(self.seed)
            .with_model(match self.model {
                JobModel::Logistic => ModelSpec::logistic(),
                JobModel::DecisionTree => ModelSpec::decision_tree(),
            });
        spec = match self.defense {
            JobDefense::None => spec,
            JobDefense::RoundingFine => {
                spec.with_defense(DefensePipeline::new().then(RoundingDefense::fine()))
            }
            JobDefense::RoundingCoarse => {
                spec.with_defense(DefensePipeline::new().then(RoundingDefense::coarse()))
            }
        };
        if let JobOracle::Shared {
            replicas,
            cache_capacity,
        } = self.oracle
        {
            spec = spec.with_oracle(OracleSpec::Served(ServedConfig {
                replicas: replicas as usize,
                cache_capacity: cache_capacity as usize,
                ..ServedConfig::default()
            }));
        }
        spec
    }

    /// The scenario fingerprint this job resolves to — the daemon's
    /// deployment-sharing and resume-validation key.
    pub fn fingerprint(&self) -> String {
        self.to_scenario().fingerprint()
    }

    /// The campaign query budget this job runs under.
    pub fn budget(&self) -> QueryBudget {
        QueryBudget {
            max_queries: self.max_queries,
            max_rows: self.max_rows,
        }
    }

    /// The attack list lowered to campaign [`AttackSpec`]s.
    pub fn attack_specs(&self) -> Vec<AttackSpec> {
        self.attacks
            .iter()
            .map(|a| match a {
                JobAttack::Esa => AttackSpec::esa(),
                JobAttack::Pra => AttackSpec::pra(),
            })
            .collect()
    }
}

/// Human-oriented one-liner for tables and logs.
pub fn describe_spec(spec: &JobSpec) -> String {
    format!(
        "{} scale={} seed={} attacks={} oracle={:?}",
        spec.dataset.name(),
        spec.scale,
        spec.seed,
        spec.attacks.len(),
        spec.oracle
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSpec {
        JobSpec {
            dataset: PaperDataset::DriveDiagnosis,
            scale: 0.005,
            target_fraction: 0.4,
            seed: 41,
            model: JobModel::DecisionTree,
            defense: JobDefense::RoundingCoarse,
            attacks: vec![JobAttack::Pra, JobAttack::Esa],
            max_queries: Some(12),
            max_rows: None,
            chunk: 16,
            oracle: JobOracle::Shared {
                replicas: 2,
                cache_capacity: 0,
            },
            throttle_ms: 5,
        }
    }

    #[test]
    fn spec_round_trips_through_blob() {
        let spec = sample();
        assert_eq!(JobSpec::from_blob(&spec.to_blob()).unwrap(), spec);
        let spec = JobSpec::default();
        assert_eq!(JobSpec::from_blob(&spec.to_blob()).unwrap(), spec);
    }

    #[test]
    fn every_truncation_is_typed() {
        let blob = sample().to_blob();
        for cut in 0..blob.len() {
            match JobSpec::from_blob(&blob[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("cut {cut} decoded"),
            }
        }
    }

    #[test]
    fn bad_fields_are_rejected() {
        let mut blob = sample().to_blob();
        blob[0] = 9;
        assert_eq!(
            JobSpec::from_blob(&blob),
            Err(BlobError::UnsupportedVersion(9))
        );
        let mut blob = sample().to_blob();
        blob[1] = 200;
        assert_eq!(
            JobSpec::from_blob(&blob),
            Err(BlobError::Invalid("unknown dataset code"))
        );
        let mut blob = sample().to_blob();
        blob.push(0);
        assert_eq!(
            JobSpec::from_blob(&blob),
            Err(BlobError::Invalid("trailing bytes"))
        );
        let mut bad = sample();
        bad.scale = 1.5;
        assert!(bad.validate().is_err());
        bad = sample();
        bad.chunk = 0;
        assert!(bad.validate().is_err());
        bad = sample();
        bad.attacks.clear();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fingerprint_is_oracle_and_seed_sensitive() {
        let a = sample();
        let mut b = sample();
        b.seed = 42;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = sample();
        c.oracle = JobOracle::InProcess;
        assert_ne!(a.fingerprint(), c.fingerprint());
        // throttle is pacing, not scenario: it must NOT change the key.
        let mut d = sample();
        d.throttle_ms = 500;
        assert_eq!(a.fingerprint(), d.fingerprint());
    }
}
