//! Durability primitives: atomic file replacement and the per-job
//! write-ahead log.
//!
//! Two disciplines cover every byte the daemon persists:
//!
//! - **Atomic replace** ([`write_atomic`]): write to a temp file in the
//!   same directory, `fsync` it, `rename` over the destination, then
//!   `fsync` the directory so the rename itself is durable. Readers see
//!   either the old contents or the new, never a torn mix. Used for
//!   small whole-file state: job specs, terminal markers, outcomes, the
//!   endpoint file.
//! - **Append-only framed log** ([`JobLog`]): each record is
//!   `magic ∥ len ∥ payload ∥ fnv64(payload)`, appended with
//!   `fdatasync` before the daemon acts on the state it describes.
//!   Recovery scans forward and stops at the first frame that is
//!   incomplete or fails its checksum, so a crash mid-append yields the
//!   *previous* checkpoint — never garbage. Used for campaign
//!   checkpoints, one per corpus chunk.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Frame marker for job-log records ("FJL" + version 1).
pub const LOG_MAGIC: u32 = 0x464A_4C01;

/// Upper bound on a single log record; a campaign checkpoint for the
/// largest in-tree scenario is well under this.
pub const MAX_RECORD_LEN: usize = 1 << 24;

/// FNV-1a over a byte slice — the same checksum the campaign
/// checkpoint blob uses, applied here per log frame.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, fsync, rename over the destination, fsync the directory.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no parent"))?;
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(".{}.tmp", name.to_string_lossy()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Durability of the rename itself requires syncing the directory.
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// An append-only checkpoint log for one job.
pub struct JobLog {
    file: File,
}

impl JobLog {
    /// Opens (creating if absent) the log at `path` for appending.
    pub fn open(path: &Path) -> io::Result<JobLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JobLog { file })
    }

    /// Appends one framed record and syncs it to disk before returning.
    /// The record is only considered written once this returns `Ok`.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "job log record too large",
            ));
        }
        let mut frame = Vec::with_capacity(payload.len() + 16);
        frame.extend_from_slice(&LOG_MAGIC.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&fnv(payload).to_le_bytes());
        self.file.write_all(&frame)?;
        self.file.sync_data()
    }

    /// Scans the log at `path` and returns the payload of the last
    /// intact record, or `None` when the log is absent or holds no
    /// complete record. A torn or corrupt tail frame is ignored — the
    /// scan stops at the last record whose magic, length and checksum
    /// all verify, which is exactly the state the daemon had made
    /// durable before the crash.
    pub fn recover(path: &Path) -> io::Result<Option<Vec<u8>>> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        let mut last: Option<Vec<u8>> = None;
        let mut pos = 0usize;
        while let Some(header) = bytes.get(pos..pos + 8) {
            let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
            if magic != LOG_MAGIC {
                break;
            }
            let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
            if len > MAX_RECORD_LEN {
                break;
            }
            let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
                break;
            };
            let Some(sum) = bytes.get(pos + 8 + len..pos + 16 + len) else {
                break;
            };
            if u64::from_le_bytes(sum.try_into().unwrap()) != fnv(payload) {
                break;
            }
            last = Some(payload.to_vec());
            pos += 16 + len;
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fia-wal-{tag}-{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = tmp_dir("atomic");
        let path = dir.join("state");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        // No temp litter left behind.
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_returns_last_record_and_survives_torn_tail() {
        let dir = tmp_dir("log");
        let path = dir.join("job.log");
        assert!(JobLog::recover(&path).unwrap().is_none());
        {
            let mut log = JobLog::open(&path).unwrap();
            log.append(b"one").unwrap();
            log.append(b"two-two").unwrap();
        }
        assert_eq!(JobLog::recover(&path).unwrap().unwrap(), b"two-two");
        // A torn append (partial frame) must not hide the last good record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&LOG_MAGIC.to_le_bytes()).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap();
            f.write_all(b"only-part-of-the-payload").unwrap();
        }
        assert_eq!(JobLog::recover(&path).unwrap().unwrap(), b"two-two");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_byte_yields_prior_record_or_none() {
        let dir = tmp_dir("trunc");
        let path = dir.join("job.log");
        {
            let mut log = JobLog::open(&path).unwrap();
            log.append(b"alpha").unwrap();
            log.append(b"beta-beta").unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let first_len = 16 + 5;
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let got = JobLog::recover(&path).unwrap();
            if cut < first_len {
                assert!(got.is_none(), "cut {cut}");
            } else if cut < full.len() {
                assert_eq!(got.as_deref(), Some(&b"alpha"[..]), "cut {cut}");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
