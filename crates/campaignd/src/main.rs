//! The `fia-campaignd` binary: stand up a campaign daemon over a state
//! directory and serve until asked to shut down.
//!
//! ```text
//! fia-campaignd --state-dir DIR [--bind ADDR] [--workers N]
//! ```
//!
//! The bound address is printed to stdout and written (atomically) to
//! `DIR/endpoint`, so scripts that bind an ephemeral port can find it.

use fia_campaignd::{start, DaemonConfig};

fn usage() -> ! {
    eprintln!("usage: fia-campaignd --state-dir DIR [--bind ADDR] [--workers N]");
    std::process::exit(2);
}

fn main() {
    let mut state_dir: Option<String> = None;
    let mut bind = "127.0.0.1:0".to_string();
    let mut workers = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--state-dir" => state_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--bind" => bind = args.next().unwrap_or_else(|| usage()),
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(state_dir) = state_dir else { usage() };

    let config = DaemonConfig {
        bind,
        state_dir: state_dir.into(),
        workers,
    };
    match start(config) {
        Ok(handle) => {
            println!("fia-campaignd listening on {}", handle.addr());
            handle.wait();
        }
        Err(e) => {
            eprintln!("fia-campaignd: startup failed: {e}");
            std::process::exit(1);
        }
    }
}
