//! Path Restriction Attack (PRA) — Section IV-B, Algorithm 1.
//!
//! Given one decision-tree prediction (the predicted class only — DT
//! confidences are one-hot), the adversary:
//!
//! 1. walks the full binary tree maintaining an indicator vector `β`:
//!    nodes testing the adversary's own features kill the branch the true
//!    value cannot take; nodes testing unknown target features keep both
//!    children alive;
//! 2. intersects with the indicator `α` of leaves labelled with the
//!    predicted class;
//! 3. picks one surviving path uniformly at random and reads off the
//!    branch constraints it implies for the target's features.

use crate::engine::{row_seed, Attack, AttackResult, QueryBatch};
use crate::metrics::CbrTally;
use fia_linalg::vecops::argmax;
use fia_linalg::Matrix;
use fia_models::{DecisionTree, TreeNode};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::VecDeque;

/// One inferred inequality on a target feature: `x[feature] ≤ threshold`
/// when `le` is true, `x[feature] > threshold` otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchConstraint {
    /// Global feature index (owned by the target party).
    pub feature: usize,
    /// Branching threshold at the tree node.
    pub threshold: f64,
    /// Direction: `true` = "≤ threshold" (left branch).
    pub le: bool,
}

impl BranchConstraint {
    /// Whether the ground-truth value satisfies this constraint.
    pub fn satisfied_by(&self, value: f64) -> bool {
        if self.le {
            value <= self.threshold
        } else {
            value > self.threshold
        }
    }

    /// A point estimate for the constrained feature given the known value
    /// range `(lo, hi)`: the midpoint of the feasible half-interval. The
    /// threat model grants the adversary feature ranges (Section III-B).
    pub fn point_estimate(&self, lo: f64, hi: f64) -> f64 {
        if self.le {
            0.5 * (lo + self.threshold.min(hi))
        } else {
            0.5 * (self.threshold.max(lo) + hi)
        }
    }
}

/// The path restriction attack against one decision tree.
pub struct PathRestrictionAttack<'a> {
    tree: &'a DecisionTree,
    /// Sorted global indices of the adversary's features.
    adv_indices: Vec<usize>,
    /// Sorted global indices of the target's features.
    target_indices: Vec<usize>,
    /// Known feature value range `(lo, hi)` used by the batched value
    /// estimator (threat-model knowledge, Section III-B).
    value_range: (f64, f64),
    /// Base seed for the batched path; per-row randomness is derived from
    /// row *content* so results are chunk-invariant under the engine.
    seed: u64,
}

impl<'a> PathRestrictionAttack<'a> {
    /// Prepares the attack. Indices are global feature ids; they need not
    /// cover the whole feature space (the tree may also ignore features).
    ///
    /// The batched estimator defaults to the paper's normalized `(0, 1)`
    /// feature range and seed 0; see
    /// [`PathRestrictionAttack::with_value_range`] and
    /// [`PathRestrictionAttack::with_seed`].
    pub fn new(tree: &'a DecisionTree, adv_indices: &[usize], target_indices: &[usize]) -> Self {
        let mut adv = adv_indices.to_vec();
        adv.sort_unstable();
        let mut target = target_indices.to_vec();
        target.sort_unstable();
        PathRestrictionAttack {
            tree,
            adv_indices: adv,
            target_indices: target,
            value_range: (0.0, 1.0),
            seed: 0,
        }
    }

    /// Overrides the known feature value range used by
    /// [`Attack::infer_batch`]'s point estimates.
    pub fn with_value_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "value range must be non-empty");
        self.value_range = (lo, hi);
        self
    }

    /// Overrides the base seed of the batched path's tie-break sampling.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Algorithm 1: computes the indicator vector `β` over the node array
    /// and returns the surviving leaf indices whose label is
    /// `predicted_class` and which are reachable given the adversary's
    /// feature values.
    ///
    /// `x_adv` is ordered per the (sorted) adversary indices passed at
    /// construction.
    pub fn restricted_leaves(&self, x_adv: &[f64], predicted_class: usize) -> Vec<usize> {
        assert_eq!(x_adv.len(), self.adv_indices.len(), "x_adv width mismatch");
        let nodes = self.tree.nodes();
        let nf = nodes.len();
        // β = 0 everywhere; β₀ = 1 (lines 1–3).
        let mut beta = vec![0u8; nf];
        beta[0] = 1;
        let mut queue = VecDeque::from([0usize]);
        // Lines 4–14: propagate reachability.
        while let Some(i) = queue.pop_front() {
            match &nodes[i] {
                TreeNode::Internal { feature, threshold } => {
                    let (l, r) = (2 * i + 1, 2 * i + 2);
                    match self.adv_value(x_adv, *feature) {
                        Some(value) => {
                            // Adversary knows this comparison's outcome.
                            if value <= *threshold {
                                beta[l] = beta[i];
                                beta[r] = 0;
                            } else {
                                beta[l] = 0;
                                beta[r] = beta[i];
                            }
                        }
                        None => {
                            // Unknown (target) feature: both branches stay.
                            beta[l] = beta[i];
                            beta[r] = beta[i];
                        }
                    }
                    queue.push_back(l);
                    queue.push_back(r);
                }
                TreeNode::Leaf { .. } | TreeNode::Absent => {}
            }
        }
        // Lines 15–17: α masks leaves of the predicted class.
        (0..nf)
            .filter(|&i| {
                beta[i] == 1
                    && matches!(nodes[i], TreeNode::Leaf { label } if label == predicted_class)
            })
            .collect()
    }

    /// Full root-to-leaf paths surviving the restriction (the paper's
    /// `n_r` is the length of this vector).
    pub fn restricted_paths(&self, x_adv: &[f64], predicted_class: usize) -> Vec<Vec<usize>> {
        self.restricted_leaves(x_adv, predicted_class)
            .into_iter()
            .map(path_to_root)
            .collect()
    }

    /// Runs the full attack for one sample: restrict, sample one path
    /// uniformly (the paper's tie-break), and extract the target-feature
    /// constraints along it. Returns `None` when no path survives (can
    /// only happen if the observed class is inconsistent with `x_adv`,
    /// e.g. under a defense that perturbs predictions).
    pub fn infer(
        &self,
        x_adv: &[f64],
        predicted_class: usize,
        rng: &mut StdRng,
    ) -> Option<InferredPath> {
        let leaves = self.restricted_leaves(x_adv, predicted_class);
        if leaves.is_empty() {
            return None;
        }
        let leaf = leaves[rng.gen_range(0..leaves.len())];
        let path = path_to_root(leaf);
        let constraints = self.constraints_along(&path);
        Some(InferredPath {
            path,
            constraints,
            n_restricted: leaves.len(),
        })
    }

    /// Branch constraints on *target* features along a path.
    pub fn constraints_along(&self, path: &[usize]) -> Vec<BranchConstraint> {
        let nodes = self.tree.nodes();
        let mut out = Vec::new();
        for w in path.windows(2) {
            if let TreeNode::Internal { feature, threshold } = &nodes[w[0]] {
                if self.target_indices.binary_search(feature).is_ok() {
                    out.push(BranchConstraint {
                        feature: *feature,
                        threshold: *threshold,
                        le: w[1] == 2 * w[0] + 1,
                    });
                }
            }
        }
        out
    }

    /// Point-estimate inference: runs the path restriction and converts
    /// the selected path's constraints into per-feature value estimates
    /// (feasible-interval midpoints; unconstrained target features fall
    /// back to the range midpoint). Returns values ordered per the
    /// (sorted) target indices.
    ///
    /// This extends the paper's PRA — which reports only branch
    /// directions — into an estimator comparable with ESA/GRNA on the
    /// MSE-per-feature metric. The value range `(lo, hi)` is threat-model
    /// knowledge (Section III-B).
    pub fn infer_values(
        &self,
        x_adv: &[f64],
        predicted_class: usize,
        lo: f64,
        hi: f64,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let inferred = self.infer(x_adv, predicted_class, rng);
        self.values_from_path(inferred.as_ref(), lo, hi)
    }

    /// Converts an inferred path (or its absence) into per-feature point
    /// estimates — the shared back-end of [`PathRestrictionAttack::infer_values`]
    /// and the batched [`Attack::infer_batch`] path.
    fn values_from_path(&self, inferred: Option<&InferredPath>, lo: f64, hi: f64) -> Vec<f64> {
        let mid = 0.5 * (lo + hi);
        let mut estimates = vec![mid; self.target_indices.len()];
        if let Some(inferred) = inferred {
            // Later constraints on the same feature are deeper in the
            // tree and therefore tighter; intersect by folding intervals.
            let mut intervals = vec![(lo, hi); self.target_indices.len()];
            for c in &inferred.constraints {
                let k = self
                    .target_indices
                    .binary_search(&c.feature)
                    .expect("constraint is on a target feature");
                let (clo, chi) = &mut intervals[k];
                if c.le {
                    *chi = chi.min(c.threshold);
                } else {
                    *clo = clo.max(c.threshold);
                }
                if *clo > *chi {
                    // Contradictory constraints can only arise from a
                    // degenerate tree; fall back to the midpoint.
                    *clo = lo;
                    *chi = hi;
                }
            }
            for (e, (clo, chi)) in estimates.iter_mut().zip(intervals) {
                *e = 0.5 * (clo + chi);
            }
        }
        estimates
    }

    /// Evaluates the CBR of one inference against the ground-truth full
    /// sample (global feature order).
    pub fn evaluate_cbr(&self, inferred: &InferredPath, x_full: &[f64]) -> CbrTally {
        let mut tally = CbrTally::default();
        for c in &inferred.constraints {
            tally.total += 1;
            if c.satisfied_by(x_full[c.feature]) {
                tally.correct += 1;
            }
        }
        tally
    }

    fn adv_value(&self, x_adv: &[f64], feature: usize) -> Option<f64> {
        self.adv_indices
            .binary_search(&feature)
            .ok()
            .map(|k| x_adv[k])
    }
}

impl Attack for PathRestrictionAttack<'_> {
    fn name(&self) -> &'static str {
        "pra"
    }

    fn target_indices(&self) -> &[usize] {
        &self.target_indices
    }

    /// Batched path restriction with value estimation.
    ///
    /// The predicted class of each query is recovered from its (one-hot or
    /// vote-fraction) confidence row by arg-max — exactly what a decision
    /// tree reveals. Each row's uniform tie-break among surviving paths is
    /// seeded by the row's content ([`row_seed`]), so engine striping does
    /// not change the outcome. Rows where no path survives (a defense
    /// perturbed the prediction) degrade to range midpoints and are
    /// reported.
    fn infer_batch(&self, batch: &QueryBatch) -> AttackResult {
        assert_eq!(
            batch.x_adv.cols(),
            self.adv_indices.len(),
            "x_adv width mismatch"
        );
        let (lo, hi) = self.value_range;
        let n = batch.len();
        crate::telemetry::phase("pra", "solve", n, || {
            let mut estimates = Matrix::zeros(n, self.target_indices.len());
            let mut degraded_rows = Vec::new();
            for i in 0..n {
                let x_adv = batch.x_adv.row(i);
                let conf = batch.confidences.row(i);
                let class = argmax(conf);
                let mut rng = StdRng::seed_from_u64(row_seed(self.seed, x_adv, conf));
                let inferred = self.infer(x_adv, class, &mut rng);
                if inferred.is_none() {
                    degraded_rows.push(i);
                }
                let est = self.values_from_path(inferred.as_ref(), lo, hi);
                estimates.row_mut(i).copy_from_slice(&est);
            }
            AttackResult {
                estimates,
                target_indices: self.target_indices.clone(),
                attack: Attack::name(self),
                degraded_rows,
            }
        })
    }
}

/// Result of one PRA inference.
#[derive(Debug, Clone)]
pub struct InferredPath {
    /// Node indices from root to the selected leaf.
    pub path: Vec<usize>,
    /// Constraints implied for target features along the path.
    pub constraints: Vec<BranchConstraint>,
    /// Number of candidate paths after restriction (`n_r`).
    pub n_restricted: usize,
}

/// Recovers the root-to-leaf node index path of a full-binary-array leaf.
fn path_to_root(leaf: usize) -> Vec<usize> {
    let mut path = vec![leaf];
    let mut i = leaf;
    while i > 0 {
        i = (i - 1) / 2;
        path.push(i);
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_models::TreeNode::*;
    use rand::SeedableRng;

    /// The Fig. 2 tree: features 0 = age, 1 = income (adversary);
    /// 2 = deposit, 3 = #shopping (target). Labels follow the example.
    fn figure2_tree() -> DecisionTree {
        let nodes = vec![
            Internal {
                feature: 0,
                threshold: 30.0,
            }, // 0
            Internal {
                feature: 2,
                threshold: 5.0,
            }, // 1
            Internal {
                feature: 3,
                threshold: 6.0,
            }, // 2
            Internal {
                feature: 1,
                threshold: 3.0,
            }, // 3
            Leaf { label: 1 }, // 4
            Leaf { label: 1 }, // 5
            Internal {
                feature: 1,
                threshold: 2.0,
            }, // 6
            Leaf { label: 2 }, // 7
            Leaf { label: 2 }, // 8
            Absent,
            Absent,
            Absent,
            Absent,
            Leaf { label: 2 }, // 13
            Leaf { label: 1 }, // 14
        ];
        DecisionTree::from_nodes(nodes, 4, 3)
    }

    #[test]
    fn figure2_beta_restriction() {
        // Example 2: age = 25, income = 2K restricts 5 paths to 2; the
        // observed class 1 then identifies the single real path.
        let tree = figure2_tree();
        let attack = PathRestrictionAttack::new(&tree, &[0, 1], &[2, 3]);
        let x_adv = [25.0, 2.0]; // ordered by sorted indices (0, 1)

        // Without the class filter: leaves reachable given x_adv. age ≤ 30
        // goes left at the root; node 3 (income ≤ 3) goes left → leaf 7;
        // node 1's deposit test is unknown → both children alive.
        // Candidates: leaf 7 (class 2) and leaf 4 (class 1) → 2 paths.
        let class1 = attack.restricted_leaves(&x_adv, 1);
        assert_eq!(class1, vec![4], "class 1 pins the real path");
        let class2 = attack.restricted_leaves(&x_adv, 2);
        assert_eq!(class2, vec![7]);
    }

    #[test]
    fn figure2_inferred_constraint_is_deposit_gt_5k() {
        let tree = figure2_tree();
        let attack = PathRestrictionAttack::new(&tree, &[0, 1], &[2, 3]);
        let mut rng = StdRng::seed_from_u64(1);
        let inferred = attack.infer(&[25.0, 2.0], 1, &mut rng).unwrap();
        assert_eq!(inferred.path, vec![0, 1, 4]);
        assert_eq!(inferred.n_restricted, 1);
        // The paper's conclusion: "P_target's deposit feature value of
        // this sample is larger than 5K".
        assert_eq!(
            inferred.constraints,
            vec![BranchConstraint {
                feature: 2,
                threshold: 5.0,
                le: false
            }]
        );
        // Ground truth deposit = 8K satisfies it → CBR 1.
        let tally = attack.evaluate_cbr(&inferred, &[25.0, 2.0, 8.0, 3.0]);
        assert_eq!(tally.rate(), Some(1.0));
    }

    #[test]
    fn restriction_never_loses_true_path() {
        // Property: the true decision path always survives restriction
        // when the true class is supplied.
        let tree = figure2_tree();
        let attack = PathRestrictionAttack::new(&tree, &[0, 1], &[2, 3]);
        for &(age, income, deposit, shopping) in &[
            (25.0, 2.0, 8.0, 3.0),
            (25.0, 2.0, 3.0, 1.0),
            (40.0, 1.5, 2.0, 7.0),
            (40.0, 2.5, 9.0, 2.0),
            (31.0, 3.5, 1.0, 5.0),
        ] {
            let x = [age, income, deposit, shopping];
            let true_path = tree.decision_path(&x);
            let true_leaf = *true_path.last().unwrap();
            let class = tree.predict_one(&x);
            let leaves = attack.restricted_leaves(&[age, income], class);
            assert!(
                leaves.contains(&true_leaf),
                "true leaf {true_leaf} lost for x = {x:?} (got {leaves:?})"
            );
        }
    }

    #[test]
    fn unknown_everything_keeps_all_class_paths() {
        // Adversary owns nothing → restriction = all leaves of the class.
        let tree = figure2_tree();
        let attack = PathRestrictionAttack::new(&tree, &[], &[0, 1, 2, 3]);
        let leaves = attack.restricted_leaves(&[], 1);
        assert_eq!(leaves, vec![4, 5, 14]);
    }

    #[test]
    fn know_everything_leaves_single_path() {
        let tree = figure2_tree();
        let attack = PathRestrictionAttack::new(&tree, &[0, 1, 2, 3], &[]);
        let x = [25.0, 2.0, 8.0, 3.0];
        let class = tree.predict_one(&x);
        let leaves = attack.restricted_leaves(&x, class);
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0], *tree.decision_path(&x).last().unwrap());
    }

    #[test]
    fn inconsistent_class_yields_none() {
        let tree = figure2_tree();
        let attack = PathRestrictionAttack::new(&tree, &[0, 1, 2, 3], &[]);
        let x = [25.0, 2.0, 8.0, 3.0]; // true class 1
        let mut rng = StdRng::seed_from_u64(0);
        // Class 0 has no leaves at all in this tree.
        assert!(attack.infer(&x, 0, &mut rng).is_none());
    }

    #[test]
    fn point_estimate_falls_in_feasible_half() {
        let c = BranchConstraint {
            feature: 2,
            threshold: 0.4,
            le: false,
        };
        let est = c.point_estimate(0.0, 1.0);
        assert!((est - 0.7).abs() < 1e-12);
        let c2 = BranchConstraint {
            feature: 2,
            threshold: 0.4,
            le: true,
        };
        assert!((c2.point_estimate(0.0, 1.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn infer_values_respects_constraints() {
        // Fig. 2 case: deposit (feature 2) constrained to > 5 within a
        // known range of (0, 10); #shopping (feature 3) unconstrained.
        let tree = figure2_tree();
        let attack = PathRestrictionAttack::new(&tree, &[0, 1], &[2, 3]);
        let mut rng = StdRng::seed_from_u64(3);
        let est = attack.infer_values(&[25.0, 2.0], 1, 0.0, 10.0, &mut rng);
        assert_eq!(est.len(), 2);
        // deposit estimate: midpoint of (5, 10) = 7.5.
        assert!((est[0] - 7.5).abs() < 1e-12, "deposit {}", est[0]);
        // shopping unconstrained on this path → range midpoint 5.
        assert!((est[1] - 5.0).abs() < 1e-12, "shopping {}", est[1]);
    }

    #[test]
    fn infer_values_falls_back_on_inconsistent_class() {
        let tree = figure2_tree();
        let attack = PathRestrictionAttack::new(&tree, &[0, 1, 2, 3], &[]);
        let mut rng = StdRng::seed_from_u64(4);
        // Class 0 has no leaves; no target features → empty estimate.
        let est = attack.infer_values(&[25.0, 2.0, 8.0, 3.0], 0, 0.0, 1.0, &mut rng);
        assert!(est.is_empty());
    }

    #[test]
    fn path_to_root_indexing() {
        assert_eq!(path_to_root(0), vec![0]);
        assert_eq!(path_to_root(4), vec![0, 1, 4]);
        assert_eq!(path_to_root(13), vec![0, 2, 6, 13]);
    }
}
