#![warn(missing_docs)]

//! # fia-core — the paper's feature inference attacks
//!
//! Reference implementation of the three attacks from *"Feature Inference
//! Attack on Model Predictions in Vertical Federated Learning"* (ICDE
//! 2021), in the paper's most stringent setting: the adversary controls
//! only the trained model `θ`, the confidence scores `v` and its own
//! feature values `x_adv` — no gradients, no background distribution of
//! the target's data.
//!
//! * [`EqualitySolvingAttack`] (ESA, Section IV-A) — inverts logistic
//!   regression predictions through a linear system solved by
//!   Moore–Penrose pseudo-inverse; *exact* whenever
//!   `d_target ≤ c − 1`.
//! * [`PathRestrictionAttack`] (PRA, Section IV-B, Algorithm 1) —
//!   restricts a decision tree's candidate prediction paths using the
//!   adversary's features and the predicted class.
//! * [`Grna`] (Section V, Algorithm 2) — trains a generator network
//!   against the frozen vertical FL model over many accumulated
//!   predictions; handles LR, NN and (through a distilled surrogate)
//!   random forests.
//!
//! All three attacks implement the batch-first [`Attack`] trait
//! (`infer_batch(&QueryBatch) → AttackResult`) and can be dispatched over
//! accumulated query streams by the row-striping [`AttackEngine`];
//! single-record calls are thin wrappers over 1-row batches. The
//! [`oracle`] module abstracts *where* the stream comes from: the same
//! attack code accumulates its corpus from an in-process deployment or a
//! live prediction endpoint ([`PredictionOracle`]).
//!
//! Plus the evaluation machinery: MSE-per-feature (Eqn 10), correct
//! branching rate, the ESA error upper bound (Eqn 15), random-guess
//! baselines, and the correlation diagnostics of Fig. 10.

pub mod audit;
pub mod baseline;
pub mod engine;
mod esa;
mod grna;
pub mod metrics;
pub mod oracle;
mod pra;
mod telemetry;

pub use audit::{AuditReport, Finding, Severity};
pub use engine::{row_seed, Attack, AttackEngine, AttackResult, QueryBatch};
pub use esa::EqualitySolvingAttack;
pub use grna::{Grna, GrnaConfig, TrainedGenerator};
pub use oracle::{
    accumulate_batch, run_over_oracle, OracleError, PredictionOracle, QueryCost, TraceContext,
};
pub use pra::{BranchConstraint, InferredPath, PathRestrictionAttack};

/// Re-exported correlation diagnostics (Eqns 16–17) from `fia-data`.
pub use fia_data::correlation::{correlation_report, CorrelationReport};
