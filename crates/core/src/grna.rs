//! Generative Regression Network Attack (GRNA) — Section V, Algorithm 2.
//!
//! The adversary accumulates `n` prediction records `(x_adv, v)` and
//! trains a generator `fG(x_adv ∪ r; θG) → x̂_target` so that the frozen
//! vertical FL model's output on the assembled sample
//! `x = scatter(x_adv, x̂_target)` matches the observed confidence
//! vector. The loss (Eqn 9) is
//!
//! ```text
//! ℓ(f(x_adv, fG(x_adv, r)), v)  +  Ω(fG)
//! ```
//!
//! with `Ω` a hinge penalty on the batch variance of the generated
//! values ("we penalize the generator model when the variance of
//! {x̂_target} is too large"). The random vector `r` (one entry per
//! unknown feature) regularizes the generator and diversifies gradient
//! directions across epochs (Section V-A).
//!
//! Models enter through [`fia_models::DifferentiableModel`]; random
//! forests are attacked through a distilled MLP surrogate
//! ([`fia_models::distill_forest`], Section V-B).
//!
//! The [`GrnaConfig`] ablation switches reproduce Table III:
//! disable the `x_adv` input (case 1), the noise input (case 2), the
//! variance constraint (case 3), or the generator itself (case 4 — a
//! per-sample free-variable "naive regression" solved through the model).

use crate::engine::{row_seed, Attack, AttackResult, QueryBatch};
use fia_linalg::{Matrix, Precision};
use fia_models::DifferentiableModel;
use fia_tensor::{
    normal_matrix, standard_normal, xavier_uniform, Adam, Optimizer, ParamId, Params, Tape, VarId,
};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

/// Configuration for the GRN attack.
#[derive(Debug, Clone)]
pub struct GrnaConfig {
    /// Generator hidden-layer widths. Paper: `[600, 200, 100]`.
    pub hidden: Vec<usize>,
    /// Apply LayerNorm after each hidden layer (paper: yes).
    pub layer_norm: bool,
    /// Training epochs over the accumulated predictions.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Variance-penalty threshold τ (penalize `Var > τ` per generated
    /// feature). Features live in `(0, 1)`; a generated column more
    /// dispersed than `U(0, 1)` (variance 1/12) is "meaningless" in the
    /// paper's sense, so τ defaults to 1/12. The bound needs only the
    /// value range the threat model already grants the adversary.
    pub variance_threshold: f64,
    /// Weight λ of the variance penalty in the loss.
    pub variance_lambda: f64,
    /// Weight of the range hinge penalty on values outside `(0, 1)` —
    /// the second half of the "prevent meaningless samples" constraint.
    pub range_lambda: f64,
    /// Clamp inferred values into `[0, 1]` (the adversary knows feature
    /// ranges — Section III-B).
    pub clamp_output: bool,
    /// RNG seed.
    pub seed: u64,
    /// Ablation case 1: feed `x_adv` into the generator.
    pub use_adv_input: bool,
    /// Ablation case 2: feed the random vector into the generator.
    pub use_noise_input: bool,
    /// Ablation case 3: apply the variance constraint.
    pub use_variance_constraint: bool,
    /// Ablation case 4: use a generator at all. When `false`, each
    /// sample's unknowns become free variables optimized directly through
    /// the frozen model (the paper's "naive regression model").
    pub use_generator: bool,
    /// Compute precision of the *training* tapes' matmuls. Default
    /// [`Precision::F64`] (bit-identical across kernel backends);
    /// [`Precision::F32`] opts into the mixed-precision kernels — faster
    /// generator training at f32 accuracy, with reconstruction quality
    /// pinned within tolerance of the f64 run by test. Inference tapes
    /// always run f64.
    pub precision: Precision,
}

impl GrnaConfig {
    /// The paper's generator: hidden layers 600/200/100 with LayerNorm.
    pub fn paper() -> Self {
        GrnaConfig {
            hidden: vec![600, 200, 100],
            layer_norm: true,
            epochs: 60,
            batch_size: 64,
            lr: 1e-3,
            variance_threshold: 1.0 / 12.0,
            variance_lambda: 2.0,
            range_lambda: 2.0,
            clamp_output: true,
            seed: 0,
            use_adv_input: true,
            use_noise_input: true,
            use_variance_constraint: true,
            use_generator: true,
            precision: Precision::F64,
        }
    }

    /// Scaled-down profile for fast experiment runs (same architecture
    /// shape, an order of magnitude smaller).
    pub fn fast() -> Self {
        GrnaConfig {
            hidden: vec![96, 48, 24],
            epochs: 40,
            ..GrnaConfig::paper()
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the training precision (see [`GrnaConfig::precision`]).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Width of the generator input under the ablation switches.
    fn input_width(&self, d_adv: usize, d_target: usize) -> usize {
        let mut w = 0;
        if self.use_adv_input {
            w += d_adv;
        }
        if self.use_noise_input {
            w += d_target;
        }
        w.max(1)
    }
}

/// The GRN attack bound to a frozen vertical FL model and a feature
/// split.
pub struct Grna<'a, M: DifferentiableModel> {
    model: &'a M,
    adv_indices: Vec<usize>,
    target_indices: Vec<usize>,
    config: GrnaConfig,
    /// Constant scatter matrix mapping `[x_adv | x̂_target]` (in that
    /// concatenation order) to the model's global feature order.
    scatter: Matrix,
}

impl<'a, M: DifferentiableModel> Grna<'a, M> {
    /// Prepares the attack.
    ///
    /// # Panics
    /// Panics unless `adv_indices ∪ target_indices` partitions the
    /// model's feature space.
    pub fn new(
        model: &'a M,
        adv_indices: &[usize],
        target_indices: &[usize],
        config: GrnaConfig,
    ) -> Self {
        let d = model.n_features();
        let mut seen = vec![false; d];
        for &f in adv_indices.iter().chain(target_indices.iter()) {
            assert!(f < d && !seen[f], "indices must partition 0..{d}");
            seen[f] = true;
        }
        assert!(seen.iter().all(|&s| s), "indices must cover 0..{d}");
        assert!(!target_indices.is_empty(), "target side must own features");

        // Scatter matrix P: row k of the concatenated layout maps to its
        // global column. x_global = [x_adv | x_target] · P.
        let d_adv = adv_indices.len();
        let mut scatter = Matrix::zeros(d_adv + target_indices.len(), d);
        for (k, &f) in adv_indices.iter().enumerate() {
            scatter[(k, f)] = 1.0;
        }
        for (k, &f) in target_indices.iter().enumerate() {
            scatter[(d_adv + k, f)] = 1.0;
        }

        Grna {
            model,
            adv_indices: adv_indices.to_vec(),
            target_indices: target_indices.to_vec(),
            config,
            scatter,
        }
    }

    /// Algorithm 2: trains the generator on the accumulated predictions.
    ///
    /// `x_adv` is `n × d_adv` (columns ordered per `adv_indices`);
    /// `confidences` is `n × c`. Returns the trained generator, ready to
    /// infer the same samples it was trained on — "the samples to be
    /// attacked are exactly the samples for training the generator".
    pub fn train(&self, x_adv: &Matrix, confidences: &Matrix) -> TrainedGenerator {
        assert_eq!(x_adv.rows(), confidences.rows(), "row count mismatch");
        assert_eq!(x_adv.cols(), self.adv_indices.len(), "x_adv width mismatch");
        assert_eq!(
            confidences.cols(),
            self.model.n_classes(),
            "confidence width mismatch"
        );
        crate::telemetry::phase("grna", "train", x_adv.rows(), || {
            if self.config.use_generator {
                self.train_generator(x_adv, confidences)
            } else {
                self.solve_free_variables(x_adv, confidences)
            }
        })
    }

    fn train_generator(&self, x_adv: &Matrix, confidences: &Matrix) -> TrainedGenerator {
        let cfg = &self.config;
        let d_adv = self.adv_indices.len();
        let d_target = self.target_indices.len();
        let d_in = cfg.input_width(d_adv, d_target);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Warm start: initialize the output bias at the mean of the
        // adversary's *own* feature values. All features share the same
        // (0, 1) normalization, so the adversary's marginal is the best
        // prior-free guess for where generated values should start —
        // important when the data concentrates far from 0.5 (e.g. the
        // credit-card stand-in) and the frozen model is flat elsewhere.
        let adv_slice = x_adv.as_slice();
        let warm_bias = if adv_slice.is_empty() {
            0.5
        } else {
            adv_slice.iter().sum::<f64>() / adv_slice.len() as f64
        };
        let mut gen = GeneratorNet::new(
            d_in,
            &cfg.hidden,
            d_target,
            cfg.layer_norm,
            warm_bias,
            &mut rng,
        );
        let mut opt = Adam::new(cfg.lr);

        let n = x_adv.rows();
        let mut order: Vec<usize> = (0..n).collect();

        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let xb = x_adv.select_rows(chunk).expect("rows in range");
                let vb = confidences.select_rows(chunk).expect("rows in range");
                let mut tape = Tape::with_precision(cfg.precision);

                let gen_in = self.generator_input(&mut tape, &xb, chunk.len(), &mut rng);
                let xhat = gen.forward(&mut tape, gen_in, true);
                let xadv_var = tape.input(xb);
                let cat = tape.concat_cols(xadv_var, xhat);
                let scatter = tape.input(self.scatter.clone());
                let full = tape.matmul(cat, scatter);
                let vhat = self.model.forward_frozen(&mut tape, full);
                let target_v = tape.input(vb);
                let mut loss = tape.mse_loss(vhat, target_v);
                if cfg.use_variance_constraint {
                    let pen = tape.variance_penalty(xhat, cfg.variance_threshold);
                    let pen = tape.scale(pen, cfg.variance_lambda);
                    loss = tape.add(loss, pen);
                    // Range hinge: generated values outside the known
                    // (0, 1) feature range are penalized per element.
                    let over = tape.add_scalar(xhat, -1.0);
                    let over = tape.relu(over);
                    let over = tape.mean_all(over);
                    let neg = tape.scale(xhat, -1.0);
                    let under = tape.relu(neg);
                    let under = tape.mean_all(under);
                    let range = tape.add(over, under);
                    let range = tape.scale(range, cfg.range_lambda);
                    loss = tape.add(loss, range);
                }
                tape.backward(loss);
                let grads = tape.param_grads();
                opt.step(&mut gen.params, &grads);
            }
        }

        TrainedGenerator {
            kind: GeneratorKind::Network(gen),
            adv_indices: self.adv_indices.clone(),
            target_indices: self.target_indices.clone(),
            use_adv_input: cfg.use_adv_input,
            use_noise_input: cfg.use_noise_input,
            clamp_output: cfg.clamp_output,
            infer_seed: cfg.seed,
        }
    }

    /// Ablation case 4 (no generator): optimizes one free variable vector
    /// per sample directly against the frozen model — "a naive regression
    /// model which infers x_target based solely on the federated model f
    /// and the model output v". Without the generator's cross-sample
    /// coupling through `x_adv`, the estimates tend to diverge, which is
    /// exactly the pathology Table III case 4 documents.
    fn solve_free_variables(&self, x_adv: &Matrix, confidences: &Matrix) -> TrainedGenerator {
        let cfg = &self.config;
        let n = x_adv.rows();
        let d_target = self.target_indices.len();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = Params::new();
        // The "naive" model is deliberately prior-free: standard-normal
        // initialization, no range knowledge — matching the paper's
        // observation that "without constraints of x_adv, the inferred
        // values … tend to diverge" (Table III case 4 scores *worse* than
        // random guess).
        let free = params.insert(normal_matrix(n, d_target, 0.0, 1.0, &mut rng));
        let mut opt = Adam::new(cfg.lr * 10.0); // free variables need a hotter rate

        for _ in 0..cfg.epochs {
            let mut tape = Tape::with_precision(cfg.precision);
            let xhat = tape.param(&params, free);
            let xadv_var = tape.input(x_adv.clone());
            let cat = tape.concat_cols(xadv_var, xhat);
            let scatter = tape.input(self.scatter.clone());
            let full = tape.matmul(cat, scatter);
            let vhat = self.model.forward_frozen(&mut tape, full);
            let target_v = tape.input(confidences.clone());
            let loss = tape.mse_loss(vhat, target_v);
            tape.backward(loss);
            let grads = tape.param_grads();
            opt.step(&mut params, &grads);
        }

        TrainedGenerator {
            kind: GeneratorKind::FreeVariables(params.get(free).clone()),
            adv_indices: self.adv_indices.clone(),
            target_indices: self.target_indices.clone(),
            use_adv_input: cfg.use_adv_input,
            use_noise_input: cfg.use_noise_input,
            clamp_output: cfg.clamp_output,
            infer_seed: cfg.seed,
        }
    }

    fn generator_input(
        &self,
        tape: &mut Tape,
        xb: &Matrix,
        batch: usize,
        rng: &mut StdRng,
    ) -> VarId {
        let cfg = &self.config;
        let d_target = self.target_indices.len();
        match (cfg.use_adv_input, cfg.use_noise_input) {
            (true, true) => {
                let x = tape.input(xb.clone());
                let r = tape.input(normal_matrix(batch, d_target, 0.0, 1.0, rng));
                tape.concat_cols(x, r)
            }
            (true, false) => tape.input(xb.clone()),
            (false, true) => tape.input(normal_matrix(batch, d_target, 0.0, 1.0, rng)),
            (false, false) => tape.input(Matrix::filled(batch, 1, 1.0)),
        }
    }
}

/// Internal generator network: an MLP with linear output and optional
/// LayerNorm after each hidden activation.
/// One generator layer: `(weight, bias, optional (gamma, beta))`.
type GenLayer = (ParamId, ParamId, Option<(ParamId, ParamId)>);

struct GeneratorNet {
    params: Params,
    layers: Vec<GenLayer>,
    d_in: usize,
}

impl GeneratorNet {
    fn new(
        d_in: usize,
        hidden: &[usize],
        d_out: usize,
        layer_norm: bool,
        output_bias: f64,
        rng: &mut StdRng,
    ) -> Self {
        let mut params = Params::new();
        let mut layers = Vec::new();
        let mut width = d_in;
        for &h in hidden {
            let w = params.insert(xavier_uniform(width, h, rng));
            let b = params.insert(Matrix::zeros(1, h));
            let ln = layer_norm.then(|| {
                let gamma = params.insert(Matrix::filled(1, h, 1.0));
                let beta = params.insert(Matrix::zeros(1, h));
                (gamma, beta)
            });
            layers.push((w, b, ln));
            width = h;
        }
        let w = params.insert(xavier_uniform(width, d_out, rng));
        let b = params.insert(Matrix::filled(1, d_out, output_bias));
        layers.push((w, b, None));
        GeneratorNet {
            params,
            layers,
            d_in,
        }
    }

    /// Builds the generator forward pass; `trainable` binds parameters for
    /// gradient collection, otherwise they enter as constants.
    fn forward(&self, tape: &mut Tape, x: VarId, trainable: bool) -> VarId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (li, (w, b, ln)) in self.layers.iter().enumerate() {
            let wv = if trainable {
                tape.param(&self.params, *w)
            } else {
                tape.input(self.params.get(*w).clone())
            };
            let bv = if trainable {
                tape.param(&self.params, *b)
            } else {
                tape.input(self.params.get(*b).clone())
            };
            h = tape.matmul(h, wv);
            h = tape.add_row_broadcast(h, bv);
            if li < last {
                // Pre-activation LayerNorm (linear → LN → ReLU): the
                // stabilisation the paper cites, in the placement that
                // keeps the ReLU's active half well-scaled.
                if let Some((gamma, beta)) = ln {
                    let g = if trainable {
                        tape.param(&self.params, *gamma)
                    } else {
                        tape.input(self.params.get(*gamma).clone())
                    };
                    let be = if trainable {
                        tape.param(&self.params, *beta)
                    } else {
                        tape.input(self.params.get(*beta).clone())
                    };
                    h = tape.layer_norm(h, g, be, 1e-5);
                }
                h = tape.relu(h);
            }
        }
        h
    }
}

enum GeneratorKind {
    Network(GeneratorNet),
    /// Ablation case 4: the optimized per-sample estimates themselves.
    FreeVariables(Matrix),
}

/// The trained attack artifact: maps adversary features (plus fresh
/// noise) to inferred target features.
pub struct TrainedGenerator {
    kind: GeneratorKind,
    adv_indices: Vec<usize>,
    target_indices: Vec<usize>,
    use_adv_input: bool,
    use_noise_input: bool,
    clamp_output: bool,
    /// Base seed of the batched [`Attack::infer_batch`] path's noise
    /// draws (keyed per row content for chunk-invariance).
    infer_seed: u64,
}

impl TrainedGenerator {
    /// Infers target feature values for each row of `x_adv` (ordered per
    /// the attack's `adv_indices`). `seed` drives the fresh random
    /// vectors `r`.
    ///
    /// For the free-variable ablation the stored estimates are returned
    /// (they are per-sample by construction); `x_adv` must then have the
    /// same row count as the training data.
    pub fn infer(&self, x_adv: &Matrix, seed: u64) -> Matrix {
        let noise = self.needs_noise().then(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            normal_matrix(x_adv.rows(), self.target_indices.len(), 0.0, 1.0, &mut rng)
        });
        self.infer_with_noise(x_adv, noise.as_ref())
    }

    /// Runs the generator's batched forward pass with caller-supplied
    /// noise (`n × d_target`, ignored when the noise pathway is disabled
    /// or for the free-variable ablation). This is the deterministic core
    /// both [`TrainedGenerator::infer`] (sequentially drawn noise) and the
    /// engine's chunk-invariant [`Attack::infer_batch`] (content-keyed
    /// noise) share.
    pub fn infer_with_noise(&self, x_adv: &Matrix, noise: Option<&Matrix>) -> Matrix {
        assert_eq!(x_adv.cols(), self.adv_indices.len(), "x_adv width mismatch");
        let n = x_adv.rows();
        let out = match &self.kind {
            GeneratorKind::FreeVariables(est) => {
                assert_eq!(
                    est.rows(),
                    n,
                    "free-variable ablation infers only its training samples"
                );
                est.clone()
            }
            GeneratorKind::Network(gen) => {
                let mut tape = Tape::new();
                let input = match (self.use_adv_input, self.use_noise_input) {
                    (true, true) => {
                        let r = noise.expect("noise pathway enabled");
                        assert_eq!(r.rows(), n, "noise row mismatch");
                        let x = tape.input(x_adv.clone());
                        let r = tape.input(r.clone());
                        tape.concat_cols(x, r)
                    }
                    (true, false) => tape.input(x_adv.clone()),
                    (false, true) => {
                        let r = noise.expect("noise pathway enabled");
                        assert_eq!(r.rows(), n, "noise row mismatch");
                        tape.input(r.clone())
                    }
                    (false, false) => tape.input(Matrix::filled(n, 1, 1.0)),
                };
                debug_assert_eq!(tape.value(input).cols(), gen.d_in);
                let xhat = gen.forward(&mut tape, input, false);
                tape.value(xhat).clone()
            }
        };
        if self.clamp_output {
            out.map(|v| v.clamp(0.0, 1.0))
        } else {
            out
        }
    }

    fn needs_noise(&self) -> bool {
        self.use_noise_input && matches!(self.kind, GeneratorKind::Network(_))
    }

    /// Overrides the base seed used by the batched [`Attack`] path.
    pub fn with_infer_seed(mut self, seed: u64) -> Self {
        self.infer_seed = seed;
        self
    }

    /// Ensemble inference: averages `k` independent draws of the random
    /// vector `r`. The generator's output is a stochastic function of
    /// `r`; averaging estimates its conditional mean given `x_adv`, which
    /// lowers the MSE of the point estimate (a variance-reduction
    /// extension beyond the paper's single-draw inference).
    ///
    /// For the free-variable ablation (no noise pathway) this equals
    /// [`TrainedGenerator::infer`].
    pub fn infer_ensemble(&self, x_adv: &Matrix, k: usize, seed: u64) -> Matrix {
        assert!(k >= 1, "ensemble size must be at least 1");
        let mut acc = self.infer(x_adv, seed);
        for draw in 1..k {
            let next = self.infer(x_adv, seed.wrapping_add(draw as u64 * 0x9E3779B9));
            acc = acc.add(&next).expect("same shape");
        }
        acc.scale(1.0 / k as f64)
    }

    /// The target feature indices reconstructed by [`TrainedGenerator::infer`].
    pub fn target_indices(&self) -> &[usize] {
        &self.target_indices
    }

    /// Snapshot of every trained parameter matrix in insertion order (the
    /// per-sample estimate matrix for the free-variable ablation).
    /// Primarily for reproducibility checks: two trainings from the same
    /// `GrnaConfig` seed must produce identical snapshots.
    pub fn parameter_snapshot(&self) -> Vec<Matrix> {
        match &self.kind {
            GeneratorKind::Network(gen) => gen.params.iter().map(|(_, m)| m.clone()).collect(),
            GeneratorKind::FreeVariables(est) => vec![est.clone()],
        }
    }
}

impl Attack for TrainedGenerator {
    fn name(&self) -> &'static str {
        "grna"
    }

    fn target_indices(&self) -> &[usize] {
        &self.target_indices
    }

    /// `false` for the free-variable ablation: its "estimates" are bound
    /// 1:1 to the training batch, so the engine must not re-stripe it.
    fn chunkable(&self) -> bool {
        !matches!(self.kind, GeneratorKind::FreeVariables(_))
    }

    /// Batched generator inference over the accumulated stream: one tape
    /// forward pass for the whole batch. The random vector `r` of each
    /// row is keyed on the row's content ([`row_seed`]), so estimates are
    /// independent of batch order and engine striping.
    fn infer_batch(&self, batch: &QueryBatch) -> AttackResult {
        let n = batch.len();
        let d_target = self.target_indices.len();
        crate::telemetry::phase("grna", "solve", n, || {
            let noise = self.needs_noise().then(|| {
                let mut m = Matrix::zeros(n, d_target);
                for i in 0..n {
                    let mut rng = StdRng::seed_from_u64(row_seed(
                        self.infer_seed,
                        batch.x_adv.row(i),
                        batch.confidences.row(i),
                    ));
                    for v in m.row_mut(i).iter_mut() {
                        *v = standard_normal(&mut rng);
                    }
                }
                m
            });
            let estimates = self.infer_with_noise(&batch.x_adv, noise.as_ref());
            AttackResult {
                estimates,
                target_indices: self.target_indices.clone(),
                attack: Attack::name(self),
                degraded_rows: Vec::new(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::random_guess_uniform;
    use crate::metrics::mse_per_feature;
    use fia_data::{make_classification, normalize_dataset, SynthConfig};
    use fia_models::{LogisticRegression, LrConfig, PredictProba};

    /// Strongly correlated dataset: target features are nearly linear
    /// functions of adversary features.
    fn correlated_dataset(seed: u64) -> fia_data::Dataset {
        let cfg = SynthConfig {
            n_samples: 500,
            n_features: 8,
            n_informative: 5,
            n_redundant: 3,
            n_classes: 3,
            class_sep: 2.0,
            redundant_noise: 0.05,
            flip_y: 0.0,
            shuffle_features: false,
            seed,
        };
        normalize_dataset(&make_classification(&cfg)).0
    }

    fn small_grna() -> GrnaConfig {
        GrnaConfig {
            hidden: vec![48, 24],
            layer_norm: true,
            epochs: 40,
            batch_size: 32,
            lr: 2e-3,
            variance_threshold: 1.0 / 12.0,
            range_lambda: 2.0,
            variance_lambda: 1.0,
            clamp_output: true,
            seed: 7,
            use_adv_input: true,
            use_noise_input: true,
            use_variance_constraint: true,
            use_generator: true,
            precision: Precision::F64,
        }
    }

    /// Shared fixture: trains LR on the correlated data and runs GRNA
    /// against the redundant (target) block.
    fn run_grna(config: GrnaConfig) -> (f64, f64) {
        let ds = correlated_dataset(3);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        // Informative features 0..5 to the adversary, redundant 5..8 to
        // the target — the correlation GRNA needs is by construction.
        let adv: Vec<usize> = (0..5).collect();
        let target: Vec<usize> = (5..8).collect();
        let x_adv = ds.features.select_columns(&adv).unwrap();
        let truth = ds.features.select_columns(&target).unwrap();
        let conf = model.predict_proba(&ds.features);

        let attack = Grna::new(&model, &adv, &target, config);
        let generator = attack.train(&x_adv, &conf);
        let est = generator.infer(&x_adv, 99);
        let mse = mse_per_feature(&est, &truth);
        let rg = random_guess_uniform(truth.rows(), truth.cols(), 1);
        let rg_mse = mse_per_feature(&rg, &truth);
        (mse, rg_mse)
    }

    #[test]
    fn grna_beats_random_guess_on_lr() {
        let (mse, rg_mse) = run_grna(small_grna());
        assert!(
            mse < 0.75 * rg_mse,
            "GRNA mse {mse} not clearly better than random {rg_mse}"
        );
    }

    #[test]
    fn ablation_without_adv_input_degrades() {
        let full = run_grna(small_grna()).0;
        let no_adv = run_grna(GrnaConfig {
            use_adv_input: false,
            ..small_grna()
        })
        .0;
        assert!(
            no_adv > full,
            "removing x_adv should hurt: full {full} vs no-adv {no_adv}"
        );
    }

    #[test]
    fn ablation_free_variables_runs() {
        // Case 4 — just verify the path executes and produces finite,
        // clamped estimates (its accuracy is expected to be poor).
        let (mse, _) = run_grna(GrnaConfig {
            use_generator: false,
            epochs: 30,
            ..small_grna()
        });
        assert!(mse.is_finite());
    }

    #[test]
    fn generator_output_is_clamped() {
        let ds = correlated_dataset(5);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        let adv: Vec<usize> = (0..5).collect();
        let target: Vec<usize> = (5..8).collect();
        let x_adv = ds.features.select_columns(&adv).unwrap();
        let conf = model.predict_proba(&ds.features);
        let attack = Grna::new(
            &model,
            &adv,
            &target,
            GrnaConfig {
                epochs: 2,
                ..small_grna()
            },
        );
        let generator = attack.train(&x_adv, &conf);
        let est = generator.infer(&x_adv, 1);
        assert!(est.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(est.cols(), 3);
        assert_eq!(generator.target_indices(), &[5, 6, 7]);
    }

    #[test]
    fn scatter_matrix_reassembles_interleaved_indices() {
        // Use a split with interleaved indices and verify the attack's
        // reconstruction feeds the model consistently: train briefly and
        // check inferred width + determinism.
        let ds = correlated_dataset(8);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        let adv = vec![0, 2, 4, 6];
        let target = vec![1, 3, 5, 7];
        let x_adv = ds.features.select_columns(&adv).unwrap();
        let conf = model.predict_proba(&ds.features);
        let attack = Grna::new(
            &model,
            &adv,
            &target,
            GrnaConfig {
                epochs: 2,
                ..small_grna()
            },
        );
        let g = attack.train(&x_adv, &conf);
        let a = g.infer(&x_adv, 5);
        let b = g.infer(&x_adv, 5);
        assert_eq!(a, b, "same seed → same inference");
        assert_eq!(a.cols(), 4);
    }

    #[test]
    fn ensemble_inference_not_worse_than_single_draw() {
        let ds = correlated_dataset(12);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 15,
                ..Default::default()
            },
        );
        let adv: Vec<usize> = (0..5).collect();
        let target: Vec<usize> = (5..8).collect();
        let x_adv = ds.features.select_columns(&adv).unwrap();
        let truth = ds.features.select_columns(&target).unwrap();
        let conf = model.predict_proba(&ds.features);
        let attack = Grna::new(&model, &adv, &target, small_grna());
        let g = attack.train(&x_adv, &conf);
        let single = mse_per_feature(&g.infer(&x_adv, 5), &truth);
        let ensemble = mse_per_feature(&g.infer_ensemble(&x_adv, 8, 5), &truth);
        // Averaging over r-draws estimates the conditional mean — it must
        // not be meaningfully worse, and is usually better.
        assert!(
            ensemble <= single * 1.05,
            "ensemble {ensemble} vs single {single}"
        );
    }

    #[test]
    fn same_config_seed_gives_identical_generator_weights() {
        // Determinism satellite: two full trainings from the same
        // GrnaConfig seed must agree on every generator weight matrix
        // after k = epochs steps, and on the resulting inferences.
        let ds = correlated_dataset(4);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let adv: Vec<usize> = (0..5).collect();
        let target: Vec<usize> = (5..8).collect();
        let x_adv = ds.features.select_columns(&adv).unwrap();
        let conf = model.predict_proba(&ds.features);

        let cfg = GrnaConfig {
            epochs: 5,
            ..small_grna()
        };
        let g1 = Grna::new(&model, &adv, &target, cfg.clone()).train(&x_adv, &conf);
        let g2 = Grna::new(&model, &adv, &target, cfg.clone()).train(&x_adv, &conf);
        let (s1, s2) = (g1.parameter_snapshot(), g2.parameter_snapshot());
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(s2.iter()) {
            assert_eq!(a, b, "weights diverged under identical seed");
        }
        assert_eq!(g1.infer(&x_adv, 3), g2.infer(&x_adv, 3));

        // A different seed must *not* reproduce the weights (guards
        // against the seed being ignored).
        let g3 = Grna::new(&model, &adv, &target, cfg.with_seed(1234)).train(&x_adv, &conf);
        assert_ne!(s1[0], g3.parameter_snapshot()[0]);
    }

    #[test]
    fn forced_scalar_training_matches_dispatched_backend_bitwise() {
        // The f64 kernels preserve the scalar arm's accumulation order,
        // so an entire GRNA training run — every tape matmul, gradient
        // product and axpy accumulation — must not depend on which
        // backend executed it. Train once on the dispatched backend and
        // once pinned to scalar, and require *bit-identical* weights.
        let ds = correlated_dataset(4);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let adv: Vec<usize> = (0..5).collect();
        let target: Vec<usize> = (5..8).collect();
        let x_adv = ds.features.select_columns(&adv).unwrap();
        let conf = model.predict_proba(&ds.features);
        let cfg = GrnaConfig {
            epochs: 3,
            ..small_grna()
        };
        let train = || Grna::new(&model, &adv, &target, cfg.clone()).train(&x_adv, &conf);

        let dispatched = train();
        let scalar = fia_linalg::with_backend(fia_linalg::Backend::Scalar, train);
        let (sd, ss) = (dispatched.parameter_snapshot(), scalar.parameter_snapshot());
        assert_eq!(sd.len(), ss.len());
        for (a, b) in sd.iter().zip(ss.iter()) {
            assert_eq!(a, b, "weights diverged across kernel backends");
        }
        assert_eq!(dispatched.infer(&x_adv, 3), scalar.infer(&x_adv, 3));
    }

    #[test]
    fn f32_training_quality_within_tolerance_of_f64() {
        // The mixed-precision path follows a genuinely different training
        // trajectory (f32 rounding per step), so the pin is on attack
        // *quality*, not on weights: per-feature reconstruction MSE must
        // stay within a stated tolerance of the f64 run, and must still
        // clearly beat random guessing.
        let (mse64, rg) = run_grna(small_grna());
        let (mse32, _) = run_grna(small_grna().with_precision(Precision::F32));
        println!("GRNA per-feature MSE: f64 = {mse64:.6}, f32 = {mse32:.6} (random {rg:.6})");
        assert!(
            mse32 <= mse64 * 1.25 + 0.005,
            "f32 quality drifted: f32 {mse32} vs f64 {mse64}"
        );
        assert!(
            mse32 < 0.75 * rg,
            "f32 GRNA mse {mse32} not clearly better than random {rg}"
        );
    }

    #[test]
    fn batched_attack_path_is_chunk_invariant() {
        use crate::engine::AttackEngine;
        let ds = correlated_dataset(6);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let adv: Vec<usize> = (0..5).collect();
        let target: Vec<usize> = (5..8).collect();
        let x_adv = ds.features.select_columns(&adv).unwrap();
        let conf = model.predict_proba(&ds.features);
        let cfg = GrnaConfig {
            epochs: 3,
            ..small_grna()
        };
        let generator = Grna::new(&model, &adv, &target, cfg).train(&x_adv, &conf);

        let batch = QueryBatch::new(x_adv, conf);
        let direct = generator.infer_batch(&batch);
        for workers in [2, 4] {
            let striped = AttackEngine::with_workers(workers)
                .with_min_stripe(32)
                .run(&generator, &batch);
            assert_eq!(striped.estimates, direct.estimates, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn overlapping_indices_rejected() {
        let ds = correlated_dataset(9);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let _ = Grna::new(&model, &[0, 1, 2], &[2, 3, 4, 5, 6, 7], small_grna());
    }
}
