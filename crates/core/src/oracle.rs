//! The prediction-query surface the attacks consume.
//!
//! The paper's adversary does not hold the deployment in its hands — it
//! *queries* a deployed prediction API and accumulates `(x_adv, v)`
//! pairs over many rounds (Section V: "the active party can easily
//! collect this information by observing model predictions … in the
//! long term"). [`PredictionOracle`] abstracts that query surface so the
//! same attack code runs against an in-process [`fia_vfl::VflSystem`]
//! *or* a live endpoint reached over the wire (`fia-serve`'s
//! `RemoteOracle`): accumulate a [`QueryBatch`] with
//! [`accumulate_batch`], then hand it to the [`AttackEngine`] — or do
//! both in one call with [`run_over_oracle`].

use crate::engine::{Attack, AttackEngine, AttackResult, QueryBatch};
use fia_linalg::Matrix;
use fia_models::PredictProba;
use fia_vfl::VflSystem;

/// Failure while querying a prediction oracle (transport errors, a
/// server-side rejection, a malformed response). In-process oracles
/// never fail; remote ones surface their transport layer here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleError(pub String);

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "oracle query failed: {}", self.0)
    }
}

impl std::error::Error for OracleError {}

/// Cumulative cost of an adversary's query campaign against a deployed
/// oracle, as the *deployment* metered it. The paper's attacks are
/// usually reported per accumulated round; this makes the other axis —
/// what the campaign cost the serving stack — visible to attack reports.
///
/// `cached_rows` counts rows the deployment answered from its
/// released-score cache instead of running (part of) a joint prediction
/// round: a repeated query is cheap for the server *and* sharper for the
/// adversary, because a cached row is re-released bit-identically (fresh
/// defense noise cannot be averaged away by repetition).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryCost {
    /// Prediction requests the adversary issued.
    pub queries: u64,
    /// Total confidence rows those requests asked for.
    pub rows: u64,
    /// Rows answered from the deployment's released-score cache.
    pub cached_rows: u64,
}

impl QueryCost {
    /// Rows that actually cost the deployment a joint prediction round.
    pub fn computed_rows(&self) -> u64 {
        self.rows.saturating_sub(self.cached_rows)
    }
}

/// A 128-bit distributed-trace context: which trace a query belongs to
/// and which client-side span caused it. Oracles that cross a process
/// boundary (`fia-serve`'s `RemoteOracle`) forward it on the wire so the
/// server can open spans *linked* to the client's — after merging the
/// two JSONL streams, a campaign chunk resolves into the server-side
/// rounds it triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Campaign/run-unique trace id shared by every span of one trace.
    pub trace_id: u64,
    /// Span id (in the client's tracer) that semantically contains the
    /// work the query causes remotely.
    pub parent_span: u64,
}

/// A deployed prediction API as the adversary sees it: submit sample
/// queries, receive confidence-score vectors — nothing else crosses the
/// boundary.
///
/// Methods take `&mut self` because remote implementations multiplex
/// request/response pairs over a single connection.
pub trait PredictionOracle {
    /// Number of classes `c` in the revealed confidence vectors.
    fn n_classes(&self) -> usize;

    /// Number of aligned samples the deployment can answer queries for.
    fn n_samples(&self) -> usize;

    /// Runs one prediction round over the stored samples `indices`,
    /// returning the revealed `|indices| × c` confidence matrix.
    fn confidences(&mut self, indices: &[usize]) -> Result<Matrix, OracleError>;

    /// What this oracle's query traffic has cost the deployment so far.
    /// Oracles that meter their traffic (`fia-serve`'s `RemoteOracle`)
    /// override this; the default reports nothing, which is correct for
    /// in-process oracles that pay no deployment cost.
    fn query_cost(&self) -> QueryCost {
        QueryCost::default()
    }

    /// Sets (or clears) the trace context attached to subsequent
    /// queries. Oracles that cross a process boundary propagate it;
    /// the default is a no-op, correct for in-process oracles whose
    /// spans already live in the caller's tracer.
    fn set_trace_context(&mut self, _ctx: Option<TraceContext>) {}
}

/// The in-process deployment *is* an oracle: a query round is a batched
/// joint-prediction protocol round.
impl<M: PredictProba> PredictionOracle for VflSystem<M> {
    fn n_classes(&self) -> usize {
        self.model().n_classes()
    }

    fn n_samples(&self) -> usize {
        VflSystem::n_samples(self)
    }

    fn confidences(&mut self, indices: &[usize]) -> Result<Matrix, OracleError> {
        Ok(self.predict_batch(indices))
    }
}

/// Accumulates the adversary's attack corpus by querying `oracle` in
/// rounds of at most `chunk` samples (`0` queries everything in one
/// round), zipping the revealed confidences with the adversary's own
/// feature rows `x_adv` (`indices.len() × d_adv`, row `i` belonging to
/// stored sample `indices[i]`).
///
/// The chunked loop is the paper's accumulation model made explicit: a
/// deployed API answers bounded batches, so the corpus is gathered over
/// many prediction rounds, not one oracle call.
///
/// # Panics
/// Panics when `x_adv` has a row count different from `indices`.
pub fn accumulate_batch<O: PredictionOracle + ?Sized>(
    oracle: &mut O,
    x_adv: &Matrix,
    indices: &[usize],
    chunk: usize,
) -> Result<QueryBatch, OracleError> {
    assert_eq!(
        x_adv.rows(),
        indices.len(),
        "one adversary feature row per queried sample"
    );
    let chunk = if chunk == 0 {
        indices.len().max(1)
    } else {
        chunk
    };
    let mut confidences = Matrix::zeros(indices.len(), oracle.n_classes());
    let mut row = 0;
    for round in indices.chunks(chunk) {
        let v = crate::telemetry::oracle_round(round.len(), || oracle.confidences(round))?;
        if v.shape() != (round.len(), confidences.cols()) {
            return Err(OracleError(format!(
                "oracle answered {:?}, expected {:?}",
                v.shape(),
                (round.len(), confidences.cols())
            )));
        }
        for i in 0..round.len() {
            confidences.row_mut(row + i).copy_from_slice(v.row(i));
        }
        row += round.len();
    }
    Ok(QueryBatch::new(x_adv.clone(), confidences))
}

/// Accumulates a corpus from `oracle` (see [`accumulate_batch`]) and
/// immediately runs `attack` over it through `engine` — the end-to-end
/// shape of every paper attack: query the deployment, then invert what
/// it revealed.
pub fn run_over_oracle<O: PredictionOracle + ?Sized>(
    engine: &AttackEngine,
    attack: &dyn Attack,
    oracle: &mut O,
    x_adv: &Matrix,
    indices: &[usize],
    chunk: usize,
) -> Result<AttackResult, OracleError> {
    let batch = accumulate_batch(oracle, x_adv, indices, chunk)?;
    Ok(engine.run(attack, &batch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EqualitySolvingAttack;
    use fia_models::LogisticRegression;
    use fia_vfl::VerticalPartition;

    fn deployed_system() -> (VflSystem<LogisticRegression>, Matrix) {
        let d = 6;
        let mut state = 0xD15EA5Eu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let w = Matrix::from_fn(d, 4, |_, _| next());
        let model = LogisticRegression::from_parameters(w, vec![0.0; 4], 4);
        let global = Matrix::from_fn(23, d, |i, j| 0.5 + 0.4 * ((i * d + j) as f64 * 0.618).sin());
        let partition = VerticalPartition::contiguous(&[3, 3]);
        (VflSystem::from_global(model, partition, &global), global)
    }

    #[test]
    fn in_process_system_is_an_oracle() {
        let (mut sys, _) = deployed_system();
        assert_eq!(PredictionOracle::n_classes(&sys), 4);
        assert_eq!(PredictionOracle::n_samples(&sys), 23);
        let v = sys.confidences(&[0, 5, 9]).unwrap();
        assert_eq!(v, sys.predict_batch(&[0, 5, 9]));
    }

    #[test]
    fn chunked_accumulation_matches_one_round() {
        let (mut sys, global) = deployed_system();
        let indices: Vec<usize> = (0..23).collect();
        let x_adv = global.select_columns(&[0, 1, 2]).unwrap();
        let one = accumulate_batch(&mut sys, &x_adv, &indices, 0).unwrap();
        let chunked = accumulate_batch(&mut sys, &x_adv, &indices, 5).unwrap();
        assert_eq!(one.confidences, chunked.confidences);
        assert_eq!(one.x_adv, chunked.x_adv);
        assert_eq!(one.len(), 23);
    }

    #[test]
    fn attack_over_oracle_matches_direct_engine_run() {
        let (mut sys, global) = deployed_system();
        let indices: Vec<usize> = (0..23).collect();
        let adv = [0usize, 1, 2];
        let target = [3usize, 4, 5];
        let x_adv = global.select_columns(&adv).unwrap();
        let model = sys.model().clone();
        let attack = EqualitySolvingAttack::new(&model, &adv, &target);
        let engine = AttackEngine::new();

        let direct = engine.run(
            &attack,
            &QueryBatch::new(x_adv.clone(), sys.predict_batch(&indices)),
        );
        let over_oracle = run_over_oracle(&engine, &attack, &mut sys, &x_adv, &indices, 7).unwrap();
        assert_eq!(direct.estimates, over_oracle.estimates);
        assert_eq!(over_oracle.attack, "esa");
    }

    #[test]
    #[should_panic(expected = "one adversary feature row")]
    fn accumulate_rejects_row_mismatch() {
        let (mut sys, global) = deployed_system();
        let x_adv = global.select_columns(&[0, 1, 2]).unwrap();
        let _ = accumulate_batch(&mut sys, &x_adv, &[0, 1], 0);
    }

    #[test]
    fn query_cost_defaults_to_zero_and_subtracts_cached_rows() {
        let (sys, _) = deployed_system();
        assert_eq!(sys.query_cost(), QueryCost::default());
        let cost = QueryCost {
            queries: 4,
            rows: 100,
            cached_rows: 30,
        };
        assert_eq!(cost.computed_rows(), 70);
        // Saturates rather than underflowing on inconsistent counters.
        let odd = QueryCost {
            queries: 1,
            rows: 2,
            cached_rows: 5,
        };
        assert_eq!(odd.computed_rows(), 0);
    }

    #[test]
    fn trace_context_default_is_a_no_op() {
        let (mut sys, _) = deployed_system();
        let before = sys.predict_batch(&[0, 1]);
        sys.set_trace_context(Some(TraceContext {
            trace_id: 42,
            parent_span: 7,
        }));
        assert_eq!(sys.confidences(&[0, 1]).unwrap(), before);
        sys.set_trace_context(None);
        assert_eq!(sys.confidences(&[0, 1]).unwrap(), before);
    }

    #[test]
    fn oracle_error_displays_reason() {
        let e = OracleError("connection reset".into());
        assert!(e.to_string().contains("connection reset"));
    }
}
