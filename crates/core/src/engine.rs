//! The batched attack engine.
//!
//! The paper's threat model is stream-shaped: the active party accumulates
//! `(x_adv, v)` pairs over many prediction rounds and attacks the whole
//! corpus at once (GRNA trains on it; ESA solves one linear system per
//! record; PRA restricts one path per record). This module gives every
//! attack the same batch-first interface:
//!
//! * [`QueryBatch`] — `n` accumulated observations (adversary features +
//!   revealed confidence vectors), the unit of work everywhere.
//! * [`Attack`] — the trait ESA, PRA and GRNA implement:
//!   `infer_batch(&QueryBatch) → AttackResult`. Single-record calls are
//!   thin wrappers over a 1-row batch.
//! * [`AttackResult`] — the estimates plus per-run diagnostics.
//! * [`AttackEngine`] — fans a batch out over worker threads in
//!   row-stripes and stitches the results back in order. Implementations
//!   are required to be *chunk-invariant* (same estimates whatever the
//!   stripe boundaries), which the engine's tests enforce; stochastic
//!   attacks achieve this by keying per-row randomness on row content
//!   rather than row position.

use crate::metrics;
use fia_linalg::Matrix;

/// A batch of accumulated prediction-round observations: one row per
/// query the adversary saw answered.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// Adversary-owned feature values, `n × d_adv` (columns ordered per
    /// the attack's `adv_indices`).
    pub x_adv: Matrix,
    /// Revealed confidence scores, `n × c`.
    pub confidences: Matrix,
}

impl QueryBatch {
    /// Builds a batch; rows of both matrices must correspond 1:1.
    ///
    /// # Panics
    /// Panics when the row counts disagree.
    pub fn new(x_adv: Matrix, confidences: Matrix) -> Self {
        assert_eq!(
            x_adv.rows(),
            confidences.rows(),
            "QueryBatch: row count mismatch"
        );
        QueryBatch { x_adv, confidences }
    }

    /// A 1-row batch for the single-record compatibility path.
    pub fn single(x_adv: &[f64], confidence: &[f64]) -> Self {
        QueryBatch {
            x_adv: Matrix::row_vector(x_adv),
            confidences: Matrix::row_vector(confidence),
        }
    }

    /// Number of queries `n` in the batch.
    pub fn len(&self) -> usize {
        self.x_adv.rows()
    }

    /// `true` when the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The contiguous row-stripe `start..end` as its own batch.
    pub fn stripe(&self, start: usize, end: usize) -> QueryBatch {
        let rows: Vec<usize> = (start..end).collect();
        QueryBatch {
            x_adv: self.x_adv.select_rows(&rows).expect("stripe in range"),
            confidences: self
                .confidences
                .select_rows(&rows)
                .expect("stripe in range"),
        }
    }
}

/// Outcome of one batched attack run.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// Inferred target features, `n × d_target` (columns ordered per the
    /// attack's `target_indices`).
    pub estimates: Matrix,
    /// Global feature indices the columns of `estimates` reconstruct.
    pub target_indices: Vec<usize>,
    /// Name of the attack that produced this result.
    pub attack: &'static str,
    /// Rows where inference degraded to a fallback (ESA: equations
    /// dropped by a defense; PRA: no surviving path). Estimates for these
    /// rows are best-effort, not the attack's nominal output.
    pub degraded_rows: Vec<usize>,
}

impl AttackResult {
    /// Number of queries answered.
    pub fn n_queries(&self) -> usize {
        self.estimates.rows()
    }

    /// MSE-per-feature (Eqn 10) of the estimates against ground truth.
    pub fn mse_against(&self, truth: &Matrix) -> f64 {
        metrics::mse_per_feature(&self.estimates, truth)
    }

    /// Concatenates per-stripe results back into batch order. Stripe `i`
    /// must hold the rows immediately following stripe `i − 1`.
    fn stitch(parts: Vec<AttackResult>) -> AttackResult {
        let mut iter = parts.into_iter();
        let mut acc = iter.next().expect("at least one stripe");
        for part in iter {
            assert_eq!(acc.attack, part.attack, "stitch: mixed attacks");
            let offset = acc.estimates.rows();
            acc.estimates = acc
                .estimates
                .vstack(&part.estimates)
                .expect("stripe widths agree");
            acc.degraded_rows
                .extend(part.degraded_rows.iter().map(|r| r + offset));
        }
        acc
    }
}

/// A feature-inference attack with a batch-first interface.
///
/// `Sync` is part of the contract so [`AttackEngine`] can share the
/// attack across worker threads; all three paper attacks are read-only at
/// inference time.
pub trait Attack: Sync {
    /// Short stable identifier (`"esa"`, `"pra"`, `"grna"`).
    fn name(&self) -> &'static str;

    /// Global indices of the target features this attack reconstructs.
    fn target_indices(&self) -> &[usize];

    /// Infers target features for every query in the batch.
    fn infer_batch(&self, batch: &QueryBatch) -> AttackResult;

    /// `false` when the attack's output is only defined over the exact
    /// batch it was prepared on (e.g. GRNA's free-variable ablation); the
    /// engine then skips row-striping.
    fn chunkable(&self) -> bool {
        true
    }

    /// Single-record compatibility wrapper: a 1-row batch.
    fn infer_one(&self, x_adv: &[f64], confidence: &[f64]) -> Vec<f64> {
        let result = self.infer_batch(&QueryBatch::single(x_adv, confidence));
        result.estimates.row(0).to_vec()
    }
}

/// Dispatches query batches to attacks, striping rows across worker
/// threads.
///
/// On a single-core host (or for small batches) the engine degrades to a
/// direct `infer_batch` call; because implementations are chunk-invariant
/// the result is identical either way.
#[derive(Debug, Clone)]
pub struct AttackEngine {
    workers: usize,
    /// Minimum rows per stripe — below this, fan-out overhead dominates.
    min_stripe: usize,
}

impl Default for AttackEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl AttackEngine {
    /// Engine sized to the host's available parallelism.
    pub fn new() -> Self {
        Self::with_workers(fia_linalg::default_workers())
    }

    /// Engine with an explicit worker count (`0` is treated as `1`).
    pub fn with_workers(workers: usize) -> Self {
        AttackEngine {
            workers: workers.max(1),
            min_stripe: 64,
        }
    }

    /// Overrides the minimum stripe height (rows per worker).
    pub fn with_min_stripe(mut self, rows: usize) -> Self {
        self.min_stripe = rows.max(1);
        self
    }

    /// Runs one attack over the batch, striping rows across workers.
    pub fn run(&self, attack: &dyn Attack, batch: &QueryBatch) -> AttackResult {
        let n = batch.len();
        let stripes = if attack.chunkable() {
            self.workers.min(n.div_ceil(self.min_stripe)).max(1)
        } else {
            1
        };
        if stripes <= 1 {
            return attack.infer_batch(batch);
        }

        let per = n.div_ceil(stripes);
        let bounds: Vec<(usize, usize)> = (0..stripes)
            .map(|s| (s * per, ((s + 1) * per).min(n)))
            .filter(|(a, b)| a < b)
            .collect();
        let mut slots: Vec<Option<AttackResult>> = bounds.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            for (slot, &(start, end)) in slots.iter_mut().zip(&bounds) {
                scope.spawn(move || {
                    *slot = Some(attack.infer_batch(&batch.stripe(start, end)));
                });
            }
        });
        AttackResult::stitch(slots.into_iter().map(|s| s.expect("stripe ran")).collect())
    }

    /// Runs several attacks over the same accumulated stream, in order.
    pub fn run_all(&self, attacks: &[&dyn Attack], batch: &QueryBatch) -> Vec<AttackResult> {
        attacks.iter().map(|a| self.run(*a, batch)).collect()
    }
}

/// Stable content hash of one query row — the seed material that keeps
/// stochastic attacks chunk-invariant: the same `(x_adv, v)` pair draws
/// the same randomness no matter where in a batch (or which stripe) it
/// lands.
pub fn row_seed(base: u64, x_adv: &[f64], confidence: &[f64]) -> u64 {
    // FNV-1a over the raw f64 bits.
    let mut h = 0xcbf29ce484222325u64 ^ base.wrapping_mul(0x100000001b3);
    for &v in x_adv.iter().chain(confidence.iter()) {
        h ^= v.to_bits();
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy attack: "reconstructs" the negated mean of x_adv, flags rows
    /// whose first confidence is 0. Chunk-invariant by construction.
    struct NegMean {
        targets: Vec<usize>,
    }

    impl Attack for NegMean {
        fn name(&self) -> &'static str {
            "neg-mean"
        }
        fn target_indices(&self) -> &[usize] {
            &self.targets
        }
        fn infer_batch(&self, batch: &QueryBatch) -> AttackResult {
            let n = batch.len();
            let mut est = Matrix::zeros(n, 1);
            let mut degraded = Vec::new();
            for i in 0..n {
                let row = batch.x_adv.row(i);
                est[(i, 0)] = -row.iter().sum::<f64>() / row.len() as f64;
                if batch.confidences[(i, 0)] == 0.0 {
                    degraded.push(i);
                }
            }
            AttackResult {
                estimates: est,
                target_indices: self.targets.clone(),
                attack: self.name(),
                degraded_rows: degraded,
            }
        }
    }

    fn batch(n: usize) -> QueryBatch {
        let x = Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64 * 0.01);
        let c = Matrix::from_fn(n, 2, |i, _| if i % 7 == 0 { 0.0 } else { 0.5 });
        QueryBatch::new(x, c)
    }

    #[test]
    fn engine_matches_direct_call() {
        let attack = NegMean { targets: vec![3] };
        let b = batch(301);
        let direct = attack.infer_batch(&b);
        for workers in [1, 2, 4] {
            let engine = AttackEngine::with_workers(workers).with_min_stripe(32);
            let run = engine.run(&attack, &b);
            assert_eq!(run.estimates, direct.estimates, "workers = {workers}");
            assert_eq!(run.degraded_rows, direct.degraded_rows);
        }
    }

    #[test]
    fn engine_small_batch_single_stripe() {
        let attack = NegMean { targets: vec![0] };
        let b = batch(5);
        let engine = AttackEngine::with_workers(8);
        let run = engine.run(&attack, &b);
        assert_eq!(run.n_queries(), 5);
    }

    #[test]
    fn infer_one_wraps_single_row_batch() {
        let attack = NegMean { targets: vec![0] };
        let est = attack.infer_one(&[0.3, 0.6, 0.9], &[0.5, 0.5]);
        assert!((est[0] + 0.6).abs() < 1e-12);
    }

    #[test]
    fn stitch_shifts_degraded_rows() {
        let attack = NegMean { targets: vec![0] };
        let b = batch(14); // rows 0, 7 degraded
        let engine = AttackEngine::with_workers(2).with_min_stripe(1);
        let run = engine.run(&attack, &b);
        assert_eq!(run.degraded_rows, vec![0, 7]);
    }

    #[test]
    fn row_seed_depends_on_content_not_position() {
        let a = row_seed(1, &[0.1, 0.2], &[0.7]);
        let b = row_seed(1, &[0.1, 0.2], &[0.7]);
        let c = row_seed(1, &[0.1, 0.3], &[0.7]);
        let d = row_seed(2, &[0.1, 0.2], &[0.7]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn mismatched_batch_rejected() {
        QueryBatch::new(Matrix::zeros(3, 2), Matrix::zeros(4, 2));
    }

    #[test]
    fn run_all_preserves_order() {
        let a1 = NegMean { targets: vec![0] };
        let a2 = NegMean { targets: vec![1] };
        let b = batch(10);
        let engine = AttackEngine::new();
        let results = engine.run_all(&[&a1, &a2], &b);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].target_indices, vec![0]);
        assert_eq!(results[1].target_indices, vec![1]);
    }
}
