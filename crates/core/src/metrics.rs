//! Attack-quality metrics.

use fia_linalg::Matrix;

/// MSE per feature (Eqn 10):
/// `1/(n · d_target) Σ_t Σ_i (x̂_t,i − x_t,i)²`.
///
/// # Panics
/// Panics when the shapes disagree or the matrices are empty.
pub fn mse_per_feature(inferred: &Matrix, truth: &Matrix) -> f64 {
    assert_eq!(inferred.shape(), truth.shape(), "shape mismatch");
    let n = inferred.as_slice().len();
    assert!(n > 0, "empty matrices");
    inferred
        .as_slice()
        .iter()
        .zip(truth.as_slice().iter())
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        / n as f64
}

/// Per-column MSE, the quantity Fig. 10 plots against feature
/// correlations.
pub fn per_feature_mse(inferred: &Matrix, truth: &Matrix) -> Vec<f64> {
    assert_eq!(inferred.shape(), truth.shape(), "shape mismatch");
    let (n, d) = inferred.shape();
    assert!(n > 0, "empty matrices");
    let mut out = vec![0.0; d];
    for i in 0..n {
        for j in 0..d {
            let e = inferred[(i, j)] - truth[(i, j)];
            out[j] += e * e;
        }
    }
    for v in &mut out {
        *v /= n as f64;
    }
    out
}

/// The ESA error upper bound of Eqn (15):
/// `MSE ≤ (1/d_target) Σ_i 2·x_target,i²`, averaged over the prediction
/// set. Features must already be normalized into `(0, 1)` for the bound's
/// derivation (Eqn 14) to apply.
pub fn esa_upper_bound(truth: &Matrix) -> f64 {
    let (n, d) = truth.shape();
    assert!(n > 0 && d > 0, "empty matrix");
    let mut total = 0.0;
    for i in 0..n {
        let row_sum: f64 = truth.row(i).iter().map(|&x| 2.0 * x * x).sum();
        total += row_sum / d as f64;
    }
    total / n as f64
}

/// Outcome of a branch-consistency evaluation (the CBR metric).
#[derive(Debug, Clone, Copy, Default)]
pub struct CbrTally {
    /// Branch decisions on target features that matched the ground truth.
    pub correct: usize,
    /// Total branch decisions on target features evaluated.
    pub total: usize,
}

impl CbrTally {
    /// Adds another tally.
    pub fn merge(&mut self, other: CbrTally) {
        self.correct += other.correct;
        self.total += other.total;
    }

    /// Correct branching rate; `None` when nothing was evaluated.
    pub fn rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.correct as f64 / self.total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_identical() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        assert_eq!(mse_per_feature(&a, &a), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let truth = Matrix::zeros(2, 2);
        let inferred = Matrix::filled(2, 2, 0.5);
        assert!((mse_per_feature(&inferred, &truth) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn per_feature_mse_separates_columns() {
        let truth = Matrix::zeros(4, 2);
        let mut inferred = Matrix::zeros(4, 2);
        for i in 0..4 {
            inferred[(i, 1)] = 1.0;
        }
        let v = per_feature_mse(&inferred, &truth);
        assert_eq!(v, vec![0.0, 1.0]);
    }

    #[test]
    fn upper_bound_formula() {
        // Single sample (0.5, 0.5): bound = (2·0.25 + 2·0.25)/2 = 0.5.
        let truth = Matrix::filled(1, 2, 0.5);
        assert!((esa_upper_bound(&truth) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn upper_bound_dominates_min_norm_error() {
        // For any x̂ with ‖x̂‖ ≤ ‖x‖ and x ∈ (0,1)^d, MSE(x̂, x) ≤ bound.
        let truth = Matrix::from_rows(&[vec![0.3, 0.8, 0.1]]).unwrap();
        let inferred = Matrix::from_rows(&[vec![0.1, 0.2, 0.05]]).unwrap(); // smaller norm
        assert!(mse_per_feature(&inferred, &truth) <= esa_upper_bound(&truth));
    }

    #[test]
    fn cbr_tally_rate() {
        let mut t = CbrTally::default();
        assert!(t.rate().is_none());
        t.merge(CbrTally {
            correct: 3,
            total: 4,
        });
        t.merge(CbrTally {
            correct: 1,
            total: 4,
        });
        assert_eq!(t.rate(), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mse_shape_checked() {
        mse_per_feature(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }
}
