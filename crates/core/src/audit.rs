//! One-call leakage audits.
//!
//! The library's "defender-facing" entry point: given a trained model, a
//! feature split and the prediction-phase observations, run every
//! applicable attack and summarize how much the target party's features
//! leak. This is the workflow the paper's pre/post-processing
//! countermeasures (Section VII) need — quantify before deploying.

use crate::baseline::random_guess_uniform;
use crate::engine::{AttackEngine, QueryBatch};
use crate::esa::EqualitySolvingAttack;
use crate::grna::{Grna, GrnaConfig};
use crate::metrics::{esa_upper_bound, mse_per_feature};
use crate::pra::PathRestrictionAttack;
use fia_linalg::Matrix;
use fia_models::{DecisionTree, DifferentiableModel, LogisticRegression, PredictProba};

/// Severity grading of a leakage finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Attack does not beat random guessing.
    Negligible,
    /// Attack beats random guessing by a clear margin.
    Significant,
    /// Attack reconstructs features (near-)exactly.
    Critical,
}

/// One attack's audited outcome.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Attack name (`"ESA"`, `"GRNA"`, `"PRA"`).
    pub attack: &'static str,
    /// Attack MSE per feature against the ground truth.
    pub mse: f64,
    /// Uniform random-guess baseline MSE on the same truth.
    pub baseline_mse: f64,
    /// Graded severity.
    pub severity: Severity,
}

impl Finding {
    fn grade(attack: &'static str, mse: f64, baseline_mse: f64) -> Finding {
        let severity = if mse < 1e-6 {
            Severity::Critical
        } else if mse < 0.75 * baseline_mse {
            Severity::Significant
        } else {
            Severity::Negligible
        };
        Finding {
            attack,
            mse,
            baseline_mse,
            severity,
        }
    }
}

/// Aggregated audit result.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Individual attack findings.
    pub findings: Vec<Finding>,
    /// Eqn (15) upper bound on ESA error for this data.
    pub esa_upper_bound: f64,
    /// Whether the `d_target ≤ c − 1` exact-recovery condition holds.
    pub exact_recovery_condition: bool,
}

impl AuditReport {
    /// Highest severity across findings.
    pub fn worst(&self) -> Severity {
        self.findings
            .iter()
            .map(|f| f.severity)
            .max()
            .unwrap_or(Severity::Negligible)
    }
}

/// Audits a logistic-regression deployment with both applicable attacks
/// (ESA on individual outputs, GRNA on the accumulated set).
///
/// `truth` is the target party's real feature block — available to the
/// *defender* running the audit before data release, exactly like the
/// paper's enclave-verification setting.
pub fn audit_logistic_regression(
    model: &LogisticRegression,
    adv_indices: &[usize],
    target_indices: &[usize],
    x_adv: &Matrix,
    confidences: &Matrix,
    truth: &Matrix,
    grna_config: GrnaConfig,
) -> AuditReport {
    let baseline = mse_per_feature(
        &random_guess_uniform(truth.rows(), truth.cols(), 0xA0D1),
        truth,
    );
    let mut findings = Vec::new();
    let engine = AttackEngine::new();
    let batch = QueryBatch::new(x_adv.clone(), confidences.clone());

    let esa = EqualitySolvingAttack::new(model, adv_indices, target_indices);
    let esa_est = engine
        .run(&esa, &batch)
        .estimates
        .map(|v| v.clamp(0.0, 1.0));
    findings.push(Finding::grade(
        "ESA",
        mse_per_feature(&esa_est, truth),
        baseline,
    ));

    let grna = Grna::new(model, adv_indices, target_indices, grna_config);
    let generator = grna.train(x_adv, confidences).with_infer_seed(0xA0D2);
    let grna_est = engine.run(&generator, &batch).estimates;
    findings.push(Finding::grade(
        "GRNA",
        mse_per_feature(&grna_est, truth),
        baseline,
    ));

    AuditReport {
        exact_recovery_condition: esa.exact_recovery_expected(),
        esa_upper_bound: esa_upper_bound(truth),
        findings,
    }
}

/// Audits a decision-tree deployment with PRA point estimates.
///
/// `x_full` rows are complete ground-truth samples (global feature
/// order); the predicted classes are recomputed from the tree exactly as
/// the protocol would reveal them.
pub fn audit_decision_tree(
    tree: &DecisionTree,
    adv_indices: &[usize],
    target_indices: &[usize],
    x_full: &Matrix,
    seed: u64,
) -> AuditReport {
    let mut sorted_targets = target_indices.to_vec();
    sorted_targets.sort_unstable();
    let truth = x_full
        .select_columns(&sorted_targets)
        .expect("target indices valid");
    let baseline = mse_per_feature(
        &random_guess_uniform(truth.rows(), truth.cols(), 0xA0D3),
        &truth,
    );

    let attack = PathRestrictionAttack::new(tree, adv_indices, target_indices).with_seed(seed);
    let mut sorted_adv = adv_indices.to_vec();
    sorted_adv.sort_unstable();
    let x_adv = x_full
        .select_columns(&sorted_adv)
        .expect("adversary indices valid");
    // The protocol reveals the tree's one-hot confidence rows.
    let confidences = tree.predict_proba(x_full);
    let result = AttackEngine::new().run(&attack, &QueryBatch::new(x_adv, confidences));
    let finding = Finding::grade("PRA", mse_per_feature(&result.estimates, &truth), baseline);

    AuditReport {
        exact_recovery_condition: false,
        esa_upper_bound: esa_upper_bound(&truth),
        findings: vec![finding],
    }
}

/// Audits any differentiable model (e.g. an MLP or a distilled forest
/// surrogate) with GRNA only.
pub fn audit_differentiable<M: DifferentiableModel>(
    model: &M,
    adv_indices: &[usize],
    target_indices: &[usize],
    x_adv: &Matrix,
    confidences: &Matrix,
    truth: &Matrix,
    grna_config: GrnaConfig,
) -> AuditReport {
    let baseline = mse_per_feature(
        &random_guess_uniform(truth.rows(), truth.cols(), 0xA0D4),
        truth,
    );
    let grna = Grna::new(model, adv_indices, target_indices, grna_config);
    let generator = grna.train(x_adv, confidences);
    let est = generator.infer(x_adv, 0xA0D5);
    AuditReport {
        exact_recovery_condition: false,
        esa_upper_bound: esa_upper_bound(truth),
        findings: vec![Finding::grade(
            "GRNA",
            mse_per_feature(&est, truth),
            baseline,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_data::{make_classification, normalize_dataset, SynthConfig};
    use fia_models::{LrConfig, TreeConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn dataset(c: usize, seed: u64) -> fia_data::Dataset {
        let cfg = SynthConfig {
            n_samples: 300,
            n_features: 8,
            n_informative: 5,
            n_redundant: 3,
            n_classes: c,
            class_sep: 2.0,
            redundant_noise: 0.1,
            flip_y: 0.0,
            shuffle_features: false,
            seed,
        };
        normalize_dataset(&make_classification(&cfg)).0
    }

    fn small_grna() -> GrnaConfig {
        GrnaConfig {
            hidden: vec![32, 16],
            epochs: 30,
            lr: 3e-3,
            ..GrnaConfig::fast()
        }
    }

    #[test]
    fn lr_audit_flags_exact_recovery_as_critical() {
        // 6 classes, 3 target features ≤ c − 1 → ESA critical.
        let ds = dataset(6, 1);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        let adv: Vec<usize> = (0..5).collect();
        let target: Vec<usize> = (5..8).collect();
        let x_adv = ds.features.select_columns(&adv).unwrap();
        let truth = ds.features.select_columns(&target).unwrap();
        let conf = model.predict_proba(&ds.features);
        let report =
            audit_logistic_regression(&model, &adv, &target, &x_adv, &conf, &truth, small_grna());
        assert!(report.exact_recovery_condition);
        let esa = report.findings.iter().find(|f| f.attack == "ESA").unwrap();
        assert_eq!(esa.severity, Severity::Critical);
        assert_eq!(report.worst(), Severity::Critical);
    }

    #[test]
    fn grna_flagged_significant_on_correlated_data() {
        let ds = dataset(2, 2);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 15,
                ..Default::default()
            },
        );
        let adv: Vec<usize> = (0..5).collect();
        let target: Vec<usize> = (5..8).collect(); // the redundant block
        let x_adv = ds.features.select_columns(&adv).unwrap();
        let truth = ds.features.select_columns(&target).unwrap();
        let conf = model.predict_proba(&ds.features);
        let report =
            audit_logistic_regression(&model, &adv, &target, &x_adv, &conf, &truth, small_grna());
        let grna = report.findings.iter().find(|f| f.attack == "GRNA").unwrap();
        assert!(
            grna.severity >= Severity::Significant,
            "grna finding {grna:?}"
        );
    }

    #[test]
    fn tree_audit_produces_pra_finding() {
        let ds = dataset(3, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut rng);
        let adv: Vec<usize> = (0..4).collect();
        let target: Vec<usize> = (4..8).collect();
        let report = audit_decision_tree(&tree, &adv, &target, &ds.features, 7);
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert_eq!(f.attack, "PRA");
        assert!(f.mse.is_finite());
        // PRA midpoint estimates should not be worse than random guessing.
        assert!(f.mse <= f.baseline_mse * 1.2, "{f:?}");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Critical > Severity::Significant);
        assert!(Severity::Significant > Severity::Negligible);
    }
}
