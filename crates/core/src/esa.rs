//! Equality Solving Attack (ESA) — Section IV-A.
//!
//! Binary LR: `σ(x_adv·θ_adv + x_target·θ_target + b) = v₁` gives one
//! linear equation in `x_target` once the adversary applies `σ⁻¹`.
//!
//! Multi-class LR: the softmax hides the raw scores `z_k`, but
//! `ln v_k − ln v_{k+1} = z_k − z_{k+1}` (Eqn 7) yields `c − 1` linear
//! equations (Eqn 8). Stacked as `Θ_target · x_target = a`, the adversary
//! solves `x̂_target = Θ⁺_target · a`:
//!
//! * exact recovery when `d_target ≤ c − 1` and `Θ_target` has full
//!   column rank;
//! * otherwise the minimum-norm least-squares estimate whose error obeys
//!   the Eqn (15) upper bound.

use crate::engine::{Attack, AttackResult, QueryBatch};
use fia_linalg::vecops::logit;
use fia_linalg::{pinv, Matrix};
use fia_models::{LogisticRegression, PredictProba};

/// The equality solving attack against a (binary or multi-class)
/// logistic regression model.
///
/// Construction precomputes the pseudo-inverse of the target coefficient
/// matrix, so per-sample inference is a single matrix–vector product —
/// the attack runs on *individual* predictions.
pub struct EqualitySolvingAttack<'a> {
    model: &'a LogisticRegression,
    adv_indices: Vec<usize>,
    target_indices: Vec<usize>,
    /// Adversary-block coefficient rows (`(c−1) × d_adv` or `1 × d_adv`).
    theta_adv: Matrix,
    /// Target-block coefficient rows `Θ_target` (`n_eq × d_target`).
    theta_target: Matrix,
    /// Precomputed `Θ⁺_target` (`d_target × n_eq`).
    pinv_target: Matrix,
    /// Per-equation bias offsets folded into the right-hand side.
    bias_delta: Vec<f64>,
}

impl<'a> EqualitySolvingAttack<'a> {
    /// Prepares the attack for the given feature split.
    ///
    /// `adv_indices`/`target_indices` are sorted global feature indices
    /// owned by the adversary coalition and the target respectively; they
    /// must partition `0..d`.
    ///
    /// # Panics
    /// Panics if the indices do not partition the model's feature space.
    pub fn new(
        model: &'a LogisticRegression,
        adv_indices: &[usize],
        target_indices: &[usize],
    ) -> Self {
        let d = model.n_features();
        validate_partition(adv_indices, target_indices, d);

        // Build the equation system's coefficient blocks.
        let w = model.weights(); // d × cols
        let bias = model.bias();
        let (theta_adv, theta_target, bias_delta) = if model.is_binary() {
            // One equation: θᵀ·x = logit(v₁) − b.
            let adv = Matrix::from_fn(1, adv_indices.len(), |_, k| w[(adv_indices[k], 0)]);
            let tgt = Matrix::from_fn(1, target_indices.len(), |_, k| w[(target_indices[k], 0)]);
            (adv, tgt, vec![bias[0]])
        } else {
            // c − 1 difference equations between adjacent classes.
            let c = w.cols();
            let adv = Matrix::from_fn(c - 1, adv_indices.len(), |e, k| {
                w[(adv_indices[k], e)] - w[(adv_indices[k], e + 1)]
            });
            let tgt = Matrix::from_fn(c - 1, target_indices.len(), |e, k| {
                w[(target_indices[k], e)] - w[(target_indices[k], e + 1)]
            });
            let delta = (0..c - 1).map(|e| bias[e] - bias[e + 1]).collect();
            (adv, tgt, delta)
        };

        let pinv_target = pinv(&theta_target).expect("pseudo-inverse of finite matrix");

        EqualitySolvingAttack {
            model,
            adv_indices: adv_indices.to_vec(),
            target_indices: target_indices.to_vec(),
            theta_adv,
            theta_target,
            pinv_target,
            bias_delta,
        }
    }

    /// The target-block coefficient matrix `Θ_target` (`n_eq × d_target`)
    /// of the linear system — exposed so alternative solvers (e.g. the
    /// ridge ablation bench) can reuse the attack's equation construction.
    pub fn theta_target(&self) -> &Matrix {
        &self.theta_target
    }

    /// The right-hand side `a` of `Θ_target · x_target = a` for one
    /// sample. Public for the same reason as
    /// [`EqualitySolvingAttack::theta_target`].
    pub fn rhs(&self, x_adv: &[f64], v: &[f64]) -> Vec<f64> {
        self.right_hand_side(x_adv, v)
    }

    /// Number of linear equations the adversary can construct
    /// (`1` for binary, `c − 1` for multi-class).
    pub fn n_equations(&self) -> usize {
        self.bias_delta.len()
    }

    /// `true` when exact recovery is guaranteed by the paper's threshold
    /// condition `d_target ≤ c − 1` (assuming full column rank).
    pub fn exact_recovery_expected(&self) -> bool {
        self.target_indices.len() <= self.n_equations()
    }

    /// Infers the target feature values for one sample from the
    /// adversary's own values (`x_adv`, ordered per `adv_indices`) and the
    /// revealed confidence vector `v`.
    ///
    /// Equations whose confidence scores were truncated to zero (by the
    /// rounding defense of Section VII) carry no usable log-ratio and are
    /// dropped; the remaining equations are solved by a fresh
    /// pseudo-inverse. With no usable equation the minimum-norm solution
    /// of an empty system — the zero vector — is returned.
    pub fn infer(&self, x_adv: &[f64], v: &[f64]) -> Vec<f64> {
        assert_eq!(x_adv.len(), self.adv_indices.len(), "x_adv width mismatch");
        assert_eq!(v.len(), self.model.n_classes(), "confidence width mismatch");
        let usable = self.usable_equations(v);
        let rhs = self.right_hand_side(x_adv, v);
        if usable.len() == self.n_equations() {
            return self
                .pinv_target
                .matvec(&rhs)
                .expect("precomputed shape consistent");
        }
        if usable.is_empty() {
            return vec![0.0; self.target_indices.len()];
        }
        let theta_sub = self
            .theta_target
            .select_rows(&usable)
            .expect("equation indices valid");
        let rhs_sub: Vec<f64> = usable.iter().map(|&e| rhs[e]).collect();
        match pinv(&theta_sub) {
            Ok(p) => p.matvec(&rhs_sub).expect("shape consistent"),
            Err(_) => vec![0.0; self.target_indices.len()],
        }
    }

    /// Indices of equations whose confidence inputs are strictly positive
    /// (a zeroed score makes the log-ratio meaningless).
    fn usable_equations(&self, v: &[f64]) -> Vec<usize> {
        if self.model.is_binary() {
            // The single equation needs v₁ strictly inside (0, 1).
            if v[0] > 0.0 && v[0] < 1.0 {
                vec![0]
            } else {
                Vec::new()
            }
        } else {
            (0..self.n_equations())
                .filter(|&e| v[e] > 0.0 && v[e + 1] > 0.0)
                .collect()
        }
    }

    /// Builds the right-hand side matrix (`n × n_eq`) of
    /// `Θ_target · x_targetᵀ = aᵀ` for a whole batch in three dense ops:
    /// the observed log-ratio (or logit) block minus the adversary
    /// contribution `X_adv · Θ_advᵀ` minus the bias offsets.
    fn batch_right_hand_side(&self, batch: &QueryBatch) -> Matrix {
        let n = batch.len();
        let n_eq = self.n_equations();
        // Adversary contribution: X_adv (n × d_adv) · Θ_advᵀ (d_adv × n_eq).
        let adv_contrib = batch
            .x_adv
            .matmul_transposed(&self.theta_adv)
            .expect("adv block shape consistent");
        let v = &batch.confidences;
        if self.model.is_binary() {
            Matrix::from_fn(n, 1, |i, _| {
                logit(v[(i, 0)]) - adv_contrib[(i, 0)] - self.bias_delta[0]
            })
        } else {
            Matrix::from_fn(n, n_eq, |i, e| {
                let lv = v[(i, e)].max(1e-12).ln() - v[(i, e + 1)].max(1e-12).ln();
                lv - adv_contrib[(i, e)] - self.bias_delta[e]
            })
        }
    }

    /// Builds the right-hand side `a` of `Θ_target · x_target = a`.
    fn right_hand_side(&self, x_adv: &[f64], v: &[f64]) -> Vec<f64> {
        let adv_contrib = self
            .theta_adv
            .matvec(x_adv)
            .expect("adv block shape consistent");
        if self.model.is_binary() {
            // a = σ⁻¹(v₁) − x_adv·θ_adv − b.
            vec![logit(v[0]) - adv_contrib[0] - self.bias_delta[0]]
        } else {
            // a'_e = ln v_e − ln v_{e+1} − x_adv·Δθ_adv − Δb.
            (0..self.n_equations())
                .map(|e| {
                    let lv = v[e].max(1e-12).ln() - v[e + 1].max(1e-12).ln();
                    lv - adv_contrib[e] - self.bias_delta[e]
                })
                .collect()
        }
    }

    /// The target feature indices this attack reconstructs.
    pub fn target_indices(&self) -> &[usize] {
        &self.target_indices
    }
}

impl Attack for EqualitySolvingAttack<'_> {
    fn name(&self) -> &'static str {
        "esa"
    }

    fn target_indices(&self) -> &[usize] {
        &self.target_indices
    }

    /// Batched equality solving.
    ///
    /// The nominal path is fully vectorized: the right-hand sides of all
    /// `n` linear systems are assembled with two dense products and the
    /// shared pseudo-inverse is applied as one `n × n_eq · n_eq × d_target`
    /// multiplication (`RHS · Θ⁺ᵀ` via the transposed-factor kernel).
    /// The kernel itself is sequential — multi-core parallelism belongs
    /// to the [`crate::AttackEngine`]'s row striping, so engine-dispatched
    /// batches never nest thread pools. Rows with zeroed confidence
    /// scores — the rounding defense — drop equations and fall back to
    /// the per-record solver; they are reported in
    /// [`AttackResult::degraded_rows`].
    fn infer_batch(&self, batch: &QueryBatch) -> AttackResult {
        assert_eq!(
            batch.x_adv.cols(),
            self.adv_indices.len(),
            "x_adv width mismatch"
        );
        assert_eq!(
            batch.confidences.cols(),
            self.model.n_classes(),
            "confidence width mismatch"
        );
        let n = batch.len();
        let n_eq = self.n_equations();

        crate::telemetry::phase("esa", "solve", n, || {
            let rhs = self.batch_right_hand_side(batch);
            // est[i] = Θ⁺ · rhs[i]  ⇔  est = RHS · (Θ⁺)ᵀ.
            let mut estimates = rhs
                .matmul_transposed(&self.pinv_target)
                .expect("precomputed shape consistent");

            // Defense-degraded rows (a zeroed score kills its equations) are
            // re-solved individually over the surviving equations. The scan
            // is allocation-free: a row degrades exactly when some score
            // feeding an equation left the open unit interval.
            let mut degraded_rows = Vec::new();
            for i in 0..n {
                let v = batch.confidences.row(i);
                let degraded = if self.model.is_binary() {
                    !(v[0] > 0.0 && v[0] < 1.0)
                } else {
                    v[..=n_eq].iter().any(|&s| s <= 0.0)
                };
                if degraded {
                    degraded_rows.push(i);
                    let est = self.infer(batch.x_adv.row(i), v);
                    estimates.row_mut(i).copy_from_slice(&est);
                }
            }

            AttackResult {
                estimates,
                target_indices: self.target_indices.clone(),
                attack: Attack::name(self),
                degraded_rows,
            }
        })
    }
}

fn validate_partition(adv: &[usize], target: &[usize], d: usize) {
    assert!(!target.is_empty(), "target side must own features");
    let mut seen = vec![false; d];
    for &f in adv.iter().chain(target.iter()) {
        assert!(f < d, "feature index {f} out of range");
        assert!(!seen[f], "feature {f} appears twice");
        seen[f] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "adv ∪ target must cover all {d} features"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{esa_upper_bound, mse_per_feature};
    use fia_linalg::vecops::softmax;
    use fia_models::PredictProba;

    /// Builds a multi-class LR with pseudo-random weights. A simple LCG
    /// keeps the fixture deterministic while producing a full-rank
    /// class-difference matrix (a smooth phase pattern such as
    /// `sin(a + b·j)` would make the adjacent-class differences
    /// rank-2 and defeat exact recovery).
    fn softmax_model(d: usize, c: usize) -> LogisticRegression {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let w = Matrix::from_fn(d, c, |_, _| next());
        let bias = (0..c).map(|j| 0.05 * j as f64).collect();
        LogisticRegression::from_parameters(w, bias, c)
    }

    #[test]
    fn exact_recovery_when_dtarget_le_c_minus_1() {
        // d = 6, c = 4 → up to 3 unknowns are exactly recoverable.
        let model = softmax_model(6, 4);
        let adv = [0usize, 2, 4];
        let target = [1usize, 3, 5];
        let attack = EqualitySolvingAttack::new(&model, &adv, &target);
        assert!(attack.exact_recovery_expected());

        let x = [0.31, 0.72, 0.05, 0.48, 0.93, 0.17];
        let v = model.predict_proba(&Matrix::row_vector(&x));
        let x_adv: Vec<f64> = adv.iter().map(|&f| x[f]).collect();
        let est = attack.infer(&x_adv, v.row(0));
        for (k, &f) in target.iter().enumerate() {
            assert!(
                (est[k] - x[f]).abs() < 1e-8,
                "feature {f}: est {} vs true {}",
                est[k],
                x[f]
            );
        }
    }

    #[test]
    fn binary_single_unknown_exact() {
        // Binary LR, d_target = 1 = c − 1 → exact.
        let w = Matrix::from_rows(&[vec![0.9], vec![-0.4], vec![0.7]]).unwrap();
        let model = LogisticRegression::from_parameters(w, vec![0.2], 2);
        let attack = EqualitySolvingAttack::new(&model, &[0, 2], &[1]);
        assert!(attack.exact_recovery_expected());
        let x = [0.25, 0.66, 0.81];
        let v = model.predict_proba(&Matrix::row_vector(&x));
        let est = attack.infer(&[x[0], x[2]], v.row(0));
        assert!((est[0] - x[1]).abs() < 1e-8, "est {}", est[0]);
    }

    #[test]
    fn underdetermined_estimate_obeys_upper_bound() {
        // Binary LR with 3 unknowns (> c − 1 = 1): estimate is
        // minimum-norm, so the Eqn 15 bound must hold on average.
        let w = Matrix::from_fn(5, 1, |i, _| 0.5 + 0.2 * i as f64);
        let model = LogisticRegression::from_parameters(w, vec![0.0], 2);
        let adv = [0usize, 1];
        let target = [2usize, 3, 4];
        let attack = EqualitySolvingAttack::new(&model, &adv, &target);
        assert!(!attack.exact_recovery_expected());

        let n = 50;
        let mut x_adv = Matrix::zeros(n, 2);
        let mut truth = Matrix::zeros(n, 3);
        let mut conf = Matrix::zeros(n, 2);
        for i in 0..n {
            let x: Vec<f64> = (0..5)
                .map(|j| ((i * 5 + j) as f64 * 0.618).fract())
                .collect();
            let v = model.predict_proba(&Matrix::row_vector(&x));
            x_adv.row_mut(i).copy_from_slice(&[x[0], x[1]]);
            truth.row_mut(i).copy_from_slice(&[x[2], x[3], x[4]]);
            conf.row_mut(i).copy_from_slice(v.row(0));
        }
        let est = attack
            .infer_batch(&QueryBatch::new(x_adv.clone(), conf.clone()))
            .estimates;
        let mse = mse_per_feature(&est, &truth);
        let bound = esa_upper_bound(&truth);
        assert!(mse <= bound + 1e-9, "mse {mse} exceeds bound {bound}");
        // And the estimate still interpolates the observed equation:
        // predictions on the reconstruction match the observed v.
        for i in 0..n {
            let mut full = vec![0.0; 5];
            full[0] = x_adv[(i, 0)];
            full[1] = x_adv[(i, 1)];
            for (k, &f) in target.iter().enumerate() {
                full[f] = est[(i, k)];
            }
            let v2 = model.predict_proba(&Matrix::row_vector(&full));
            assert!((v2[(0, 0)] - conf[(i, 0)]).abs() < 1e-6);
        }
    }

    #[test]
    fn paper_example_one() {
        // Example 1 of the paper: 3 classes, Θ as given, x = (25, 2K, 8K, 3),
        // v = softmax(z). The adversary holds (age, income) and infers
        // (deposit, #shopping) ≈ (8011.8, 3.046) — we recover the *exact*
        // values because we compute v at full precision rather than from
        // the paper's 3-digit rounding.
        let theta = Matrix::from_rows(&[
            // rows = features (transposed from the paper's per-class rows)
            vec![0.08, 0.06, 0.01],
            vec![0.0002, 0.0005, 0.0001],
            vec![0.0005, 0.0002, 0.0004],
            vec![0.09, 0.08, 0.05],
        ])
        .unwrap();
        let model = LogisticRegression::from_parameters(theta, vec![0.0; 3], 3);
        let x = [25.0, 2000.0, 8000.0, 3.0];
        let v = model.predict_proba(&Matrix::row_vector(&x));
        // Sanity: confidence ordering matches the paper's (0.867, 0.084, 0.049).
        assert!(v[(0, 0)] > v[(0, 1)] && v[(0, 1)] > v[(0, 2)]);

        let attack = EqualitySolvingAttack::new(&model, &[0, 1], &[2, 3]);
        assert!(attack.exact_recovery_expected()); // d_target = 2 = c − 1
        let est = attack.infer(&[25.0, 2000.0], v.row(0));
        assert!((est[0] - 8000.0).abs() < 1e-3, "deposit {}", est[0]);
        assert!((est[1] - 3.0).abs() < 1e-6, "shopping {}", est[1]);
    }

    #[test]
    fn paper_example_one_with_rounded_confidences() {
        // Reproduces the paper's reported estimate: feeding the *rounded*
        // v = (0.867, 0.084, 0.049) yields (≈8011.8, ≈3.05) — "the loss is
        // from the precision truncation during the computations".
        let theta = Matrix::from_rows(&[
            vec![0.08, 0.06, 0.01],
            vec![0.0002, 0.0005, 0.0001],
            vec![0.0005, 0.0002, 0.0004],
            vec![0.09, 0.08, 0.05],
        ])
        .unwrap();
        let model = LogisticRegression::from_parameters(theta, vec![0.0; 3], 3);
        let attack = EqualitySolvingAttack::new(&model, &[0, 1], &[2, 3]);
        let est = attack.infer(&[25.0, 2000.0], &[0.867, 0.084, 0.049]);
        assert!((est[0] - 8011.8).abs() < 5.0, "deposit {}", est[0]);
        assert!((est[1] - 3.046).abs() < 0.15, "shopping {}", est[1]);
    }

    #[test]
    fn rhs_uses_log_ratios() {
        // Verify Eqn (7): the constructed RHS equals z_k − z_{k+1}.
        let model = softmax_model(4, 3);
        let attack = EqualitySolvingAttack::new(&model, &[0, 1], &[2, 3]);
        let x = [0.2, 0.9, 0.4, 0.6];
        let z = model.decision_function(&Matrix::row_vector(&x));
        let v = softmax(z.row(0));
        let est = attack.infer(&[0.2, 0.9], &v);
        // Exact recovery (d_target = 2 = c − 1).
        assert!((est[0] - 0.4).abs() < 1e-8);
        assert!((est[1] - 0.6).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "cover all")]
    fn partition_must_cover() {
        let model = softmax_model(4, 3);
        EqualitySolvingAttack::new(&model, &[0], &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "target side must own")]
    fn empty_target_rejected() {
        let model = softmax_model(2, 3);
        EqualitySolvingAttack::new(&model, &[0, 1], &[]);
    }

    #[test]
    fn batched_solve_matches_per_record_wrapper() {
        let model = softmax_model(8, 5);
        let adv = [0usize, 2, 4, 6];
        let target = [1usize, 3, 5, 7];
        let attack = EqualitySolvingAttack::new(&model, &adv, &target);

        let n = 64;
        let mut x_adv = Matrix::zeros(n, 4);
        let mut conf = Matrix::zeros(n, 5);
        for i in 0..n {
            let x: Vec<f64> = (0..8)
                .map(|j| ((i * 8 + j) as f64 * 0.7548776662).fract())
                .collect();
            let v = model.predict_proba(&Matrix::row_vector(&x));
            for (k, &f) in adv.iter().enumerate() {
                x_adv[(i, k)] = x[f];
            }
            conf.row_mut(i).copy_from_slice(v.row(0));
        }

        let batch = QueryBatch::new(x_adv.clone(), conf.clone());
        let result = attack.infer_batch(&batch);
        assert!(result.degraded_rows.is_empty());
        for i in 0..n {
            let single = attack.infer(x_adv.row(i), conf.row(i));
            for (k, &s) in single.iter().enumerate() {
                assert!(
                    (result.estimates[(i, k)] - s).abs() < 1e-9,
                    "row {i} col {k}: batch {} vs single {s}",
                    result.estimates[(i, k)]
                );
            }
        }
    }

    #[test]
    fn zeroed_scores_fall_back_and_are_reported() {
        let model = softmax_model(6, 4);
        let attack = EqualitySolvingAttack::new(&model, &[0, 2, 4], &[1, 3, 5]);
        let x = [0.31, 0.72, 0.05, 0.48, 0.93, 0.17];
        let v = model.predict_proba(&Matrix::row_vector(&x));

        let mut conf = Matrix::zeros(2, 4);
        conf.row_mut(0).copy_from_slice(v.row(0));
        // Row 1: rounding defense zeroed everything but the top class.
        conf[(1, 0)] = 1.0;
        let row = vec![x[0], x[2], x[4]];
        let x_adv = Matrix::from_rows(&[row.clone(), row]).unwrap();

        let result = attack.infer_batch(&QueryBatch::new(x_adv, conf));
        assert_eq!(result.degraded_rows, vec![1]);
        // Clean row still recovers exactly.
        for (k, &f) in [1usize, 3, 5].iter().enumerate() {
            assert!((result.estimates[(0, k)] - x[f]).abs() < 1e-8);
        }
        // Degraded row falls back to the zero (minimum-norm, no equation)
        // estimate rather than propagating ±inf log-ratios.
        assert!(result.estimates.row(1).iter().all(|e| e.is_finite()));
    }
}
